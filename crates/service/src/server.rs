//! Request handling and the public [`Server`] facade.
//!
//! The protocol logic — parse one NDJSON request line, dispatch the op
//! against the shared [`EstimatorRegistry`], render one response line —
//! lives here as `handle_line`/`handle_request`, shared by both serving
//! backends: the readiness-driven event loop (`crate::eventloop`, unix)
//! and the thread-per-connection pool ([`crate::threadpool`], non-unix
//! fallback and bench baseline). Per-request latency, path counts, and
//! errors land in [`ServiceMetrics`]; the CLI prints the report on
//! SIGINT/shutdown.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use serde_json::{Number, Value};

use crate::estimator::ServableEstimator;
use crate::maintenance::{EnqueueError, MaintenanceCoordinator};
use crate::metrics::ServiceMetrics;
use crate::protocol::{
    backpressure_response, error_response, metrics_to_value, ok_response, MaintenanceAction,
    PathStep, Request,
};
use crate::registry::{EstimatorRegistry, MaintenanceState};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 ⇒ ephemeral).
    pub addr: String,
    /// Dispatch worker threads for CPU-heavy ops (`rebuild`, large
    /// `estimate` / `estimate_expr` batches). On the thread-pool backend
    /// this is the pool size (each thread serves one connection).
    pub workers: usize,
    /// Whether `load` requests may read snapshot files from this host.
    pub allow_load: bool,
    /// Event-loop shards multiplexing connections (0 ⇒ pick from core
    /// count). Ignored by the thread-pool backend.
    pub shards: usize,
    /// Admission: connections past this cap are refused at accept with a
    /// structured `overloaded` line (`reason = "capacity"`), then closed.
    pub max_connections: usize,
    /// Admission: per-peer-address in-flight request quota. A request
    /// arriving while the peer already has this many in flight is refused
    /// with `reason = "quota"`.
    pub max_inflight_per_client: usize,
    /// Load shedding: expensive ops are refused with `reason = "shed"`
    /// while more than this many dispatched requests are queued.
    pub shed_queue_depth: usize,
    /// Load shedding: expensive ops are refused with `reason = "shed"`
    /// while the recent p99 request latency exceeds this threshold
    /// (`None` disables the latency trigger).
    pub shed_p99: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_owned(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get() * 2)
                .unwrap_or(8),
            allow_load: true,
            shards: 0,
            max_connections: 1024,
            max_inflight_per_client: 64,
            shed_queue_depth: 128,
            shed_p99: None,
        }
    }
}

impl ServerConfig {
    /// The shard count to run with: the configured value, or (when 0) one
    /// shard per two cores, clamped to [1, 4] — connection multiplexing is
    /// readiness-bound, not CPU-bound, so a few shards go a long way.
    pub(crate) fn effective_shards(&self) -> usize {
        if self.shards > 0 {
            return self.shards;
        }
        std::thread::available_parallelism()
            .map(|n| (n.get() / 2).clamp(1, 4))
            .unwrap_or(1)
    }
}

#[cfg(unix)]
type Inner = crate::eventloop::EventLoopServer;
#[cfg(not(unix))]
type Inner = crate::threadpool::ThreadPoolServer;

/// A running server; dropping it does **not** stop the threads — call
/// [`Server::shutdown`].
///
/// On unix this is the readiness-driven event-loop backend (connection
/// state machines over a `poll(2)` reactor, with admission control and
/// load shedding); elsewhere it falls back to the thread-per-connection
/// pool in [`crate::threadpool`].
pub struct Server {
    inner: Inner,
}

impl Server {
    /// Binds and starts accepting. Returns once the listener is live, so
    /// `local_addr` is immediately connectable (ephemeral ports included).
    ///
    /// `delta` ops apply immediately in a background thread (no
    /// maintenance loop); see [`Server::start_with`] to serve with one.
    pub fn start(
        registry: Arc<EstimatorRegistry>,
        metrics: Arc<ServiceMetrics>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        Server::start_with(registry, metrics, None, config)
    }

    /// [`Server::start`] with an optional [`MaintenanceCoordinator`].
    /// When present, `delta` ops enqueue batches on it (compacted and
    /// published by its ticker) and the `maintenance` op is served;
    /// when absent, `delta` keeps the immediate-apply behaviour.
    pub fn start_with(
        registry: Arc<EstimatorRegistry>,
        metrics: Arc<ServiceMetrics>,
        maintenance: Option<Arc<MaintenanceCoordinator>>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        Ok(Server {
            inner: Inner::start_with(registry, metrics, maintenance, config)?,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// Signals shutdown and joins every thread. The event loop wakes on
    /// its shutdown pipes immediately, so idle connections do not delay
    /// the join.
    pub fn shutdown(self) {
        self.inner.shutdown();
    }
}

/// A request line still unterminated past this size closes the connection
/// (an unbounded line would otherwise grow the buffer without limit).
pub(crate) const MAX_REQUEST_BYTES: usize = 16 * 1024 * 1024;

/// Answers one request line; returns `(response, paths_estimated, ok)`.
pub(crate) fn handle_line(
    line: &str,
    registry: &Arc<EstimatorRegistry>,
    metrics: &Arc<ServiceMetrics>,
    maintenance: Option<&Arc<MaintenanceCoordinator>>,
    allow_load: bool,
) -> (String, usize, bool) {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => return (error_response(&e.to_string()), 0, false),
    };
    handle_request(request, registry, metrics, maintenance, allow_load)
}

/// Answers one parsed request; returns `(response, paths_estimated, ok)`.
/// Split from [`handle_line`] so the event loop can parse on the loop
/// thread, classify, and run the heavy ops on dispatch workers.
pub(crate) fn handle_request(
    request: Request,
    registry: &Arc<EstimatorRegistry>,
    metrics: &Arc<ServiceMetrics>,
    maintenance: Option<&Arc<MaintenanceCoordinator>>,
    allow_load: bool,
) -> (String, usize, bool) {
    metrics.record_op(match &request {
        Request::Ping => "ping",
        Request::List => "list",
        Request::Metrics { .. } => "metrics",
        Request::Estimate { .. } => "estimate",
        Request::EstimateExpr { .. } => "estimate_expr",
        Request::Delta { .. } => "delta",
        Request::Rebuild { .. } => "rebuild",
        Request::Load { .. } => "load",
        Request::Maintenance { .. } => "maintenance",
    });
    match request {
        Request::Ping => (ok_response(vec![]), 0, true),
        Request::List => {
            let estimators = registry
                .list()
                .into_iter()
                .map(|info| {
                    let slot_name = info.name.clone();
                    let mut row = vec![
                        ("name".into(), Value::string(info.name)),
                        (
                            "version".into(),
                            Value::Number(Number::PosInt(info.version)),
                        ),
                        ("k".into(), Value::Number(Number::PosInt(info.k as u64))),
                        (
                            "labels".into(),
                            Value::Number(Number::PosInt(info.label_count as u64)),
                        ),
                        (
                            "size_bytes".into(),
                            Value::Number(Number::PosInt(info.size_bytes as u64)),
                        ),
                        ("description".into(), Value::string(info.description)),
                        (
                            "base_build_id".into(),
                            info.lineage
                                .map_or(Value::Null, |(id, _)| Value::string(format!("{id:016x}"))),
                        ),
                        (
                            "applied_deltas".into(),
                            info.lineage.map_or(Value::Null, |(_, deltas)| {
                                Value::Number(Number::PosInt(deltas))
                            }),
                        ),
                        (
                            "expr_cache_hits".into(),
                            Value::Number(Number::PosInt(info.expr_cache.0)),
                        ),
                        (
                            "expr_cache_misses".into(),
                            Value::Number(Number::PosInt(info.expr_cache.1)),
                        ),
                        ("follow_pruning".into(), Value::Bool(info.follow_pruning)),
                    ];
                    if let Some(c) = info.catalog {
                        row.push(("catalog_mapped".into(), Value::Bool(c.mapped)));
                        row.push((
                            "catalog_heap_bytes".into(),
                            Value::Number(Number::PosInt(c.heap_bytes)),
                        ));
                        row.push((
                            "catalog_payload_bytes".into(),
                            Value::Number(Number::PosInt(c.payload_bytes)),
                        ));
                        row.push((
                            "catalog_nonzero_paths".into(),
                            Value::Number(Number::PosInt(c.nonzero_paths)),
                        ));
                    }
                    if let Some(m) = info.maintained {
                        row.push((
                            "maintained_catalog_bytes".into(),
                            Value::Number(Number::PosInt(m.catalog_bytes)),
                        ));
                        row.push((
                            "maintained_plain_bytes".into(),
                            Value::Number(Number::PosInt(m.plain_bytes)),
                        ));
                        row.push((
                            "maintained_bytes_per_entry".into(),
                            Value::Number(Number::Float(
                                m.catalog_bytes as f64 / (m.nonzero_paths as f64).max(1.0),
                            )),
                        ));
                    }
                    if let Some(d) = info.drift {
                        row.push((
                            "drift_mean_abs_error".into(),
                            Value::Number(Number::Float(d.mean_abs_error_rate)),
                        ));
                        row.push((
                            "drift_max_q_error".into(),
                            Value::Number(Number::Float(d.max_q_error)),
                        ));
                        row.push((
                            "drift_sampled_paths".into(),
                            Value::Number(Number::PosInt(d.sampled as u64)),
                        ));
                    }
                    if let Some(coordinator) = maintenance {
                        let status = coordinator.status(&slot_name);
                        if status != crate::maintenance::SlotStatus::default() {
                            row.push((
                                "maintenance_queued".into(),
                                Value::Number(Number::PosInt(status.queued as u64)),
                            ));
                            row.push((
                                "maintenance_compacted".into(),
                                Value::Number(Number::PosInt(status.compacted)),
                            ));
                            row.push((
                                "maintenance_last_trigger".into(),
                                status.last_trigger.map_or(Value::Null, Value::string),
                            ));
                            row.push((
                                "maintenance_last_outcome".into(),
                                status.last_outcome.map_or(Value::Null, Value::string),
                            ));
                        }
                    }
                    Value::Object(row)
                })
                .collect();
            (
                ok_response(vec![("estimators".into(), Value::Array(estimators))]),
                0,
                true,
            )
        }
        Request::Metrics { prometheus } => {
            if prometheus {
                return (
                    ok_response(vec![(
                        "exposition".into(),
                        Value::string(metrics.render_prometheus()),
                    )]),
                    0,
                    true,
                );
            }
            let report = metrics.report();
            (
                ok_response(vec![("metrics".into(), metrics_to_value(&report))]),
                0,
                true,
            )
        }
        Request::Estimate { estimator, paths } => {
            let path_count = paths.len();
            match estimate(registry, &estimator, &paths) {
                Ok((version, estimates)) => (
                    ok_response(vec![
                        ("version".into(), Value::Number(Number::PosInt(version))),
                        (
                            "estimates".into(),
                            Value::Array(
                                estimates
                                    .into_iter()
                                    .map(|e| Value::Number(Number::Float(e)))
                                    .collect(),
                            ),
                        ),
                    ]),
                    path_count,
                    true,
                ),
                Err(message) => (error_response(&message), path_count, false),
            }
        }
        Request::EstimateExpr {
            estimator,
            exprs,
            explain,
        } => {
            let expr_count = exprs.len();
            match estimate_exprs(registry, &estimator, &exprs, explain) {
                Ok((version, results)) => (
                    ok_response(vec![
                        ("version".into(), Value::Number(Number::PosInt(version))),
                        ("results".into(), results),
                    ]),
                    expr_count,
                    true,
                ),
                Err(message) => (error_response(&message), expr_count, false),
            }
        }
        Request::Delta { name, changes } => {
            // Delta reads the server's filesystem, like `load`/`rebuild`.
            if !allow_load {
                return (error_response("delta is disabled on this server"), 0, false);
            }
            if let Some(coordinator) = maintenance {
                // Maintenance loop: parse now (labels resolve against the
                // maintained base — a delta can't introduce labels, so the
                // alphabet is stable across queued batches), queue the
                // batch, and let the next compacted publish fold it in.
                let Some(state) = registry.maintenance(&name) else {
                    return (
                        error_response(&format!(
                            "no maintained statistics for {name:?}; run a rebuild with \
                             \"maintain\": true first"
                        )),
                        0,
                        false,
                    );
                };
                let delta = match phe_graph::delta::read_changes_path(&changes, &state.graph) {
                    Ok(delta) => delta,
                    Err(e) => {
                        return (error_response(&format!("reading {changes}: {e}")), 0, false)
                    }
                };
                return match coordinator.enqueue(&name, delta) {
                    Ok(queued) => (
                        ok_response(vec![
                            ("status".into(), Value::string("queued")),
                            (
                                "queued".into(),
                                Value::Number(Number::PosInt(queued as u64)),
                            ),
                        ]),
                        0,
                        true,
                    ),
                    // A full queue is backpressure, not a hard error: the
                    // structured marker tells the client to retry after
                    // the next compacted publish drains it.
                    Err(e @ EnqueueError::QueueFull { .. }) => {
                        (backpressure_response(&e.to_string()), 0, false)
                    }
                    Err(e) => (error_response(&e.to_string()), 0, false),
                };
            }
            if !registry.try_begin_rebuild(&name) {
                return (
                    error_response(&format!("rebuild of {name:?} already in flight")),
                    0,
                    false,
                );
            }
            // Version first, maintenance second: a `load` landing between
            // the two clears the maintenance state (op refused below); a
            // `load` landing after both bumps the version and the
            // background publish's compare-and-swap fails. Either way a
            // concurrent publish wins — fetching the state first would
            // open a window where a stale delta overwrites a fresh load.
            let expected_version = registry.get(&name).map_or(0, |g| g.version());
            let Some(state) = registry.maintenance(&name) else {
                registry.finish_rebuild(&name);
                return (
                    error_response(&format!(
                        "no maintained statistics for {name:?}; run a rebuild with \
                         \"maintain\": true first"
                    )),
                    0,
                    false,
                );
            };
            spawn_delta(
                Arc::clone(registry),
                Arc::clone(metrics),
                name,
                changes,
                state,
                expected_version,
            );
            (
                ok_response(vec![("status".into(), Value::string("applying-delta"))]),
                0,
                true,
            )
        }
        Request::Rebuild {
            name,
            graph,
            k,
            beta,
            ordering,
            histogram,
            threads,
            maintain,
        } => {
            // Rebuild reads the server's filesystem, like `load`.
            if !allow_load {
                return (
                    error_response("rebuild is disabled on this server"),
                    0,
                    false,
                );
            }
            let ordering = match phe_core::OrderingKind::ALL
                .into_iter()
                .find(|o| o.name() == ordering)
            {
                Some(o) => o,
                None => {
                    return (
                        error_response(&format!("unknown ordering {ordering:?}")),
                        0,
                        false,
                    )
                }
            };
            let histogram = match phe_core::HistogramKind::ALL
                .into_iter()
                .find(|h| h.name() == histogram)
            {
                Some(h) => h,
                None => {
                    return (
                        error_response(&format!("unknown histogram {histogram:?}")),
                        0,
                        false,
                    )
                }
            };
            if k == 0 || k > phe_core::MAX_K || beta == 0 {
                return (
                    error_response(&format!("invalid k = {k} or beta = {beta}")),
                    0,
                    false,
                );
            }
            if !registry.try_begin_rebuild(&name) {
                return (
                    error_response(&format!("rebuild of {name:?} already in flight")),
                    0,
                    false,
                );
            }
            // The version observed now is the publish precondition: if the
            // slot advances while the build runs (e.g. a `load`), the
            // rebuild result is stale and must not stomp it.
            let expected_version = registry.get(&name).map_or(0, |g| g.version());
            spawn_rebuild(
                Arc::clone(registry),
                Arc::clone(metrics),
                name.clone(),
                graph,
                phe_core::EstimatorConfig {
                    k,
                    beta,
                    ordering,
                    histogram,
                    threads,
                    retain_catalog: false,
                    // The sparse catalog is what later deltas merge into.
                    retain_sparse: maintain,
                },
                expected_version,
                maintain,
            );
            (
                ok_response(vec![("status".into(), Value::string("rebuilding"))]),
                0,
                true,
            )
        }
        Request::Load { name, snapshot } => {
            if !allow_load {
                return (error_response("load is disabled on this server"), 0, false);
            }
            match load_snapshot(&snapshot) {
                Ok(servable) => {
                    let version = registry.register(&name, servable);
                    if version > 1 {
                        metrics.record_swap();
                    }
                    // `register` invalidated any maintained lineage; the
                    // drift gauges measured that lineage and must not
                    // outlive it in the exposition.
                    metrics.clear_drift(&name);
                    (
                        ok_response(vec![(
                            "version".into(),
                            Value::Number(Number::PosInt(version)),
                        )]),
                        0,
                        true,
                    )
                }
                Err(message) => (error_response(&message), 0, false),
            }
        }
        Request::Maintenance { name, action } => {
            let Some(coordinator) = maintenance else {
                return (
                    error_response("no maintenance loop on this server"),
                    0,
                    false,
                );
            };
            match action {
                MaintenanceAction::Status => (maintenance_status(coordinator), 0, true),
                MaintenanceAction::Compact => {
                    if !allow_load {
                        // A forced compaction can trigger a full rebuild —
                        // gate it with the other mutating ops.
                        return (
                            error_response("maintenance compact is disabled on this server"),
                            0,
                            false,
                        );
                    }
                    let outcome = coordinator.run_slot(&name);
                    let ok = !matches!(
                        outcome,
                        crate::maintenance::RunOutcome::Failed { .. }
                            | crate::maintenance::RunOutcome::NoLineage { .. }
                    );
                    let response = ok_response(vec![
                        ("name".into(), Value::string(name)),
                        ("outcome".into(), Value::string(outcome.to_string())),
                    ]);
                    if ok {
                        (response, 0, true)
                    } else {
                        (error_response(&outcome.to_string()), 0, false)
                    }
                }
                MaintenanceAction::SetPolicy {
                    max_applied_deltas,
                    drift_scale,
                    drift_mean_threshold,
                    drift_q_threshold,
                } => {
                    if !allow_load {
                        return (
                            error_response("maintenance set-policy is disabled on this server"),
                            0,
                            false,
                        );
                    }
                    let mut policy = coordinator.config().policy;
                    if let Some(n) = max_applied_deltas {
                        policy.max_applied_deltas = n;
                    }
                    if let Some(scale) = drift_scale {
                        policy.drift_scale = scale;
                    }
                    if let (Some(mean), Some(q)) = (drift_mean_threshold, drift_q_threshold) {
                        policy.drift_override = Some(phe_core::DriftThreshold {
                            mean_abs_error_rate: mean,
                            max_q_error: q,
                        });
                    }
                    coordinator.set_policy(policy);
                    (maintenance_status(coordinator), 0, true)
                }
            }
        }
    }
}

/// Renders the maintenance loop's policy, interval, and per-slot status
/// as the `maintenance` op's `status`/`set-policy` response.
fn maintenance_status(coordinator: &MaintenanceCoordinator) -> String {
    let config = coordinator.config();
    let mut policy = vec![
        (
            "max_applied_deltas".into(),
            Value::Number(Number::PosInt(config.policy.max_applied_deltas)),
        ),
        (
            "drift_scale".into(),
            Value::Number(Number::Float(config.policy.drift_scale)),
        ),
    ];
    if let Some(pinned) = config.policy.drift_override {
        policy.push((
            "drift_mean_threshold".into(),
            Value::Number(Number::Float(pinned.mean_abs_error_rate)),
        ));
        policy.push((
            "drift_q_threshold".into(),
            Value::Number(Number::Float(pinned.max_q_error)),
        ));
    }
    let slots = coordinator
        .status_all()
        .into_iter()
        .map(|(name, status)| {
            Value::Object(vec![
                ("name".into(), Value::string(name)),
                (
                    "queued".into(),
                    Value::Number(Number::PosInt(status.queued as u64)),
                ),
                (
                    "enqueued".into(),
                    Value::Number(Number::PosInt(status.enqueued)),
                ),
                (
                    "rejected".into(),
                    Value::Number(Number::PosInt(status.rejected)),
                ),
                (
                    "compacted".into(),
                    Value::Number(Number::PosInt(status.compacted)),
                ),
                (
                    "purged".into(),
                    Value::Number(Number::PosInt(status.purged)),
                ),
                (
                    "last_trigger".into(),
                    status.last_trigger.map_or(Value::Null, Value::string),
                ),
                (
                    "last_outcome".into(),
                    status.last_outcome.map_or(Value::Null, Value::string),
                ),
            ])
        })
        .collect();
    ok_response(vec![
        (
            "publish_interval_ms".into(),
            Value::Number(Number::PosInt(config.publish_interval.as_millis() as u64)),
        ),
        ("policy".into(), Value::Object(policy)),
        ("slots".into(), Value::Array(slots)),
    ])
}

fn estimate(
    registry: &EstimatorRegistry,
    name: &str,
    paths: &[Vec<PathStep>],
) -> Result<(u64, Vec<f64>), String> {
    let generation = registry
        .get(name)
        .ok_or_else(|| format!("no estimator {name:?} (try \"list\")"))?;
    let servable = generation.estimator();
    let mut id_paths = Vec::with_capacity(paths.len());
    for steps in paths {
        let mut ids = Vec::with_capacity(steps.len());
        for step in steps {
            ids.push(match step {
                PathStep::Name(n) => servable.resolve(n).map_err(|e| e.to_string())?,
                PathStep::Id(id) => phe_graph::LabelId(*id),
            });
        }
        id_paths.push(ids);
    }
    let estimates = generation
        .estimate_id_batch(&id_paths)
        .map_err(|e| e.to_string())?;
    Ok((generation.version(), estimates))
}

/// Answers a batch of expression strings against one pinned generation.
/// The first failure (parse error, over-wide expansion) aborts the whole
/// batch — matching `estimate`'s all-or-nothing contract.
fn estimate_exprs(
    registry: &EstimatorRegistry,
    name: &str,
    exprs: &[String],
    explain: bool,
) -> Result<(u64, Value), String> {
    let generation = registry
        .get(name)
        .ok_or_else(|| format!("no estimator {name:?} (try \"list\")"))?;
    let mut rows = Vec::with_capacity(exprs.len());
    for source in exprs {
        // Explain requests additionally capture the span tree of the
        // answer (parse -> expand -> prune -> estimate) so operators see
        // where an expression's time went.
        let (outcome, stages) = if explain {
            let (outcome, roots) =
                phe_obs::span::capture(|| generation.estimate_expr(source, true));
            (outcome, Some(roots))
        } else {
            (generation.estimate_expr(source, false), None)
        };
        let outcome = outcome.map_err(|e| format!("{source:?}: {e}"))?;
        let mut row = vec![
            (
                "estimate".into(),
                Value::Number(Number::Float(outcome.total)),
            ),
            ("paths".into(), Value::Number(Number::PosInt(outcome.width))),
            (
                "pruned".into(),
                Value::Number(Number::PosInt(outcome.pruned)),
            ),
            (
                "truncated".into(),
                Value::Number(Number::PosInt(outcome.truncated)),
            ),
            ("matches_empty".into(), Value::Bool(outcome.matches_empty)),
            ("cached".into(), Value::Bool(outcome.cached)),
        ];
        if let Some(branches) = outcome.branches {
            row.push((
                "branches".into(),
                Value::Array(
                    branches
                        .into_iter()
                        .map(|(path, estimate)| {
                            Value::Array(vec![
                                Value::string(path),
                                Value::Number(Number::Float(estimate)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if let Some(roots) = stages {
            let flat: Vec<Value> = roots
                .iter()
                .flat_map(|root| root.flatten())
                .map(|(depth, stage, duration)| {
                    Value::Object(vec![
                        ("stage".into(), Value::string(stage)),
                        ("depth".into(), Value::Number(Number::PosInt(depth as u64))),
                        (
                            "seconds".into(),
                            Value::Number(Number::Float(duration.as_secs_f64())),
                        ),
                    ])
                })
                .collect();
            row.push(("stages".into(), Value::Array(flat)));
        }
        rows.push(Value::Object(row));
    }
    Ok((generation.version(), Value::Array(rows)))
}

/// Kicks off a detached background rebuild: load the graph, build fresh
/// statistics through the sparse pipeline, hot-swap the slot. With
/// `maintain`, the graph and the sparse-retaining estimator are stored as
/// the slot's maintenance state, enabling subsequent `delta` ops.
/// Failures — including panics from the build layer (e.g. a graph with no
/// edge labels) — are counted in the metrics and logged to stderr; the
/// requesting connection got its acknowledgement long ago. The caller
/// must already hold the slot's rebuild mark
/// ([`EstimatorRegistry::try_begin_rebuild`]); it is released here on
/// every outcome.
#[allow(clippy::too_many_arguments)]
fn spawn_rebuild(
    registry: Arc<EstimatorRegistry>,
    metrics: Arc<ServiceMetrics>,
    name: String,
    graph_path: String,
    config: phe_core::EstimatorConfig,
    expected_version: u64,
    maintain: bool,
) {
    metrics.record_rebuild_started();
    std::thread::spawn(move || {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let graph = phe_graph::io::read_tsv_path(&graph_path)
                .map_err(|e| format!("reading {graph_path}: {e}"))?;
            let estimator = phe_core::PathSelectivityEstimator::build(&graph, config)
                .map_err(|e| format!("building statistics: {e}"))?;
            Ok::<_, String>((graph, estimator))
        }));
        match result {
            Ok(Ok((graph, estimator))) => {
                publish(
                    &registry,
                    &metrics,
                    &name,
                    expected_version,
                    maintain.then_some(graph),
                    estimator,
                    "rebuild",
                    || metrics.record_rebuild_superseded(),
                    || metrics.record_rebuild_failed(),
                );
            }
            Ok(Err(message)) => {
                metrics.record_rebuild_failed();
                eprintln!("rebuild of {name:?} failed: {message}");
            }
            Err(panic) => {
                metrics.record_rebuild_failed();
                eprintln!(
                    "rebuild of {name:?} failed: {}",
                    panic_message(panic.as_ref())
                );
            }
        }
        registry.finish_rebuild(&name);
    });
}

/// Kicks off a detached background delta application against the slot's
/// maintenance state: parse the changes file, count only the touched
/// paths, merge into the retained sparse catalog, and compare-and-swap
/// publish. On success the maintenance state advances to the post-delta
/// graph + estimator, so deltas chain. The caller must already hold the
/// slot's rebuild mark; it is released here on every outcome.
fn spawn_delta(
    registry: Arc<EstimatorRegistry>,
    metrics: Arc<ServiceMetrics>,
    name: String,
    changes_path: String,
    state: Arc<MaintenanceState>,
    expected_version: u64,
) {
    metrics.record_delta_started();
    std::thread::spawn(move || {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let delta = phe_graph::delta::read_changes_path(&changes_path, &state.graph)
                .map_err(|e| format!("reading {changes_path}: {e}"))?;
            let (estimator, graph) = state
                .estimator
                .apply_delta(&state.graph, &delta)
                .map_err(|e| format!("applying delta: {e}"))?;
            Ok::<_, String>((graph, estimator))
        }));
        match result {
            Ok(Ok((graph, estimator))) => {
                publish(
                    &registry,
                    &metrics,
                    &name,
                    expected_version,
                    Some(graph),
                    estimator,
                    "delta",
                    || metrics.record_delta_superseded(),
                    || metrics.record_delta_failed(),
                );
            }
            Ok(Err(message)) => {
                metrics.record_delta_failed();
                eprintln!("delta for {name:?} failed: {message}");
            }
            Err(panic) => {
                metrics.record_delta_failed();
                eprintln!(
                    "delta for {name:?} failed: {}",
                    panic_message(panic.as_ref())
                );
            }
        }
        registry.finish_rebuild(&name);
    });
}

/// Shared publish tail of the background workers: derive the servable
/// estimator, compare-and-swap it into the slot, and (when `graph` is
/// present) advance the slot's maintenance state. A failed CAS means a
/// newer publish landed mid-build; the fresher statistics win and the
/// result is discarded as superseded.
#[allow(clippy::too_many_arguments)]
fn publish(
    registry: &EstimatorRegistry,
    metrics: &ServiceMetrics,
    name: &str,
    expected_version: u64,
    graph: Option<phe_graph::Graph>,
    estimator: phe_core::PathSelectivityEstimator,
    what: &str,
    on_superseded: impl FnOnce(),
    on_failed: impl FnOnce(),
) {
    // Drift is sampled by `apply_delta` (rebuilds carry `None`), published
    // as per-slot gauges only once the CAS confirms these statistics won.
    let drift = estimator.drift().copied();
    let (servable, keep) = match graph {
        Some(graph) => {
            // The estimator must survive for maintenance, so the servable
            // is derived through its snapshot instead of consuming it.
            let derived = estimator
                .snapshot()
                .map_err(|e| e.to_string())
                .and_then(|s| ServableEstimator::from_snapshot(&s).map_err(|e| e.to_string()));
            match derived {
                Ok(servable) => (servable, Some(MaintenanceState { graph, estimator })),
                Err(message) => {
                    on_failed();
                    eprintln!("{what} for {name:?} failed to snapshot: {message}");
                    return;
                }
            }
        }
        None => (ServableEstimator::from_estimator(estimator), None),
    };
    // The maintenance update rides the compare-and-swap atomically: on
    // success a maintaining build stores its fresh state, and any other
    // publish invalidates whatever lineage the slot held (a later `delta`
    // is then refused instead of merging into a stale base).
    match registry.register_if_version_maintained(name, servable, expected_version, keep) {
        Some(version) => {
            if version > 1 {
                metrics.record_swap();
            }
            match drift {
                Some(drift) => metrics.record_drift(name, &drift),
                // No sampled drift means this publish started a fresh
                // lineage (full rebuild) or dropped maintenance entirely;
                // either way the old gauges describe dead statistics.
                None => metrics.clear_drift(name),
            }
        }
        None => {
            on_superseded();
            eprintln!("{what} for {name:?} superseded by a newer publish; discarded");
        }
    }
}

/// Best-effort panic payload extraction for the background workers' logs.
pub(crate) fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    panic
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| panic.downcast_ref::<&str>().copied())
        .unwrap_or("build panicked")
}

/// Reads and restores a snapshot file into a servable estimator.
///
/// A v5 snapshot may reference an external `.phc` catalog sidecar
/// (`catalog_file`, written by `phe build --catalog-file`). The reference
/// is resolved **relative to the snapshot file's own directory**, opened
/// through the memory-mapping reader — so the catalog payload stays
/// disk-resident for the life of the slot — cross-checked against the
/// snapshot's dimensions, and attached to the servable estimator for the
/// `list` op's residency columns.
pub fn load_snapshot(path: &str) -> Result<ServableEstimator, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let snapshot: phe_core::EstimatorSnapshot =
        serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"))?;
    let servable = ServableEstimator::from_snapshot(&snapshot).map_err(|e| e.to_string())?;
    let Some(sidecar) = snapshot.catalog_file.as_deref() else {
        return Ok(servable);
    };
    let catalog_path = std::path::Path::new(path).parent().map_or_else(
        || std::path::PathBuf::from(sidecar),
        |dir| dir.join(sidecar),
    );
    let catalog = phe_pathenum::file::open_catalog_file(&catalog_path)
        .map_err(|e| format!("opening catalog {}: {e}", catalog_path.display()))?;
    let encoding = catalog.encoding();
    if encoding.label_count() != snapshot.label_names.len() || encoding.max_len() != snapshot.k {
        return Err(format!(
            "catalog {} covers {} labels at k = {} but the snapshot declares {} at k = {}",
            catalog_path.display(),
            encoding.label_count(),
            encoding.max_len(),
            snapshot.label_names.len(),
            snapshot.k
        ));
    }
    Ok(servable.with_catalog(catalog))
}

// ------------------------------------------------------------------ SIGINT

static SIGINT_SEEN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn sigint_handler(_signum: i32) {
    // Only async-signal-safe work here: one atomic store.
    SIGINT_SEEN.store(true, Ordering::SeqCst);
}

/// Installs a SIGINT handler that flips a flag instead of killing the
/// process, so the serve loop can drain and print its metrics report.
/// Returns a closure polling the flag. On non-unix targets the closure is
/// always false (ctrl-C terminates the process as usual).
pub fn install_sigint_flag() -> impl Fn() -> bool {
    #[cfg(unix)]
    {
        // `signal(2)` via a direct libc binding: the compat environment has
        // no `libc` crate, and std exposes no signal API. SIGINT = 2 on
        // every unix this builds for.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        // SAFETY: `sigint_handler` is `extern "C"`, async-signal-safe
        // (one relaxed-free `SeqCst` store, no allocation, no locks), and
        // lives for the whole program; `signal(2)` itself cannot fault.
        unsafe {
            signal(SIGINT, sigint_handler as extern "C" fn(i32) as usize);
        }
    }
    || SIGINT_SEEN.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phe_core::{EstimatorConfig, HistogramKind, OrderingKind, PathSelectivityEstimator};
    use phe_datasets::{erdos_renyi, LabelDistribution};
    use std::time::Instant;

    fn test_registry() -> Arc<EstimatorRegistry> {
        let g = erdos_renyi(40, 240, 3, LabelDistribution::Zipf { exponent: 1.0 }, 11);
        let est = PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                k: 3,
                beta: 16,
                ordering: OrderingKind::SumBased,
                histogram: HistogramKind::VOptimalGreedy,
                threads: 1,
                retain_catalog: false,
                retain_sparse: false,
            },
        )
        .unwrap();
        let registry = Arc::new(EstimatorRegistry::with_default_counters());
        registry.register("default", ServableEstimator::from_estimator(est));
        registry
    }

    #[test]
    fn handle_line_answers_each_op() {
        let registry = test_registry();
        let metrics = Arc::new(ServiceMetrics::new());

        let (r, _, ok) = handle_line(r#"{"op":"ping"}"#, &registry, &metrics, None, true);
        assert!(ok && r.contains(r#""ok":true"#), "{r}");

        let (r, paths, ok) = handle_line(
            r#"{"op":"estimate","paths":[[0,1],[2]]}"#,
            &registry,
            &metrics,
            None,
            true,
        );
        assert!(ok, "{r}");
        assert_eq!(paths, 2);
        assert!(r.contains("estimates"), "{r}");
        assert!(r.contains(r#""version":1"#), "{r}");

        let (r, _, ok) = handle_line(r#"{"op":"list"}"#, &registry, &metrics, None, true);
        assert!(ok && r.contains("default"), "{r}");

        let (r, _, ok) = handle_line(r#"{"op":"metrics"}"#, &registry, &metrics, None, true);
        assert!(ok && r.contains("cache_hit_rate"), "{r}");
    }

    #[test]
    fn handle_line_answers_estimate_expr() {
        let registry = test_registry();
        let metrics = Arc::new(ServiceMetrics::new());

        let (r, exprs, ok) = handle_line(
            r#"{"op":"estimate_expr","exprs":["0|1","0/1?"]}"#,
            &registry,
            &metrics,
            None,
            true,
        );
        assert!(ok, "{r}");
        assert_eq!(exprs, 2);
        assert!(r.contains(r#""results""#), "{r}");
        assert!(r.contains(r#""paths":2"#), "{r}");
        assert!(r.contains(r#""cached":false"#), "{r}");

        // Same expression commuted: cache hit.
        let (r, _, ok) = handle_line(
            r#"{"op":"estimate_expr","exprs":["1|0"]}"#,
            &registry,
            &metrics,
            None,
            true,
        );
        assert!(ok && r.contains(r#""cached":true"#), "{r}");

        // Explain carries per-branch rows.
        let (r, _, ok) = handle_line(
            r#"{"op":"estimate_expr","exprs":["0|1"],"explain":true}"#,
            &registry,
            &metrics,
            None,
            true,
        );
        assert!(ok && r.contains(r#""branches":[["0","#), "{r}");

        // The list op reports the slot's expression-cache counters.
        let (r, _, ok) = handle_line(r#"{"op":"list"}"#, &registry, &metrics, None, true);
        assert!(ok && r.contains(r#""expr_cache_hits":1"#), "{r}");
        assert!(r.contains(r#""expr_cache_misses""#), "{r}");

        // Errors: bad expression aborts the batch; unknown estimator.
        let (r, _, ok) = handle_line(
            r#"{"op":"estimate_expr","exprs":["0|"]}"#,
            &registry,
            &metrics,
            None,
            true,
        );
        assert!(!ok && r.contains("unexpected end"), "{r}");
        let (r, _, ok) = handle_line(
            r#"{"op":"estimate_expr","estimator":"missing","exprs":["0"]}"#,
            &registry,
            &metrics,
            None,
            true,
        );
        assert!(!ok && r.contains("missing"), "{r}");
    }

    #[test]
    fn rebuild_hot_swaps_in_the_background() {
        let registry = test_registry();
        let metrics = Arc::new(ServiceMetrics::new());

        // Write a small graph for the rebuild to read.
        let g = erdos_renyi(30, 150, 3, LabelDistribution::Uniform, 7);
        let dir = std::env::temp_dir().join(format!("phe-rebuild-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.tsv");
        phe_graph::io::write_tsv_path(&g, &path).unwrap();

        let line = format!(
            r#"{{"op":"rebuild","name":"default","graph":{:?},"k":2,"beta":8}}"#,
            path.to_str().unwrap()
        );
        let (r, _, ok) = handle_line(&line, &registry, &metrics, None, true);
        assert!(ok && r.contains("rebuilding"), "{r}");

        // The swap lands asynchronously; poll the slot version.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let generation = registry.get("default").unwrap();
            if generation.version() == 2 {
                assert_eq!(generation.estimator().k(), 2);
                break;
            }
            assert!(Instant::now() < deadline, "rebuild never landed");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(metrics.report().rebuilds_started, 1);
        assert_eq!(metrics.report().rebuilds_failed, 0);
        assert_eq!(metrics.report().swaps, 1);

        // A bad graph path counts as a failed rebuild, without a response
        // error (the acknowledgement already went out).
        let (r, _, ok) = handle_line(
            r#"{"op":"rebuild","name":"default","graph":"/nonexistent.tsv"}"#,
            &registry,
            &metrics,
            None,
            true,
        );
        assert!(ok, "{r}");
        let deadline = Instant::now() + Duration::from_secs(30);
        while metrics.report().rebuilds_failed == 0 {
            assert!(Instant::now() < deadline, "failure never recorded");
            std::thread::sleep(Duration::from_millis(10));
        }

        // A graph file that parses to zero labels panics inside the build
        // layer; the panic is caught, counted as a failure, and the
        // slot's rebuild mark is released for the next attempt.
        let empty = dir.join("empty.tsv");
        std::fs::write(&empty, "# no edges\n").unwrap();
        let empty_line = format!(
            r#"{{"op":"rebuild","name":"default","graph":{:?}}}"#,
            empty.to_str().unwrap()
        );
        let failed_before = metrics.report().rebuilds_failed;
        let (r, _, ok) = handle_line(&empty_line, &registry, &metrics, None, true);
        assert!(ok, "{r}");
        let deadline = Instant::now() + Duration::from_secs(30);
        while metrics.report().rebuilds_failed == failed_before {
            assert!(Instant::now() < deadline, "panic never recorded");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            registry.try_begin_rebuild("default"),
            "mark must be released after a panicked rebuild"
        );
        // While a slot is marked, further rebuilds are refused.
        let (r, _, ok) = handle_line(&line, &registry, &metrics, None, true);
        assert!(!ok && r.contains("in flight"), "{r}");
        registry.finish_rebuild("default");

        // Disabled alongside load; bad parameters are synchronous errors.
        let (r, _, ok) = handle_line(&line, &registry, &metrics, None, false);
        assert!(!ok && r.contains("disabled"), "{r}");
        let (r, _, ok) = handle_line(
            r#"{"op":"rebuild","graph":"/g.tsv","ordering":"nope"}"#,
            &registry,
            &metrics,
            None,
            true,
        );
        assert!(!ok && r.contains("unknown ordering"), "{r}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delta_applies_incrementally_against_maintained_state() {
        let registry = test_registry();
        let metrics = Arc::new(ServiceMetrics::new());

        let g = erdos_renyi(30, 150, 3, LabelDistribution::Uniform, 7);
        let dir = std::env::temp_dir().join(format!("phe-delta-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("graph.tsv");
        phe_graph::io::write_tsv_path(&g, &graph_path).unwrap();

        // Without maintained state, delta is refused synchronously.
        let changes_path = dir.join("changes.tsv");
        let delta_line = format!(
            r#"{{"op":"delta","name":"default","changes":{:?}}}"#,
            changes_path.to_str().unwrap()
        );
        let (r, _, ok) = handle_line(&delta_line, &registry, &metrics, None, true);
        assert!(!ok && r.contains("maintain"), "{r}");
        assert!(
            registry.try_begin_rebuild("default"),
            "mark released after the refusal"
        );
        registry.finish_rebuild("default");

        // Rebuild with maintain: publishes and stores maintenance state.
        let rebuild_line = format!(
            r#"{{"op":"rebuild","name":"default","graph":{:?},"k":2,"beta":8,"maintain":true}}"#,
            graph_path.to_str().unwrap()
        );
        let (r, _, ok) = handle_line(&rebuild_line, &registry, &metrics, None, true);
        assert!(ok, "{r}");
        let deadline = Instant::now() + Duration::from_secs(30);
        while registry.get("default").unwrap().version() != 2 {
            assert!(
                Instant::now() < deadline,
                "maintaining rebuild never landed"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        let state = registry.maintenance("default").expect("state stored");
        assert!(state.estimator.sparse_catalog().is_some());

        // Write a changes file: drop one edge, add one fresh edge.
        let (s, lab, t) = g.iter_edges().next().unwrap();
        let name = g.labels().name(lab).unwrap();
        let fresh = (0..g.vertex_count() as u32)
            .flat_map(|a| (0..g.vertex_count() as u32).map(move |b| (a, b)))
            .find(|&(a, b)| !g.has_edge(phe_graph::VertexId(a), lab, phe_graph::VertexId(b)))
            .unwrap();
        std::fs::write(
            &changes_path,
            format!(
                "-\t{}\t{}\t{}\n+\t{}\t{}\t{}\n",
                s.0, name, t.0, fresh.0, name, fresh.1
            ),
        )
        .unwrap();

        let (r, _, ok) = handle_line(&delta_line, &registry, &metrics, None, true);
        assert!(ok && r.contains("applying-delta"), "{r}");
        let deadline = Instant::now() + Duration::from_secs(30);
        while registry.get("default").unwrap().version() != 3 {
            assert!(Instant::now() < deadline, "delta never landed");
            std::thread::sleep(Duration::from_millis(10));
        }

        // The published statistics are bit-identical to a full rebuild on
        // the changed graph, and the maintenance state advanced.
        let state = registry.maintenance("default").expect("state advanced");
        assert_eq!(state.estimator.applied_deltas(), 1);
        let fresh_build =
            PathSelectivityEstimator::build(&state.graph, *state.estimator.config()).unwrap();
        let generation = registry.get("default").unwrap();
        for l1 in 0..3u16 {
            for l2 in 0..3u16 {
                let path = vec![phe_graph::LabelId(l1), phe_graph::LabelId(l2)];
                let got = generation
                    .estimate_id_batch(std::slice::from_ref(&path))
                    .unwrap()[0];
                assert_eq!(got.to_bits(), fresh_build.estimate(&path).to_bits());
            }
        }
        let report = metrics.report();
        assert_eq!((report.deltas_started, report.deltas_failed), (1, 0));

        // Drift was sampled over the touched paths and published on every
        // surface: the registry row, the `list` op, and the Prometheus
        // exposition — all reading the same measurement.
        let row = &registry.list()[0];
        let drift = row.drift.expect("delta publishes a drift report");
        assert!(drift.sampled > 0 && drift.sampled <= drift.touched);
        assert!(
            (0.0..=1.0).contains(&drift.mean_abs_error_rate),
            "{drift:?}"
        );
        assert!(drift.max_q_error >= 1.0, "{drift:?}");
        let (r, _, ok) = handle_line(r#"{"op":"list"}"#, &registry, &metrics, None, true);
        assert!(ok && r.contains(r#""drift_mean_abs_error""#), "{r}");
        assert!(r.contains(r#""drift_sampled_paths""#), "{r}");
        let exposition = metrics.render_prometheus();
        phe_obs::parse_exposition(&exposition).expect("exposition must parse");
        assert!(
            exposition.contains(r#"phe_drift_mean_abs_error{slot="default"}"#),
            "{exposition}"
        );
        let (r, _, ok) = handle_line(
            r#"{"op":"metrics","format":"prometheus"}"#,
            &registry,
            &metrics,
            None,
            true,
        );
        assert!(ok && r.contains("phe_drift_sampled_paths"), "{r}");

        // A bad changes path is an asynchronous failure.
        let bad_line = r#"{"op":"delta","name":"default","changes":"/nonexistent.tsv"}"#;
        let (r, _, ok) = handle_line(bad_line, &registry, &metrics, None, true);
        assert!(ok, "{r}");
        let deadline = Instant::now() + Duration::from_secs(30);
        while metrics.report().deltas_failed == 0 {
            assert!(Instant::now() < deadline, "failure never recorded");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            registry.try_begin_rebuild("default"),
            "mark released after a failed delta"
        );
        registry.finish_rebuild("default");

        // A non-maintaining rebuild publishes statistics not derived from
        // the maintained lineage: the maintenance state is invalidated
        // with the swap, so further deltas are refused until the operator
        // runs a maintaining rebuild again.
        let plain_rebuild = format!(
            r#"{{"op":"rebuild","name":"default","graph":{:?},"k":2,"beta":8}}"#,
            graph_path.to_str().unwrap()
        );
        let (r, _, ok) = handle_line(&plain_rebuild, &registry, &metrics, None, true);
        assert!(ok, "{r}");
        let deadline = Instant::now() + Duration::from_secs(30);
        while registry.get("default").unwrap().version() != 4 {
            assert!(Instant::now() < deadline, "plain rebuild never landed");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            registry.maintenance("default").is_none(),
            "maintenance state must not survive a non-maintaining publish"
        );
        let (r, _, ok) = handle_line(&delta_line, &registry, &metrics, None, true);
        assert!(!ok && r.contains("maintain"), "{r}");

        // Disabled alongside load.
        let (r, _, ok) = handle_line(&delta_line, &registry, &metrics, None, false);
        assert!(!ok && r.contains("disabled"), "{r}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_snapshot_serves_external_catalogs_disk_resident() {
        // Build with a retained sparse catalog, then split the snapshot
        // the disk-resident way: statistics in JSON, catalog in a `.phc`
        // sidecar referenced by relative path.
        let g = erdos_renyi(50, 300, 3, LabelDistribution::Zipf { exponent: 1.0 }, 5);
        let est = PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                k: 3,
                beta: 16,
                threads: 1,
                retain_sparse: true,
                ..EstimatorConfig::default()
            },
        )
        .unwrap();
        let catalog = est.sparse_catalog().expect("retained").clone();
        let inline = est.snapshot().unwrap();
        let mut external = inline.clone();
        external.sparse_runs = None;
        external.catalog_file = Some("catalog.phc".into());

        let dir = std::env::temp_dir().join(format!("phe-mmap-load-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snapshot_path = dir.join("snapshot.json");
        std::fs::write(&snapshot_path, serde_json::to_string(&external).unwrap()).unwrap();
        phe_pathenum::file::write_catalog_file(&dir.join("catalog.phc"), &catalog).unwrap();

        let served = load_snapshot(snapshot_path.to_str().unwrap()).unwrap();
        let residency = served.catalog_residency().expect("sidecar attached");
        assert_eq!(residency.nonzero_paths, catalog.nonzero_count() as u64);
        assert_eq!(
            residency.payload_bytes,
            catalog.runs().payload_bytes() as u64
        );

        // Disk-resident answers are bit-identical to the heap route.
        let heap = ServableEstimator::from_snapshot(&inline).unwrap();
        for l1 in 0..3u16 {
            for l2 in 0..3u16 {
                for l3 in 0..3u16 {
                    let path = [
                        phe_graph::LabelId(l1),
                        phe_graph::LabelId(l2),
                        phe_graph::LabelId(l3),
                    ];
                    assert_eq!(
                        served.estimate_labels(&path).unwrap().to_bits(),
                        heap.estimate_labels(&path).unwrap().to_bits()
                    );
                }
            }
        }

        // The list op surfaces the residency columns.
        let registry = Arc::new(EstimatorRegistry::with_default_counters());
        let metrics = Arc::new(ServiceMetrics::new());
        let line = format!(
            r#"{{"op":"load","name":"disk","snapshot":{:?}}}"#,
            snapshot_path.to_str().unwrap()
        );
        let (r, _, ok) = handle_line(&line, &registry, &metrics, None, true);
        assert!(ok, "{r}");
        let (r, _, ok) = handle_line(r#"{"op":"list"}"#, &registry, &metrics, None, true);
        assert!(ok && r.contains(r#""catalog_mapped""#), "{r}");
        assert!(r.contains(r#""follow_pruning":true"#), "{r}");
        assert!(r.contains(r#""catalog_payload_bytes""#), "{r}");

        // A missing sidecar refuses the load; so does a sidecar whose
        // dimensions disagree with the snapshot.
        std::fs::remove_file(dir.join("catalog.phc")).unwrap();
        let err = load_snapshot(snapshot_path.to_str().unwrap())
            .err()
            .unwrap();
        assert!(err.contains("opening catalog"), "{err}");
        let narrow = phe_pathenum::SparseCatalog::compute(&g, 2).unwrap();
        phe_pathenum::file::write_catalog_file(&dir.join("catalog.phc"), &narrow).unwrap();
        let err = load_snapshot(snapshot_path.to_str().unwrap())
            .err()
            .unwrap();
        assert!(err.contains("k = 2"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn handle_line_reports_errors_without_dying() {
        let registry = test_registry();
        let metrics = Arc::new(ServiceMetrics::new());
        for bad in [
            "garbage",
            r#"{"op":"estimate","estimator":"missing","paths":[[0]]}"#,
            r#"{"op":"estimate","paths":[[0,0,0,0,0]]}"#,
            r#"{"op":"estimate","paths":[["nope"]]}"#,
            r#"{"op":"load","name":"x","snapshot":"/nonexistent.json"}"#,
        ] {
            let (r, _, ok) = handle_line(bad, &registry, &metrics, None, true);
            assert!(!ok, "{bad} should fail");
            assert!(r.contains(r#""ok":false"#), "{r}");
        }
        // load disabled
        let (r, _, ok) = handle_line(
            r#"{"op":"load","name":"x","snapshot":"/y.json"}"#,
            &registry,
            &metrics,
            None,
            false,
        );
        assert!(!ok && r.contains("disabled"), "{r}");
    }
}
