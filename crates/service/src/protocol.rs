//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response per line, over a plain TCP stream —
//! trivially scriptable (`nc`, any language) and cheap to parse. Batched
//! estimation is first-class: a single `estimate` request carries many
//! paths and is answered by one pinned estimator generation.
//!
//! Every response carries `"ok": true` (plus op-specific fields) or
//! `"ok": false` with an `"error"` string. Unknown ops, malformed JSON,
//! and bad field types are per-line errors; the connection stays open.
//!
//! Two structured refusal shapes extend the plain error line:
//!
//! * `{"ok":false,"error":…,"overloaded":true,"reason":…}` — admission
//!   control refused the request (`reason` is `"capacity"` for the
//!   max-connections cap, `"quota"` for the per-client in-flight quota,
//!   `"shed"` for load shedding); back off and retry.
//! * `{"ok":false,"error":…,"backpressure":true}` — the maintenance
//!   delta queue is at its cap; the batch was not enqueued. Retry after
//!   the next compacted publish.
//!
//! ## Op reference
//!
//! | op | fields | answer | notes |
//! |----|--------|--------|-------|
//! | `ping` | — | `{"ok":true}` | liveness probe |
//! | `estimate` | `estimator` (default `"default"`), `paths` | `version`, `estimates` | one pinned generation answers the whole batch |
//! | `estimate_expr` | `estimator` (default `"default"`), `exprs` (expression strings), `explain` (false) | `version`, `results` rows: `estimate`, `paths`, `pruned`, `truncated`, `matches_empty`, `cached`, plus `branches` (`[path, estimate]` pairs) when `explain` | regular path expressions — alternation `(a\|b)`, optional `a?`, repetition `a{m,n}`, wildcard `.`; cached by *normalized* expression, so `(a\|b)c` and `(b\|a)c` share an entry; one pinned generation answers the whole batch |
//! | `list` | — | `estimators` rows: `name`, `version`, `k`, `labels`, `size_bytes`, `description`, `base_build_id`, `applied_deltas` (lineage; `null` for pre-lineage snapshots), plus `maintained_catalog_bytes` / `maintained_plain_bytes` / `maintained_bytes_per_entry` for slots with maintenance state and `drift_mean_abs_error` / `drift_max_q_error` / `drift_sampled_paths` once a delta has been applied | each row read from a single generation; a climbing `applied_deltas` flags a slot due for a compacting rebuild |
//! | `metrics` | `format` (`"report"`) | `metrics` object, or `exposition` text when `format` is `"prometheus"` | qps, p50/p99, cache hit rate, rebuild + delta counters; the Prometheus form is the same text the `--metrics-addr` scrape endpoint serves |
//! | `load` | `name`, `snapshot` | `version` | restores a snapshot file from the **server's** filesystem and hot-swaps the slot |
//! | `rebuild` | `name`, `graph`, `k` (3), `beta` (64), `ordering` (`"sum-based"`), `histogram` (`"v-optimal-greedy"`), `threads` (1), `maintain` (false) | `{"status":"rebuilding"}` | asynchronous full build from a graph file |
//! | `delta` | `name`, `changes` | `{"status":"applying-delta"}` (immediate mode) or `{"status":"queued","queued":n}` (maintenance loop) | incremental update from a changes file; with a maintenance loop the batch is queued for the next compacted publish |
//! | `maintenance` | `action` (`"status"`), `name` (for `compact`), `max_applied_deltas` / `drift_scale` / `drift_mean_threshold`+`drift_q_threshold` (for `set-policy`) | `status`/`set-policy`: `policy`, `publish_interval_ms`, `slots` rows (`queued`, `enqueued`, `compacted`, `purged`, `last_trigger`, `last_outcome`); `compact`: `outcome` | inspect or steer the maintenance loop; refused when the server runs without one |
//!
//! ```text
//! → {"op":"ping"}
//! ← {"ok":true}
//! → {"op":"estimate","estimator":"main","paths":[["knows","likes"],[0,1]]}
//! ← {"ok":true,"version":1,"estimates":[123.0,7.5]}
//! → {"op":"estimate_expr","estimator":"main","exprs":["(knows|likes)/knows?"]}
//! ← {"ok":true,"version":1,"results":[{"estimate":130.5,"paths":4,"pruned":0,"truncated":0,"matches_empty":false,"cached":false}]}
//! → {"op":"rebuild","name":"main","graph":"/path/graph.tsv","k":3,"beta":64,"maintain":true}
//! ← {"ok":true,"status":"rebuilding"}
//! → {"op":"delta","name":"main","changes":"/path/changes.tsv"}
//! ← {"ok":true,"status":"applying-delta"}
//! ```
//!
//! ## Background publishes: `rebuild` and `delta`
//!
//! Both ops answer immediately; a background thread does the work and
//! publishes with a **compare-and-swap** on the slot version, so a result
//! that raced with a newer `load`/`rebuild` is discarded (counted as
//! *superseded* in `metrics`), never published over fresher statistics.
//! Watch the slot's `version` via `list` to observe the swap. One
//! background job per slot at a time; concurrent requests are refused
//! with an error.
//!
//! `rebuild` reads a graph TSV and builds fresh statistics through the
//! sparse pipeline. With `"maintain": true` it additionally keeps the
//! graph + sparse catalog as the slot's *maintenance state*, which is
//! what makes `delta` possible.
//!
//! `delta` reads a changes file (`+<TAB>src<TAB>label<TAB>dst` /
//! `-<TAB>src<TAB>label<TAB>dst` lines) against the slot's maintenance
//! state, counts only the touched paths, merges them into the retained
//! sparse catalog, and hot-swaps statistics **bit-identical** to a full
//! rebuild on the changed graph — at a cost proportional to the change.
//! The maintenance state advances with each applied delta, so deltas
//! chain. A slot without maintenance state (never rebuilt with
//! `maintain`) refuses the op synchronously.
//!
//! Path steps may be label names (strings) or raw label ids (integers);
//! a batch may mix both styles between paths.

use serde_json::{Number, Value};

use crate::metrics::MetricsReport;

/// One step of a requested path: a label name or a raw id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathStep {
    /// Resolve through the estimator's label names.
    Name(String),
    /// Use the id directly.
    Id(u16),
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Batched estimation against a named estimator.
    Estimate {
        /// Registry slot name.
        estimator: String,
        /// The batch of paths.
        paths: Vec<Vec<PathStep>>,
    },
    /// Batched regular-path-expression estimation against a named
    /// estimator. Expression strings use the `phe-query` grammar
    /// (`(a|b)/c?`, `a{1,3}`, `.`); answers are cached per slot under the
    /// normalized expression.
    EstimateExpr {
        /// Registry slot name.
        estimator: String,
        /// The batch of expression strings.
        exprs: Vec<String>,
        /// Include per-branch `(path, estimate)` rows in each result
        /// (bypasses the expression cache).
        explain: bool,
    },
    /// List registered estimators.
    List,
    /// Service metrics snapshot.
    Metrics {
        /// Answer with the Prometheus text exposition (the same surface
        /// the scrape endpoint serves) instead of the JSON report.
        prometheus: bool,
    },
    /// Load (or hot-swap) a snapshot file from the server's filesystem.
    Load {
        /// Registry slot name to publish under.
        name: String,
        /// Path to the snapshot JSON on the server host.
        snapshot: String,
    },
    /// Rebuild a slot's statistics from a graph file on the server's
    /// filesystem, in the background, through the sparse build pipeline;
    /// the finished estimator hot-swaps the slot.
    Rebuild {
        /// Registry slot name to publish under.
        name: String,
        /// Path to the graph TSV on the server host.
        graph: String,
        /// Maximum path length `k`.
        k: usize,
        /// Histogram bucket budget β.
        beta: usize,
        /// Ordering method name (e.g. `"sum-based"`).
        ordering: String,
        /// Histogram family name (e.g. `"v-optimal-greedy"`).
        histogram: String,
        /// Worker threads for the background build. Defaults to 1 so a
        /// rebuild shares the machine with the serving workers instead of
        /// starving them; raise it explicitly when latency can spare the
        /// cores (0 ⇒ all cores).
        threads: usize,
        /// Keep the graph + sparse catalog as the slot's maintenance
        /// state, enabling subsequent `delta` ops. Defaults to `false`
        /// (the state costs `O(|E| + realized paths)` memory).
        maintain: bool,
    },
    /// Apply a changes file to a slot's maintained statistics in the
    /// background: incremental counting over only the touched paths,
    /// merged into the retained sparse catalog, hot-swapped on completion.
    /// Requires an earlier `rebuild` with `"maintain": true`.
    Delta {
        /// Registry slot name to update.
        name: String,
        /// Path to the changes file on the server host.
        changes: String,
    },
    /// Inspect or steer the maintenance loop: queue depths and last
    /// trigger per slot, the rebuild policy, or a forced compaction.
    /// Refused when the server runs without a maintenance loop.
    Maintenance {
        /// Registry slot name (`compact` acts on it; `status` and
        /// `set-policy` are loop-wide).
        name: String,
        /// What to do.
        action: MaintenanceAction,
    },
}

/// The `maintenance` op's sub-command.
#[derive(Debug, Clone, PartialEq)]
pub enum MaintenanceAction {
    /// Report the loop's policy, publish interval, and per-slot queue
    /// depth + counters + last trigger/outcome.
    Status,
    /// Compact the named slot's queue now — one counting pass over the
    /// composed batches, publish, and rebuild-trigger evaluation —
    /// instead of waiting for the next publish interval.
    Compact,
    /// Merge the provided fields into the rebuild policy; absent fields
    /// keep their current values.
    SetPolicy {
        /// Full rebuild once this many deltas are in the lineage
        /// (0 disables the arm).
        max_applied_deltas: Option<u64>,
        /// Multiplier on the Baraud–Birgé drift bound (≤ 0 disables
        /// drift-triggered rebuilds).
        drift_scale: Option<f64>,
        /// Pin the drift threshold explicitly: mean |error| rate arm.
        /// Must be given together with `drift_q_threshold`.
        drift_mean_threshold: Option<f64>,
        /// Pin the drift threshold explicitly: worst q-error arm.
        drift_q_threshold: Option<f64>,
    },
}

/// A protocol-level failure (malformed request line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ProtocolError {}

fn err(msg: impl Into<String>) -> ProtocolError {
    ProtocolError(msg.into())
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, ProtocolError> {
        let value: Value =
            serde_json::from_str(line).map_err(|e| err(format!("invalid JSON: {e}")))?;
        let op = value
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| err("missing string field \"op\""))?;
        match op {
            "ping" => Ok(Request::Ping),
            "list" => Ok(Request::List),
            "metrics" => match value.get("format") {
                None => Ok(Request::Metrics { prometheus: false }),
                Some(Value::String(f)) if f == "report" => {
                    Ok(Request::Metrics { prometheus: false })
                }
                Some(Value::String(f)) if f == "prometheus" => {
                    Ok(Request::Metrics { prometheus: true })
                }
                Some(other) => Err(err(format!(
                    "field \"format\" must be \"report\" or \"prometheus\", got {other:?}"
                ))),
            },
            "estimate" => {
                let estimator = value
                    .get("estimator")
                    .and_then(Value::as_str)
                    .unwrap_or("default")
                    .to_owned();
                let paths_value = value
                    .get("paths")
                    .and_then(Value::as_array)
                    .ok_or_else(|| err("estimate needs an array field \"paths\""))?;
                let mut paths = Vec::with_capacity(paths_value.len());
                for p in paths_value {
                    let steps_value = p
                        .as_array()
                        .ok_or_else(|| err("each path must be an array of steps"))?;
                    let mut steps = Vec::with_capacity(steps_value.len());
                    for s in steps_value {
                        steps.push(match s {
                            Value::String(name) => PathStep::Name(name.clone()),
                            Value::Number(n) => {
                                let id = n
                                    .as_u64()
                                    .and_then(|v| u16::try_from(v).ok())
                                    .ok_or_else(|| err(format!("label id {n:?} out of range")))?;
                                PathStep::Id(id)
                            }
                            other => {
                                return Err(err(format!(
                                    "path step must be a name or id, got {other:?}"
                                )))
                            }
                        });
                    }
                    paths.push(steps);
                }
                Ok(Request::Estimate { estimator, paths })
            }
            "estimate_expr" => {
                let estimator = value
                    .get("estimator")
                    .and_then(Value::as_str)
                    .unwrap_or("default")
                    .to_owned();
                let exprs_value = value
                    .get("exprs")
                    .and_then(Value::as_array)
                    .ok_or_else(|| err("estimate_expr needs an array field \"exprs\""))?;
                let mut exprs = Vec::with_capacity(exprs_value.len());
                for e in exprs_value {
                    match e {
                        Value::String(s) => exprs.push(s.clone()),
                        other => {
                            return Err(err(format!(
                                "each expression must be a string, got {other:?}"
                            )))
                        }
                    }
                }
                let explain = match value.get("explain") {
                    None => false,
                    Some(Value::Bool(b)) => *b,
                    Some(other) => {
                        return Err(err(format!(
                            "field \"explain\" must be a boolean, got {other:?}"
                        )))
                    }
                };
                Ok(Request::EstimateExpr {
                    estimator,
                    exprs,
                    explain,
                })
            }
            "load" => {
                let name = value
                    .get("name")
                    .and_then(Value::as_str)
                    .unwrap_or("default")
                    .to_owned();
                let snapshot = value
                    .get("snapshot")
                    .and_then(Value::as_str)
                    .ok_or_else(|| err("load needs a string field \"snapshot\""))?
                    .to_owned();
                Ok(Request::Load { name, snapshot })
            }
            "rebuild" => {
                let name = value
                    .get("name")
                    .and_then(Value::as_str)
                    .unwrap_or("default")
                    .to_owned();
                let graph = value
                    .get("graph")
                    .and_then(Value::as_str)
                    .ok_or_else(|| err("rebuild needs a string field \"graph\""))?
                    .to_owned();
                let uint_field = |field: &str, default: u64| -> Result<usize, ProtocolError> {
                    match value.get(field) {
                        None => Ok(default as usize),
                        Some(Value::Number(n)) => n.as_u64().map(|v| v as usize).ok_or_else(|| {
                            err(format!("field {field:?} must be a non-negative integer"))
                        }),
                        Some(other) => Err(err(format!(
                            "field {field:?} must be a number, got {other:?}"
                        ))),
                    }
                };
                let k = uint_field("k", 3)?;
                let beta = uint_field("beta", 64)?;
                let threads = uint_field("threads", 1)?;
                let ordering = value
                    .get("ordering")
                    .and_then(Value::as_str)
                    .unwrap_or("sum-based")
                    .to_owned();
                let histogram = value
                    .get("histogram")
                    .and_then(Value::as_str)
                    .unwrap_or("v-optimal-greedy")
                    .to_owned();
                let maintain = match value.get("maintain") {
                    None => false,
                    Some(Value::Bool(b)) => *b,
                    Some(other) => {
                        return Err(err(format!(
                            "field \"maintain\" must be a boolean, got {other:?}"
                        )))
                    }
                };
                Ok(Request::Rebuild {
                    name,
                    graph,
                    k,
                    beta,
                    ordering,
                    histogram,
                    threads,
                    maintain,
                })
            }
            "delta" => {
                let name = value
                    .get("name")
                    .and_then(Value::as_str)
                    .unwrap_or("default")
                    .to_owned();
                let changes = value
                    .get("changes")
                    .and_then(Value::as_str)
                    .ok_or_else(|| err("delta needs a string field \"changes\""))?
                    .to_owned();
                Ok(Request::Delta { name, changes })
            }
            "maintenance" => {
                let name = value
                    .get("name")
                    .and_then(Value::as_str)
                    .unwrap_or("default")
                    .to_owned();
                let action = match value.get("action").and_then(Value::as_str) {
                    None | Some("status") => MaintenanceAction::Status,
                    Some("compact") => MaintenanceAction::Compact,
                    Some("set-policy") => {
                        let uint = |field: &str| -> Result<Option<u64>, ProtocolError> {
                            match value.get(field) {
                                None => Ok(None),
                                Some(Value::Number(n)) => n.as_u64().map(Some).ok_or_else(|| {
                                    err(format!("field {field:?} must be a non-negative integer"))
                                }),
                                Some(other) => Err(err(format!(
                                    "field {field:?} must be a number, got {other:?}"
                                ))),
                            }
                        };
                        let float = |field: &str| -> Result<Option<f64>, ProtocolError> {
                            match value.get(field) {
                                None => Ok(None),
                                Some(Value::Number(n)) => Ok(Some(n.as_f64())),
                                Some(other) => Err(err(format!(
                                    "field {field:?} must be a number, got {other:?}"
                                ))),
                            }
                        };
                        let drift_mean_threshold = float("drift_mean_threshold")?;
                        let drift_q_threshold = float("drift_q_threshold")?;
                        if drift_mean_threshold.is_some() != drift_q_threshold.is_some() {
                            return Err(err(
                                "\"drift_mean_threshold\" and \"drift_q_threshold\" must be \
                                 given together",
                            ));
                        }
                        MaintenanceAction::SetPolicy {
                            max_applied_deltas: uint("max_applied_deltas")?,
                            drift_scale: float("drift_scale")?,
                            drift_mean_threshold,
                            drift_q_threshold,
                        }
                    }
                    Some(other) => {
                        return Err(err(format!(
                            "field \"action\" must be \"status\", \"compact\", or \
                             \"set-policy\", got {other:?}"
                        )))
                    }
                };
                Ok(Request::Maintenance { name, action })
            }
            other => Err(err(format!("unknown op {other:?}"))),
        }
    }

    /// Serializes this request to one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let value = match self {
            Request::Ping => Value::Object(vec![("op".into(), Value::string("ping"))]),
            Request::List => Value::Object(vec![("op".into(), Value::string("list"))]),
            Request::Metrics { prometheus } => Value::Object(vec![
                ("op".into(), Value::string("metrics")),
                (
                    "format".into(),
                    Value::string(if *prometheus { "prometheus" } else { "report" }),
                ),
            ]),
            Request::Estimate { estimator, paths } => {
                let paths_value = Value::Array(
                    paths
                        .iter()
                        .map(|p| {
                            Value::Array(
                                p.iter()
                                    .map(|s| match s {
                                        PathStep::Name(n) => Value::string(n.clone()),
                                        PathStep::Id(id) => {
                                            Value::Number(Number::PosInt(*id as u64))
                                        }
                                    })
                                    .collect(),
                            )
                        })
                        .collect(),
                );
                Value::Object(vec![
                    ("op".into(), Value::string("estimate")),
                    ("estimator".into(), Value::string(estimator.clone())),
                    ("paths".into(), paths_value),
                ])
            }
            Request::EstimateExpr {
                estimator,
                exprs,
                explain,
            } => Value::Object(vec![
                ("op".into(), Value::string("estimate_expr")),
                ("estimator".into(), Value::string(estimator.clone())),
                (
                    "exprs".into(),
                    Value::Array(exprs.iter().map(|e| Value::string(e.clone())).collect()),
                ),
                ("explain".into(), Value::Bool(*explain)),
            ]),
            Request::Load { name, snapshot } => Value::Object(vec![
                ("op".into(), Value::string("load")),
                ("name".into(), Value::string(name.clone())),
                ("snapshot".into(), Value::string(snapshot.clone())),
            ]),
            Request::Rebuild {
                name,
                graph,
                k,
                beta,
                ordering,
                histogram,
                threads,
                maintain,
            } => Value::Object(vec![
                ("op".into(), Value::string("rebuild")),
                ("name".into(), Value::string(name.clone())),
                ("graph".into(), Value::string(graph.clone())),
                ("k".into(), Value::Number(Number::PosInt(*k as u64))),
                ("beta".into(), Value::Number(Number::PosInt(*beta as u64))),
                ("ordering".into(), Value::string(ordering.clone())),
                ("histogram".into(), Value::string(histogram.clone())),
                (
                    "threads".into(),
                    Value::Number(Number::PosInt(*threads as u64)),
                ),
                ("maintain".into(), Value::Bool(*maintain)),
            ]),
            Request::Delta { name, changes } => Value::Object(vec![
                ("op".into(), Value::string("delta")),
                ("name".into(), Value::string(name.clone())),
                ("changes".into(), Value::string(changes.clone())),
            ]),
            Request::Maintenance { name, action } => {
                let mut fields = vec![
                    ("op".into(), Value::string("maintenance")),
                    ("name".into(), Value::string(name.clone())),
                ];
                match action {
                    MaintenanceAction::Status => {
                        fields.push(("action".into(), Value::string("status")));
                    }
                    MaintenanceAction::Compact => {
                        fields.push(("action".into(), Value::string("compact")));
                    }
                    MaintenanceAction::SetPolicy {
                        max_applied_deltas,
                        drift_scale,
                        drift_mean_threshold,
                        drift_q_threshold,
                    } => {
                        fields.push(("action".into(), Value::string("set-policy")));
                        if let Some(n) = max_applied_deltas {
                            fields.push((
                                "max_applied_deltas".into(),
                                Value::Number(Number::PosInt(*n)),
                            ));
                        }
                        for (key, v) in [
                            ("drift_scale", drift_scale),
                            ("drift_mean_threshold", drift_mean_threshold),
                            ("drift_q_threshold", drift_q_threshold),
                        ] {
                            if let Some(v) = v {
                                fields.push((key.into(), Value::Number(Number::Float(*v))));
                            }
                        }
                    }
                }
                Value::Object(fields)
            }
        };
        to_json_line(&value)
    }
}

/// Serializes a protocol line. The value trees built in this module
/// cannot fail the serializer, but the API admits an error — degrade to
/// a self-describing error line instead of panicking mid-connection.
fn to_json_line(value: &Value) -> String {
    serde_json::to_string(value)
        .unwrap_or_else(|_| "{\"ok\":false,\"error\":\"response serialization failed\"}".to_owned())
}

/// Builds a success response carrying `fields`.
pub fn ok_response(mut fields: Vec<(String, Value)>) -> String {
    let mut all = vec![("ok".to_string(), Value::Bool(true))];
    all.append(&mut fields);
    to_json_line(&Value::Object(all))
}

/// Builds an error response.
pub fn error_response(message: &str) -> String {
    to_json_line(&Value::Object(vec![
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::string(message)),
    ]))
}

/// Builds the structured admission-control refusal: an error line
/// additionally carrying `"overloaded": true` and a machine-readable
/// `"reason"` (`"capacity"`, `"quota"`, or `"shed"`), so clients can
/// distinguish back-off-and-retry from a request that is simply wrong.
pub fn overloaded_response(reason: &str, message: &str) -> String {
    to_json_line(&Value::Object(vec![
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::string(message)),
        ("overloaded".to_string(), Value::Bool(true)),
        ("reason".to_string(), Value::string(reason)),
    ]))
}

/// Builds the structured maintenance backpressure refusal: the delta
/// queue is at its configured cap, so the batch was **not** enqueued.
/// Carries `"backpressure": true`; the client should retry after the
/// next compacted publish drains the queue.
pub fn backpressure_response(message: &str) -> String {
    to_json_line(&Value::Object(vec![
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::string(message)),
        ("backpressure".to_string(), Value::Bool(true)),
    ]))
}

/// Renders a metrics report as a JSON object.
pub fn metrics_to_value(report: &MetricsReport) -> Value {
    Value::Object(vec![
        (
            "uptime_seconds".into(),
            Value::Number(Number::Float(report.uptime.as_secs_f64())),
        ),
        (
            "requests".into(),
            Value::Number(Number::PosInt(report.requests)),
        ),
        ("paths".into(), Value::Number(Number::PosInt(report.paths))),
        (
            "errors".into(),
            Value::Number(Number::PosInt(report.errors)),
        ),
        ("swaps".into(), Value::Number(Number::PosInt(report.swaps))),
        (
            "rebuilds_started".into(),
            Value::Number(Number::PosInt(report.rebuilds_started)),
        ),
        (
            "rebuilds_failed".into(),
            Value::Number(Number::PosInt(report.rebuilds_failed)),
        ),
        (
            "rebuilds_superseded".into(),
            Value::Number(Number::PosInt(report.rebuilds_superseded)),
        ),
        (
            "deltas_started".into(),
            Value::Number(Number::PosInt(report.deltas_started)),
        ),
        (
            "deltas_failed".into(),
            Value::Number(Number::PosInt(report.deltas_failed)),
        ),
        (
            "deltas_superseded".into(),
            Value::Number(Number::PosInt(report.deltas_superseded)),
        ),
        ("qps".into(), Value::Number(Number::Float(report.qps))),
        (
            "p50_us".into(),
            Value::Number(Number::Float(report.p50.as_secs_f64() * 1e6)),
        ),
        (
            "p99_us".into(),
            Value::Number(Number::Float(report.p99.as_secs_f64() * 1e6)),
        ),
        (
            "cache_hits".into(),
            Value::Number(Number::PosInt(report.cache_hits)),
        ),
        (
            "cache_misses".into(),
            Value::Number(Number::PosInt(report.cache_misses)),
        ),
        (
            "cache_hit_rate".into(),
            Value::Number(Number::Float(report.cache_hit_rate)),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_name_and_id_paths() {
        let r = Request::parse(
            r#"{"op":"estimate","estimator":"main","paths":[["knows","likes"],[0,1]]}"#,
        )
        .unwrap();
        assert_eq!(
            r,
            Request::Estimate {
                estimator: "main".into(),
                paths: vec![
                    vec![
                        PathStep::Name("knows".into()),
                        PathStep::Name("likes".into())
                    ],
                    vec![PathStep::Id(0), PathStep::Id(1)],
                ],
            }
        );
    }

    #[test]
    fn round_trips_through_to_line() {
        let requests = vec![
            Request::Ping,
            Request::List,
            Request::Metrics { prometheus: false },
            Request::Metrics { prometheus: true },
            Request::Estimate {
                estimator: "default".into(),
                paths: vec![vec![PathStep::Name("a".into()), PathStep::Id(3)]],
            },
            Request::EstimateExpr {
                estimator: "main".into(),
                exprs: vec!["(a|b)/c?".into(), "a{1,3}".into()],
                explain: true,
            },
            Request::Load {
                name: "x".into(),
                snapshot: "/tmp/s.json".into(),
            },
            Request::Rebuild {
                name: "x".into(),
                graph: "/tmp/g.tsv".into(),
                k: 4,
                beta: 128,
                ordering: "sum-based".into(),
                histogram: "equi-width".into(),
                threads: 2,
                maintain: true,
            },
            Request::Delta {
                name: "x".into(),
                changes: "/tmp/changes.tsv".into(),
            },
            Request::Maintenance {
                name: "default".into(),
                action: MaintenanceAction::Status,
            },
            Request::Maintenance {
                name: "x".into(),
                action: MaintenanceAction::Compact,
            },
            Request::Maintenance {
                name: "default".into(),
                action: MaintenanceAction::SetPolicy {
                    max_applied_deltas: Some(8),
                    drift_scale: Some(2.5),
                    drift_mean_threshold: Some(0.25),
                    drift_q_threshold: Some(3.5),
                },
            },
            Request::Maintenance {
                name: "default".into(),
                action: MaintenanceAction::SetPolicy {
                    max_applied_deltas: None,
                    drift_scale: Some(0.0),
                    drift_mean_threshold: None,
                    drift_q_threshold: None,
                },
            },
        ];
        for r in requests {
            assert_eq!(Request::parse(&r.to_line()).unwrap(), r);
        }
    }

    #[test]
    fn maintenance_parses_with_defaults_and_errors() {
        let r = Request::parse(r#"{"op":"maintenance"}"#).unwrap();
        assert_eq!(
            r,
            Request::Maintenance {
                name: "default".into(),
                action: MaintenanceAction::Status,
            }
        );
        assert!(Request::parse(r#"{"op":"maintenance","action":"explode"}"#).is_err());
        assert!(Request::parse(
            r#"{"op":"maintenance","action":"set-policy","max_applied_deltas":-1}"#
        )
        .is_err());
        // A pinned drift threshold needs both arms.
        assert!(Request::parse(
            r#"{"op":"maintenance","action":"set-policy","drift_mean_threshold":0.2}"#
        )
        .is_err());
    }

    #[test]
    fn rebuild_defaults_and_errors() {
        let r = Request::parse(r#"{"op":"rebuild","graph":"/g.tsv"}"#).unwrap();
        assert_eq!(
            r,
            Request::Rebuild {
                name: "default".into(),
                graph: "/g.tsv".into(),
                k: 3,
                beta: 64,
                ordering: "sum-based".into(),
                histogram: "v-optimal-greedy".into(),
                threads: 1,
                maintain: false,
            }
        );
        assert!(Request::parse(r#"{"op":"rebuild"}"#).is_err());
        assert!(Request::parse(r#"{"op":"rebuild","graph":"/g","k":"three"}"#).is_err());
        assert!(Request::parse(r#"{"op":"rebuild","graph":"/g","maintain":3}"#).is_err());
    }

    #[test]
    fn delta_parses_with_defaults_and_errors() {
        let r = Request::parse(r#"{"op":"delta","changes":"/c.tsv"}"#).unwrap();
        assert_eq!(
            r,
            Request::Delta {
                name: "default".into(),
                changes: "/c.tsv".into(),
            }
        );
        assert!(Request::parse(r#"{"op":"delta"}"#).is_err());
        assert!(Request::parse(r#"{"op":"delta","changes":7}"#).is_err());
    }

    #[test]
    fn estimator_defaults_to_default() {
        let r = Request::parse(r#"{"op":"estimate","paths":[[1]]}"#).unwrap();
        assert!(matches!(r, Request::Estimate { estimator, .. } if estimator == "default"));
    }

    #[test]
    fn estimate_expr_parses_defaults_and_errors() {
        let r = Request::parse(r#"{"op":"estimate_expr","exprs":["(a|b)/c"]}"#).unwrap();
        assert_eq!(
            r,
            Request::EstimateExpr {
                estimator: "default".into(),
                exprs: vec!["(a|b)/c".into()],
                explain: false,
            }
        );
        assert!(Request::parse(r#"{"op":"estimate_expr"}"#).is_err());
        assert!(Request::parse(r#"{"op":"estimate_expr","exprs":[7]}"#).is_err());
        assert!(Request::parse(r#"{"op":"estimate_expr","exprs":["a"],"explain":3}"#).is_err());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"op":"nope"}"#).is_err());
        assert!(Request::parse(r#"{"op":"estimate"}"#).is_err());
        assert!(Request::parse(r#"{"op":"estimate","paths":[[true]]}"#).is_err());
        assert!(Request::parse(r#"{"op":"estimate","paths":[[99999]]}"#).is_err());
        assert!(Request::parse(r#"{"op":"load"}"#).is_err());
        assert!(Request::parse(r#"{"paths":[[1]]}"#).is_err());
    }

    #[test]
    fn responses_are_single_lines() {
        let ok = ok_response(vec![(
            "estimates".into(),
            Value::Array(vec![Value::Number(Number::Float(1.5))]),
        )]);
        assert!(
            ok.starts_with(r#"{"ok":true"#) && !ok.contains('\n'),
            "{ok}"
        );
        let e = error_response("boom");
        assert!(e.contains(r#""ok":false"#) && e.contains("boom"));
    }

    #[test]
    fn structured_refusals_carry_their_markers() {
        let o = overloaded_response("quota", "client over in-flight quota");
        assert!(o.contains(r#""ok":false"#) && !o.contains('\n'), "{o}");
        assert!(o.contains(r#""overloaded":true"#), "{o}");
        assert!(o.contains(r#""reason":"quota""#), "{o}");
        let b = backpressure_response("delta queue full");
        assert!(b.contains(r#""ok":false"#), "{b}");
        assert!(
            b.contains(r#""backpressure":true"#) && b.contains("full"),
            "{b}"
        );
    }
}
