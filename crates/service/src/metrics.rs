//! Service-level metrics: request counts, throughput, latency quantiles,
//! and cache hit rate.
//!
//! Latency is tracked in a fixed array of power-of-two nanosecond buckets
//! — lock-free to record (one atomic add), and accurate to within its
//! bucket width (≤ 2×) for quantile reads, which is plenty for a p50/p99
//! operator report.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cache::CacheCounters;

const BUCKETS: usize = 64;

/// Lock-free histogram over `[2^i, 2^(i+1))` nanosecond buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
        let bucket = (64 - ns.leading_zeros() as usize)
            .saturating_sub(1)
            .min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Approximate quantile (`q` in `[0, 1]`), as the geometric midpoint
    /// of the bucket where the cumulative count crosses `q`.
    pub fn quantile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                let lo = if i == 0 { 0u64 } else { 1u64 << i };
                let hi = 1u64.checked_shl(i as u32 + 1).unwrap_or(u64::MAX);
                return Duration::from_nanos(lo / 2 + hi / 2);
            }
        }
        Duration::from_nanos(u64::MAX)
    }

    /// Mean observation.
    pub fn mean(&self) -> Duration {
        let total = self.total_ns.load(Ordering::Relaxed);
        match total.checked_div(self.count()) {
            Some(mean) => Duration::from_nanos(mean),
            None => Duration::ZERO,
        }
    }
}

/// Shared counters for one serving process.
#[derive(Debug)]
pub struct ServiceMetrics {
    started: Instant,
    /// Protocol requests answered (a batch is one request).
    requests: AtomicU64,
    /// Individual paths estimated across all batches.
    paths: AtomicU64,
    /// Requests rejected with an error.
    errors: AtomicU64,
    /// Snapshot hot-swaps performed.
    swaps: AtomicU64,
    /// Background rebuilds started.
    rebuilds_started: AtomicU64,
    /// Background rebuilds that failed (load/build error).
    rebuilds_failed: AtomicU64,
    /// Background rebuilds discarded because a newer publish landed first.
    rebuilds_superseded: AtomicU64,
    /// Background incremental delta applications started.
    deltas_started: AtomicU64,
    /// Delta applications that failed (changes load / merge error).
    deltas_failed: AtomicU64,
    /// Delta applications discarded because a newer publish landed first.
    deltas_superseded: AtomicU64,
    /// Per-request wall latency.
    latency: LatencyHistogram,
    /// Estimate-cache counters (shared with every cache generation).
    cache: Arc<CacheCounters>,
}

impl ServiceMetrics {
    /// Fresh metrics, clock started now.
    pub fn new() -> ServiceMetrics {
        ServiceMetrics {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            paths: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            rebuilds_started: AtomicU64::new(0),
            rebuilds_failed: AtomicU64::new(0),
            rebuilds_superseded: AtomicU64::new(0),
            deltas_started: AtomicU64::new(0),
            deltas_failed: AtomicU64::new(0),
            deltas_superseded: AtomicU64::new(0),
            latency: LatencyHistogram::default(),
            cache: Arc::new(CacheCounters::default()),
        }
    }

    /// The cache counters new cache generations should report into.
    pub fn cache_counters(&self) -> Arc<CacheCounters> {
        Arc::clone(&self.cache)
    }

    /// Records one answered request.
    pub fn record_request(&self, paths: usize, latency: Duration, ok: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.paths.fetch_add(paths as u64, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record(latency);
    }

    /// Records a snapshot hot-swap.
    pub fn record_swap(&self) {
        self.swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a background rebuild being kicked off.
    pub fn record_rebuild_started(&self) {
        self.rebuilds_started.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a background rebuild that did not publish (graph load or
    /// build failure).
    pub fn record_rebuild_failed(&self) {
        self.rebuilds_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a background rebuild discarded because the slot advanced
    /// (e.g. a `load`) while it was building.
    pub fn record_rebuild_superseded(&self) {
        self.rebuilds_superseded.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a background delta application being kicked off.
    pub fn record_delta_started(&self) {
        self.deltas_started.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a delta application that did not publish (changes load,
    /// contract, or merge failure).
    pub fn record_delta_failed(&self) {
        self.deltas_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a delta application discarded because the slot advanced
    /// while it was merging.
    pub fn record_delta_superseded(&self) {
        self.deltas_superseded.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time report.
    pub fn report(&self) -> MetricsReport {
        let elapsed = self.started.elapsed();
        let requests = self.requests.load(Ordering::Relaxed);
        MetricsReport {
            uptime: elapsed,
            requests,
            paths: self.paths.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            rebuilds_started: self.rebuilds_started.load(Ordering::Relaxed),
            rebuilds_failed: self.rebuilds_failed.load(Ordering::Relaxed),
            rebuilds_superseded: self.rebuilds_superseded.load(Ordering::Relaxed),
            deltas_started: self.deltas_started.load(Ordering::Relaxed),
            deltas_failed: self.deltas_failed.load(Ordering::Relaxed),
            deltas_superseded: self.deltas_superseded.load(Ordering::Relaxed),
            qps: requests as f64 / elapsed.as_secs_f64().max(1e-9),
            p50: self.latency.quantile(0.50),
            p99: self.latency.quantile(0.99),
            mean: self.latency.mean(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_hit_rate: self.cache.hit_rate(),
        }
    }
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// A printable snapshot of [`ServiceMetrics`].
#[derive(Debug, Clone)]
pub struct MetricsReport {
    /// Time since the metrics were created.
    pub uptime: Duration,
    /// Requests answered.
    pub requests: u64,
    /// Paths estimated.
    pub paths: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Snapshot hot-swaps performed.
    pub swaps: u64,
    /// Background rebuilds started.
    pub rebuilds_started: u64,
    /// Background rebuilds that failed.
    pub rebuilds_failed: u64,
    /// Background rebuilds discarded in favour of a newer publish.
    pub rebuilds_superseded: u64,
    /// Background incremental delta applications started.
    pub deltas_started: u64,
    /// Delta applications that failed.
    pub deltas_failed: u64,
    /// Delta applications discarded in favour of a newer publish.
    pub deltas_superseded: u64,
    /// Requests per second over the whole uptime.
    pub qps: f64,
    /// Median request latency.
    pub p50: Duration,
    /// 99th-percentile request latency.
    pub p99: Duration,
    /// Mean request latency.
    pub mean: Duration,
    /// Cumulative estimate-cache hits.
    pub cache_hits: u64,
    /// Cumulative estimate-cache misses.
    pub cache_misses: u64,
    /// hits / (hits + misses).
    pub cache_hit_rate: f64,
}

impl std::fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "uptime           {:.1}s", self.uptime.as_secs_f64())?;
        writeln!(
            f,
            "requests         {} ({} paths, {} errors, {} swaps)",
            self.requests, self.paths, self.errors, self.swaps
        )?;
        writeln!(
            f,
            "rebuilds         {} started, {} failed, {} superseded",
            self.rebuilds_started, self.rebuilds_failed, self.rebuilds_superseded
        )?;
        writeln!(
            f,
            "deltas           {} started, {} failed, {} superseded",
            self.deltas_started, self.deltas_failed, self.deltas_superseded
        )?;
        writeln!(f, "throughput       {:.1} req/s", self.qps)?;
        writeln!(
            f,
            "latency          p50 {:?}  p99 {:?}  mean {:?}",
            self.p50, self.p99, self.mean
        )?;
        write!(
            f,
            "estimate cache   {:.1}% hit ({} hits / {} misses)",
            self.cache_hit_rate * 100.0,
            self.cache_hits,
            self.cache_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bracket_observations() {
        let h = LatencyHistogram::default();
        for _ in 0..90 {
            h.record(Duration::from_micros(10)); // ~10_000 ns, bucket 13
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(10)); // ~10^7 ns, bucket 23
        }
        let p50 = h.quantile(0.5).as_nanos() as u64;
        assert!((8_192..16_384 * 2).contains(&p50), "p50 = {p50} ns");
        let p99 = h.quantile(0.99).as_nanos() as u64;
        assert!((8_388_608..16_777_216 * 2).contains(&p99), "p99 = {p99} ns");
        assert!(h.quantile(0.0) <= h.quantile(1.0));
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn report_counts_requests_and_errors() {
        let m = ServiceMetrics::new();
        m.record_request(8, Duration::from_micros(5), true);
        m.record_request(1, Duration::from_micros(7), false);
        m.record_swap();
        m.record_rebuild_started();
        m.record_rebuild_failed();
        m.record_delta_started();
        m.record_delta_superseded();
        let r = m.report();
        assert_eq!(r.requests, 2);
        assert_eq!(r.paths, 9);
        assert_eq!(r.errors, 1);
        assert_eq!(r.swaps, 1);
        assert_eq!((r.rebuilds_started, r.rebuilds_failed), (1, 1));
        assert_eq!((r.deltas_started, r.deltas_superseded), (1, 1));
        assert!(r.qps > 0.0);
        let text = r.to_string();
        assert!(text.contains("requests"), "{text}");
        assert!(text.contains("estimate cache"), "{text}");
    }
}
