//! Service-level metrics: request counts, throughput, latency quantiles,
//! cache hit rates, and per-slot accuracy drift — all backed by one
//! [`phe_obs::MetricsRegistry`].
//!
//! Every counter here is a registry handle, so the operator report
//! ([`MetricsReport`] / the SIGINT dump), the `metrics` protocol op, and
//! the Prometheus scrape endpoint read the **same atomics** — the three
//! surfaces cannot disagree. Recording stays lock-free: each handle is a
//! plain relaxed atomic, and latency lands in a log-linear
//! [`LatencyHistogram`] (4 sub-buckets per power of two, quantiles
//! accurate to ≤ 1.25×).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use phe_core::DriftReport;
use phe_obs::{names, Counter, Gauge, MetricsRegistry};

use crate::cache::CacheCounters;

/// Lock-free log-linear latency histogram (moved into `phe-obs`; the
/// service records nanoseconds and reads second-scaled quantiles).
pub use phe_obs::LogHistogram as LatencyHistogram;

const REBUILD_HELP: &str = "Background rebuilds by outcome event.";
const DELTA_HELP: &str = "Background delta applications by outcome event.";
const ADMISSION_HELP: &str =
    "Admission-control decisions: admitted, refused (cap/quota), or shed (overload).";

/// Shared counters for one serving process.
///
/// [`ServiceMetrics::new`] owns a private registry (handy for tests and
/// embedded use); [`ServiceMetrics::with_registry`] reports into a shared
/// one — `phe serve` passes [`phe_obs::global()`] so span stage
/// histograms, cache counters, and drift gauges all land on the single
/// scrapeable surface.
#[derive(Debug)]
pub struct ServiceMetrics {
    started: Instant,
    registry: Arc<MetricsRegistry>,
    /// Process uptime, refreshed on every render/report.
    uptime: Arc<Gauge>,
    /// Protocol requests answered (a batch is one request).
    requests: Arc<Counter>,
    /// Individual paths estimated across all batches.
    paths: Arc<Counter>,
    /// Requests rejected with an error.
    errors: Arc<Counter>,
    /// Snapshot hot-swaps performed.
    swaps: Arc<Counter>,
    /// Background rebuilds started.
    rebuilds_started: Arc<Counter>,
    /// Background rebuilds that failed (load/build error).
    rebuilds_failed: Arc<Counter>,
    /// Background rebuilds discarded because a newer publish landed first.
    rebuilds_superseded: Arc<Counter>,
    /// Background incremental delta applications started.
    deltas_started: Arc<Counter>,
    /// Delta applications that failed (changes load / merge error).
    deltas_failed: Arc<Counter>,
    /// Delta applications discarded because a newer publish landed first.
    deltas_superseded: Arc<Counter>,
    /// Per-request wall latency.
    latency: Arc<LatencyHistogram>,
    /// Estimate-cache counters (shared with every cache generation).
    cache: Arc<CacheCounters>,
    /// Currently open protocol connections (event-loop server).
    connections_open: Arc<Gauge>,
    /// Backing count for the open-connections gauge.
    open_count: AtomicU64,
    /// Requests admitted past admission control.
    admission_admitted: Arc<Counter>,
    /// Requests/connections refused (connection cap, per-client quota).
    admission_refused: Arc<Counter>,
    /// Requests shed under overload (queue depth / p99 threshold).
    admission_shed: Arc<Counter>,
    /// CPU-heavy requests queued for the dispatch workers right now.
    dispatch_queue_depth: Arc<Gauge>,
    /// Backing count for the dispatch-queue gauge.
    dispatch_count: AtomicU64,
}

impl ServiceMetrics {
    /// Fresh metrics reporting into a private registry, clock started now.
    pub fn new() -> ServiceMetrics {
        ServiceMetrics::with_registry(Arc::new(MetricsRegistry::new()))
    }

    /// Metrics reporting into `registry`, clock started now.
    pub fn with_registry(registry: Arc<MetricsRegistry>) -> ServiceMetrics {
        let r = &registry;
        ServiceMetrics {
            started: Instant::now(),
            uptime: r.gauge(
                names::UPTIME_SECONDS,
                "Time since the serving process started.",
            ),
            requests: r.counter(
                names::REQUESTS_TOTAL,
                "Protocol requests answered (a batch is one request).",
            ),
            paths: r.counter(
                names::PATHS_TOTAL,
                "Individual paths estimated across all batches.",
            ),
            errors: r.counter(names::ERRORS_TOTAL, "Requests rejected with an error."),
            swaps: r.counter(names::SWAPS_TOTAL, "Snapshot hot-swaps performed."),
            rebuilds_started: r.counter_with(
                names::REBUILDS_TOTAL,
                REBUILD_HELP,
                &[("event", "started")],
            ),
            rebuilds_failed: r.counter_with(
                names::REBUILDS_TOTAL,
                REBUILD_HELP,
                &[("event", "failed")],
            ),
            rebuilds_superseded: r.counter_with(
                names::REBUILDS_TOTAL,
                REBUILD_HELP,
                &[("event", "superseded")],
            ),
            deltas_started: r.counter_with(
                names::DELTAS_TOTAL,
                DELTA_HELP,
                &[("event", "started")],
            ),
            deltas_failed: r.counter_with(names::DELTAS_TOTAL, DELTA_HELP, &[("event", "failed")]),
            deltas_superseded: r.counter_with(
                names::DELTAS_TOTAL,
                DELTA_HELP,
                &[("event", "superseded")],
            ),
            latency: r
                .duration_histogram(names::REQUEST_DURATION_SECONDS, "Per-request wall latency."),
            cache: Arc::new(CacheCounters::registered(
                r.as_ref(),
                &[("cache", "estimate")],
            )),
            connections_open: r.gauge(
                names::CONNECTIONS_OPEN,
                "Protocol connections currently open.",
            ),
            open_count: AtomicU64::new(0),
            admission_admitted: r.counter_with(
                names::ADMISSION_TOTAL,
                ADMISSION_HELP,
                &[("outcome", "admitted")],
            ),
            admission_refused: r.counter_with(
                names::ADMISSION_TOTAL,
                ADMISSION_HELP,
                &[("outcome", "refused")],
            ),
            admission_shed: r.counter_with(
                names::ADMISSION_TOTAL,
                ADMISSION_HELP,
                &[("outcome", "shed")],
            ),
            dispatch_queue_depth: r.gauge(
                names::DISPATCH_QUEUE_DEPTH,
                "CPU-heavy requests waiting for a dispatch worker.",
            ),
            dispatch_count: AtomicU64::new(0),
            registry,
        }
    }

    /// The registry every handle reports into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The cache counters new cache generations should report into.
    pub fn cache_counters(&self) -> Arc<CacheCounters> {
        Arc::clone(&self.cache)
    }

    /// Records one answered request.
    pub fn record_request(&self, paths: usize, latency: Duration, ok: bool) {
        self.requests.inc();
        self.paths.add(paths as u64);
        if !ok {
            self.errors.inc();
        }
        self.latency.record_duration(latency);
    }

    /// Records one request of the named protocol op
    /// (`phe_ops_total{op=…}`).
    pub fn record_op(&self, op: &str) {
        self.registry
            .counter_with(
                names::OPS_TOTAL,
                "Protocol requests by operation.",
                &[("op", op)],
            )
            .inc();
    }

    /// Records a snapshot hot-swap.
    pub fn record_swap(&self) {
        self.swaps.inc();
    }

    /// Records a connection opening; returns the new open count
    /// (`phe_connections_open`).
    pub fn connection_opened(&self) -> u64 {
        let now = self.open_count.fetch_add(1, Ordering::AcqRel) + 1;
        self.connections_open.set(now as f64);
        now
    }

    /// Records a connection closing.
    pub fn connection_closed(&self) {
        let mut now = self.open_count.load(Ordering::Acquire);
        // Saturating decrement: a miscounted close must not wrap the gauge.
        while now > 0 {
            match self.open_count.compare_exchange_weak(
                now,
                now - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    now -= 1;
                    break;
                }
                Err(seen) => now = seen,
            }
        }
        self.connections_open.set(now as f64);
    }

    /// Currently open connections.
    pub fn open_connections(&self) -> u64 {
        self.open_count.load(Ordering::Acquire)
    }

    /// Counts an admission-control decision
    /// (`phe_admission_total{outcome=admitted}`).
    pub fn record_admitted(&self) {
        self.admission_admitted.inc();
    }

    /// Counts a refusal — connection cap or per-client quota
    /// (`phe_admission_total{outcome=refused}`).
    pub fn record_refused(&self) {
        self.admission_refused.inc();
    }

    /// Counts a load-shed request
    /// (`phe_admission_total{outcome=shed}`).
    pub fn record_shed(&self) {
        self.admission_shed.inc();
    }

    /// Records a CPU-heavy request entering the dispatch queue; returns
    /// the new depth (`phe_dispatch_queue_depth`).
    pub fn dispatch_enqueued(&self) -> u64 {
        let now = self.dispatch_count.fetch_add(1, Ordering::AcqRel) + 1;
        self.dispatch_queue_depth.set(now as f64);
        now
    }

    /// Records a dispatch worker picking a queued request up.
    pub fn dispatch_dequeued(&self) {
        let now = self.dispatch_count.fetch_sub(1, Ordering::AcqRel) - 1;
        self.dispatch_queue_depth.set(now as f64);
    }

    /// CPU-heavy requests currently waiting for a dispatch worker.
    pub fn dispatch_depth(&self) -> u64 {
        self.dispatch_count.load(Ordering::Acquire)
    }

    /// Records a background rebuild being kicked off.
    pub fn record_rebuild_started(&self) {
        self.rebuilds_started.inc();
    }

    /// Records a background rebuild that did not publish (graph load or
    /// build failure).
    pub fn record_rebuild_failed(&self) {
        self.rebuilds_failed.inc();
    }

    /// Records a background rebuild discarded because the slot advanced
    /// (e.g. a `load`) while it was building.
    pub fn record_rebuild_superseded(&self) {
        self.rebuilds_superseded.inc();
    }

    /// Records a background delta application being kicked off.
    pub fn record_delta_started(&self) {
        self.deltas_started.inc();
    }

    /// Records a delta application that did not publish (changes load,
    /// contract, or merge failure).
    pub fn record_delta_failed(&self) {
        self.deltas_failed.inc();
    }

    /// Records a delta application discarded because the slot advanced
    /// while it was merging.
    pub fn record_delta_superseded(&self) {
        self.deltas_superseded.inc();
    }

    /// Publishes the per-slot accuracy-drift gauges sampled after a delta
    /// (`phe_drift_*{slot=…}`).
    pub fn record_drift(&self, slot: &str, drift: &DriftReport) {
        let labels = [("slot", slot)];
        self.registry
            .gauge_with(
                names::DRIFT_MEAN_ABS_ERROR,
                "Mean absolute error rate (paper's bounded error, [0,1]) of \
                 histogram estimates vs exact counts over paths sampled after \
                 the latest delta.",
                &labels,
            )
            .set(drift.mean_abs_error_rate);
        self.registry
            .gauge_with(
                names::DRIFT_MAX_Q_ERROR,
                "Worst q-error among the drift-sampled paths after the latest delta.",
                &labels,
            )
            .set(drift.max_q_error);
        self.registry
            .gauge_with(
                names::DRIFT_SAMPLED_PATHS,
                "Paths sampled for the latest drift measurement.",
                &labels,
            )
            .set(drift.sampled as f64);
    }

    /// Drops the per-slot drift gauges from the exposition. Called when
    /// a slot's maintenance state is invalidated (a `load`, a plain
    /// rebuild) — the last sampled drift describes a lineage that no
    /// longer serves, and a gauge that cannot be unpublished would keep
    /// reporting it forever.
    pub fn clear_drift(&self, slot: &str) {
        let labels = [("slot", slot)];
        for name in [
            names::DRIFT_MEAN_ABS_ERROR,
            names::DRIFT_MAX_Q_ERROR,
            names::DRIFT_SAMPLED_PATHS,
        ] {
            self.registry.unregister_with(name, &labels);
        }
    }

    /// Publishes the per-slot maintenance queue depth
    /// (`phe_maintenance_queue_depth{slot=…}`).
    pub fn record_maintenance_queue_depth(&self, slot: &str, depth: usize) {
        self.registry
            .gauge_with(
                names::MAINTENANCE_QUEUE_DEPTH,
                "Delta batches queued for the slot's next compacted publish.",
                &[("slot", slot)],
            )
            .set(depth as f64);
    }

    /// Counts a maintenance queue event
    /// (`phe_maintenance_batches_total{event=…}`): `enqueued`,
    /// `compacted` (folded into a published merge), or `purged`
    /// (discarded because the lineage they targeted is gone).
    pub fn record_maintenance_batches(&self, event: &str, n: u64) {
        self.registry
            .counter_with(
                names::MAINTENANCE_BATCHES_TOTAL,
                "Maintenance delta batches by queue event.",
                &[("event", event)],
            )
            .add(n);
    }

    /// Counts a policy-triggered full rebuild of a maintained slot
    /// (`phe_maintenance_rebuilds_total{trigger=…}`): `applied-deltas`,
    /// `drift`, or `forced`.
    pub fn record_maintenance_rebuild(&self, trigger: &str) {
        self.registry
            .counter_with(
                names::MAINTENANCE_REBUILDS_TOTAL,
                "Policy-triggered full rebuilds of maintained slots by trigger.",
                &[("trigger", trigger)],
            )
            .inc();
    }

    /// Renders the registry in Prometheus text exposition format
    /// (refreshing the uptime gauge first).
    pub fn render_prometheus(&self) -> String {
        self.uptime.set(self.started.elapsed().as_secs_f64());
        self.registry.render()
    }

    /// A point-in-time report.
    pub fn report(&self) -> MetricsReport {
        let elapsed = self.started.elapsed();
        self.uptime.set(elapsed.as_secs_f64());
        let requests = self.requests.get();
        MetricsReport {
            uptime: elapsed,
            requests,
            paths: self.paths.get(),
            errors: self.errors.get(),
            swaps: self.swaps.get(),
            rebuilds_started: self.rebuilds_started.get(),
            rebuilds_failed: self.rebuilds_failed.get(),
            rebuilds_superseded: self.rebuilds_superseded.get(),
            deltas_started: self.deltas_started.get(),
            deltas_failed: self.deltas_failed.get(),
            deltas_superseded: self.deltas_superseded.get(),
            qps: requests as f64 / elapsed.as_secs_f64().max(1e-9),
            p50: self.latency.quantile_duration(0.50),
            p99: self.latency.quantile_duration(0.99),
            mean: self.latency.mean_duration(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_hit_rate: self.cache.hit_rate(),
        }
    }
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// A printable snapshot of [`ServiceMetrics`].
#[derive(Debug, Clone)]
pub struct MetricsReport {
    /// Time since the metrics were created.
    pub uptime: Duration,
    /// Requests answered.
    pub requests: u64,
    /// Paths estimated.
    pub paths: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Snapshot hot-swaps performed.
    pub swaps: u64,
    /// Background rebuilds started.
    pub rebuilds_started: u64,
    /// Background rebuilds that failed.
    pub rebuilds_failed: u64,
    /// Background rebuilds discarded in favour of a newer publish.
    pub rebuilds_superseded: u64,
    /// Background incremental delta applications started.
    pub deltas_started: u64,
    /// Delta applications that failed.
    pub deltas_failed: u64,
    /// Delta applications discarded in favour of a newer publish.
    pub deltas_superseded: u64,
    /// Requests per second over the whole uptime.
    pub qps: f64,
    /// Median request latency.
    pub p50: Duration,
    /// 99th-percentile request latency.
    pub p99: Duration,
    /// Mean request latency.
    pub mean: Duration,
    /// Cumulative estimate-cache hits.
    pub cache_hits: u64,
    /// Cumulative estimate-cache misses.
    pub cache_misses: u64,
    /// hits / (hits + misses).
    pub cache_hit_rate: f64,
}

impl std::fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "uptime           {:.1}s", self.uptime.as_secs_f64())?;
        writeln!(
            f,
            "requests         {} ({} paths, {} errors, {} swaps)",
            self.requests, self.paths, self.errors, self.swaps
        )?;
        writeln!(
            f,
            "rebuilds         {} started, {} failed, {} superseded",
            self.rebuilds_started, self.rebuilds_failed, self.rebuilds_superseded
        )?;
        writeln!(
            f,
            "deltas           {} started, {} failed, {} superseded",
            self.deltas_started, self.deltas_failed, self.deltas_superseded
        )?;
        writeln!(f, "throughput       {:.1} req/s", self.qps)?;
        writeln!(
            f,
            "latency          p50 {:?}  p99 {:?}  mean {:?}",
            self.p50, self.p99, self.mean
        )?;
        write!(
            f,
            "estimate cache   {:.1}% hit ({} hits / {} misses)",
            self.cache_hit_rate * 100.0,
            self.cache_hits,
            self.cache_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bracket_observations() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record_duration(Duration::from_micros(10)); // 10_000 ns
        }
        for _ in 0..10 {
            h.record_duration(Duration::from_millis(10)); // 10^7 ns
        }
        // Log-linear buckets: the quantile midpoint is within 1.25× of
        // the recorded value.
        let p50 = h.quantile_duration(0.5).as_nanos() as u64;
        assert!((8_000..=12_500).contains(&p50), "p50 = {p50} ns");
        let p99 = h.quantile_duration(0.99).as_nanos() as u64;
        assert!((8_000_000..=12_500_000).contains(&p99), "p99 = {p99} ns");
        assert!(h.quantile_duration(0.0) <= h.quantile_duration(1.0));
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_duration(0.5), Duration::ZERO);
        assert_eq!(h.mean_duration(), Duration::ZERO);
    }

    #[test]
    fn report_counts_requests_and_errors() {
        let m = ServiceMetrics::new();
        m.record_request(8, Duration::from_micros(5), true);
        m.record_request(1, Duration::from_micros(7), false);
        m.record_swap();
        m.record_rebuild_started();
        m.record_rebuild_failed();
        m.record_delta_started();
        m.record_delta_superseded();
        let r = m.report();
        assert_eq!(r.requests, 2);
        assert_eq!(r.paths, 9);
        assert_eq!(r.errors, 1);
        assert_eq!(r.swaps, 1);
        assert_eq!((r.rebuilds_started, r.rebuilds_failed), (1, 1));
        assert_eq!((r.deltas_started, r.deltas_superseded), (1, 1));
        assert!(r.qps > 0.0);
        let text = r.to_string();
        assert!(text.contains("requests"), "{text}");
        assert!(text.contains("estimate cache"), "{text}");
    }

    #[test]
    fn prometheus_render_parses_and_matches_report() {
        let m = ServiceMetrics::new();
        m.record_request(3, Duration::from_micros(5), true);
        m.record_op("estimate");
        m.record_op("estimate");
        m.record_op("list");
        m.record_drift(
            "main",
            &phe_core::DriftReport {
                touched: 100,
                sampled: 50,
                mean_abs_error_rate: 0.125,
                max_q_error: 2.0,
            },
        );
        let text = m.render_prometheus();
        let samples = phe_obs::parse_exposition(&text).expect("exposition must parse");
        let value = |name: &str, label: Option<(&str, &str)>| -> f64 {
            samples
                .iter()
                .find(|s| {
                    s.name == name
                        && label
                            .is_none_or(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
                })
                .unwrap_or_else(|| panic!("missing sample {name} {label:?} in:\n{text}"))
                .value
        };
        assert_eq!(value("phe_requests_total", None), 1.0);
        assert_eq!(value("phe_paths_total", None), 3.0);
        assert_eq!(value("phe_ops_total", Some(("op", "estimate"))), 2.0);
        assert_eq!(value("phe_ops_total", Some(("op", "list"))), 1.0);
        assert_eq!(
            value("phe_drift_mean_abs_error", Some(("slot", "main"))),
            0.125
        );
        assert_eq!(
            value("phe_drift_sampled_paths", Some(("slot", "main"))),
            50.0
        );
        assert_eq!(value("phe_request_duration_seconds_count", None), 1.0);
    }

    #[test]
    fn clear_drift_removes_only_that_slots_gauges() {
        let m = ServiceMetrics::new();
        let report = phe_core::DriftReport {
            touched: 10,
            sampled: 10,
            mean_abs_error_rate: 0.5,
            max_q_error: 4.0,
        };
        m.record_drift("a", &report);
        m.record_drift("b", &report);
        m.record_maintenance_queue_depth("a", 3);
        m.record_maintenance_batches("enqueued", 3);
        m.record_maintenance_rebuild("drift");
        m.clear_drift("a");
        let text = m.render_prometheus();
        assert!(
            !text.contains("phe_drift_mean_abs_error{slot=\"a\"}"),
            "{text}"
        );
        assert!(
            text.contains("phe_drift_mean_abs_error{slot=\"b\"}"),
            "{text}"
        );
        assert!(
            text.contains("phe_maintenance_queue_depth{slot=\"a\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("phe_maintenance_batches_total{event=\"enqueued\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("phe_maintenance_rebuilds_total{trigger=\"drift\"} 1"),
            "{text}"
        );
        // Clearing a slot that never reported drift is a no-op.
        m.clear_drift("never");
    }

    #[test]
    fn admission_metrics_reach_the_exposition() {
        let m = ServiceMetrics::new();
        assert_eq!(m.connection_opened(), 1);
        assert_eq!(m.connection_opened(), 2);
        m.connection_closed();
        assert_eq!(m.open_connections(), 1);
        m.connection_closed();
        m.connection_closed(); // saturates instead of wrapping
        assert_eq!(m.open_connections(), 0);
        m.record_admitted();
        m.record_refused();
        m.record_shed();
        m.record_shed();
        assert_eq!(m.dispatch_enqueued(), 1);
        assert_eq!(m.dispatch_enqueued(), 2);
        m.dispatch_dequeued();
        assert_eq!(m.dispatch_depth(), 1);
        let text = m.render_prometheus();
        assert!(text.contains("phe_connections_open 0"), "{text}");
        assert!(
            text.contains("phe_admission_total{outcome=\"admitted\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("phe_admission_total{outcome=\"refused\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("phe_admission_total{outcome=\"shed\"} 2"),
            "{text}"
        );
        assert!(text.contains("phe_dispatch_queue_depth 1"), "{text}");
        phe_obs::parse_exposition(&text).expect("exposition must parse");
    }
}
