//! The estimator registry: named, hot-swappable serving slots.
//!
//! Each slot holds an `Arc<ServingEstimator>` behind a short write-locked
//! swap: readers clone the `Arc` (nanoseconds), then work entirely
//! lock-free against the pinned generation. A rebuild/refresh publishes a
//! new generation with [`EstimatorRegistry::register`]; in-flight batches
//! keep the generation they pinned, so **no request ever observes a
//! half-swapped estimator** — the property the concurrent integration
//! test exercises.
//!
//! Every generation carries its own cold [`ShardedLruCache`]; hit/miss
//! counters live in the shared [`crate::metrics::ServiceMetrics`] so the
//! cumulative rates survive swaps.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use phe_core::LabelPath;

use crate::cache::{CacheCounters, ShardedLruCache};
use crate::estimator::{EstimateError, ServableEstimator};

/// One published generation: an immutable estimator plus its cache.
pub struct ServingEstimator {
    estimator: ServableEstimator,
    cache: ShardedLruCache,
    version: u64,
}

impl ServingEstimator {
    /// The wrapped estimator.
    pub fn estimator(&self) -> &ServableEstimator {
        &self.estimator
    }

    /// Monotonic version of this generation within its slot (1-based).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Estimates one validated path through the cache.
    pub fn estimate(&self, path: &LabelPath) -> f64 {
        if let Some(v) = self.cache.get(path) {
            return v;
        }
        let v = self.estimator.estimate(path);
        self.cache.insert(*path, v);
        v
    }

    /// Estimates a batch of validated paths. The whole batch is served by
    /// this one generation, so its results are internally consistent even
    /// if a hot-swap lands mid-batch.
    pub fn estimate_batch(&self, paths: &[LabelPath]) -> Vec<f64> {
        paths.iter().map(|p| self.estimate(p)).collect()
    }

    /// Validates raw label-id paths and estimates them as one batch.
    ///
    /// # Errors
    /// The first validation failure aborts the batch — partial answers
    /// would be ambiguous to the caller.
    pub fn estimate_id_batch(
        &self,
        paths: &[Vec<phe_graph::LabelId>],
    ) -> Result<Vec<f64>, EstimateError> {
        let validated: Vec<LabelPath> = paths
            .iter()
            .map(|p| self.estimator.validate(p))
            .collect::<Result<_, _>>()?;
        Ok(self.estimate_batch(&validated))
    }
}

struct Slot {
    current: RwLock<Arc<ServingEstimator>>,
}

/// One row of [`EstimatorRegistry::list`], captured from a single
/// generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EstimatorInfo {
    /// Registry slot name.
    pub name: String,
    /// Current generation version.
    pub version: u64,
    /// Maximum supported path length.
    pub k: usize,
    /// Number of labels in the statistics' alphabet.
    pub label_count: usize,
    /// Provenance string.
    pub description: String,
}

/// Named, concurrently readable, hot-swappable estimators.
pub struct EstimatorRegistry {
    slots: RwLock<HashMap<String, Arc<Slot>>>,
    counters: Arc<CacheCounters>,
    cache_capacity: usize,
}

impl EstimatorRegistry {
    /// Default per-estimator cache capacity (entries).
    pub const DEFAULT_CACHE_CAPACITY: usize = 16 * 1024;

    /// An empty registry whose caches report into `counters`.
    pub fn new(counters: Arc<CacheCounters>, cache_capacity: usize) -> EstimatorRegistry {
        EstimatorRegistry {
            slots: RwLock::new(HashMap::new()),
            counters,
            cache_capacity: cache_capacity.max(1),
        }
    }

    /// An empty registry with stand-alone counters (tests, benches).
    pub fn with_default_counters() -> EstimatorRegistry {
        EstimatorRegistry::new(
            Arc::new(CacheCounters::default()),
            Self::DEFAULT_CACHE_CAPACITY,
        )
    }

    /// Publishes `estimator` under `name`. If the slot exists this is a
    /// **hot swap**: the new generation (with a fresh cold cache) becomes
    /// visible atomically, while batches pinned to the old generation
    /// finish undisturbed. Returns the new generation's version.
    pub fn register(&self, name: &str, estimator: ServableEstimator) -> u64 {
        // Fast path: swap an existing slot. The map read lock is held
        // across the inner write so a concurrent `remove` (which needs
        // the map write lock) cannot detach the slot between lookup and
        // publish — registrations are never silently lost.
        {
            let slots = self.slots.read();
            if let Some(slot) = slots.get(name) {
                return self.swap_in(slot, estimator);
            }
        }
        let mut slots = self.slots.write();
        // Re-check: another thread may have created the slot between our
        // read and this write lock.
        if let Some(slot) = slots.get(name) {
            return self.swap_in(slot, estimator);
        }
        slots.insert(
            name.to_owned(),
            Arc::new(Slot {
                current: RwLock::new(Arc::new(self.generation(estimator, 1))),
            }),
        );
        1
    }

    /// Installs a new generation into an existing slot; the caller holds a
    /// map lock, so the slot cannot be detached concurrently.
    fn swap_in(&self, slot: &Slot, estimator: ServableEstimator) -> u64 {
        let mut current = slot.current.write();
        let version = current.version() + 1;
        *current = Arc::new(self.generation(estimator, version));
        version
    }

    fn generation(&self, estimator: ServableEstimator, version: u64) -> ServingEstimator {
        ServingEstimator {
            estimator,
            cache: ShardedLruCache::new(self.cache_capacity, Arc::clone(&self.counters)),
            version,
        }
    }

    /// Pins the current generation of `name` for reading. The returned
    /// `Arc` stays valid (and internally consistent) across any number of
    /// subsequent hot-swaps.
    pub fn get(&self, name: &str) -> Option<Arc<ServingEstimator>> {
        let slot = self.slots.read().get(name).cloned()?;
        let generation = slot.current.read().clone();
        Some(generation)
    }

    /// Removes a slot. In-flight readers keep their pinned generations.
    pub fn remove(&self, name: &str) -> bool {
        self.slots.write().remove(name).is_some()
    }

    /// Sorted listing, each row read from a single generation (so a
    /// concurrent hot-swap never produces a row mixing two generations).
    pub fn list(&self) -> Vec<EstimatorInfo> {
        let mut entries: Vec<EstimatorInfo> = self
            .slots
            .read()
            .iter()
            .map(|(name, slot)| {
                let generation = slot.current.read();
                EstimatorInfo {
                    name: name.clone(),
                    version: generation.version(),
                    k: generation.estimator().k(),
                    label_count: generation.estimator().label_count(),
                    description: generation.estimator().description().to_owned(),
                }
            })
            .collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        entries
    }

    /// Number of registered estimators.
    pub fn len(&self) -> usize {
        self.slots.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// The registry is the object shared across every serving thread.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EstimatorRegistry>();
    assert_send_sync::<ServingEstimator>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use phe_core::{EstimatorConfig, HistogramKind, OrderingKind, PathSelectivityEstimator};
    use phe_datasets::{erdos_renyi, LabelDistribution};
    use phe_graph::LabelId;

    fn servable(beta: usize) -> ServableEstimator {
        let g = erdos_renyi(40, 240, 3, LabelDistribution::Zipf { exponent: 1.0 }, 11);
        ServableEstimator::from_estimator(
            PathSelectivityEstimator::build(
                &g,
                EstimatorConfig {
                    k: 3,
                    beta,
                    ordering: OrderingKind::SumBased,
                    histogram: HistogramKind::VOptimalGreedy,
                    threads: 1,
                },
            )
            .unwrap(),
        )
    }

    #[test]
    fn register_get_roundtrip() {
        let registry = EstimatorRegistry::with_default_counters();
        assert!(registry.get("main").is_none());
        assert_eq!(registry.register("main", servable(8)), 1);
        let generation = registry.get("main").unwrap();
        assert_eq!(generation.version(), 1);
        let p = LabelPath::new(&[LabelId(0), LabelId(1)]);
        // Cached value equals direct value.
        let direct = generation.estimator().estimate(&p);
        assert_eq!(generation.estimate(&p), direct);
        assert_eq!(generation.estimate(&p), direct);
    }

    #[test]
    fn hot_swap_bumps_version_and_preserves_pinned_readers() {
        let registry = EstimatorRegistry::with_default_counters();
        registry.register("main", servable(4));
        let pinned = registry.get("main").unwrap();
        assert_eq!(registry.register("main", servable(32)), 2);
        // The pinned generation still answers with its own estimator.
        let p = LabelPath::new(&[LabelId(1)]);
        let old = pinned.estimate(&p);
        assert_eq!(pinned.version(), 1);
        let fresh = registry.get("main").unwrap();
        assert_eq!(fresh.version(), 2);
        // Old generation remains self-consistent.
        assert_eq!(pinned.estimate(&p), old);
    }

    #[test]
    fn batch_is_single_generation_consistent() {
        let registry = EstimatorRegistry::with_default_counters();
        registry.register("main", servable(16));
        let generation = registry.get("main").unwrap();
        let paths: Vec<Vec<LabelId>> = vec![
            vec![LabelId(0)],
            vec![LabelId(1), LabelId(2)],
            vec![LabelId(2), LabelId(0), LabelId(1)],
        ];
        let batch = generation.estimate_id_batch(&paths).unwrap();
        for (p, got) in paths.iter().zip(&batch) {
            assert_eq!(*got, generation.estimator().estimate_labels(p).unwrap());
        }
    }

    #[test]
    fn invalid_path_fails_whole_batch() {
        let registry = EstimatorRegistry::with_default_counters();
        registry.register("main", servable(16));
        let generation = registry.get("main").unwrap();
        let paths = vec![vec![LabelId(0)], vec![LabelId(99)]];
        assert!(matches!(
            generation.estimate_id_batch(&paths),
            Err(EstimateError::UnknownLabelId(99))
        ));
    }

    #[test]
    fn list_and_remove() {
        let registry = EstimatorRegistry::with_default_counters();
        registry.register("b", servable(8));
        registry.register("a", servable(8));
        let names: Vec<String> = registry.list().into_iter().map(|info| info.name).collect();
        assert_eq!(names, vec!["a", "b"]);
        let info = &registry.list()[0];
        assert_eq!((info.k, info.label_count, info.version), (3, 3, 1));
        assert!(registry.remove("a"));
        assert!(!registry.remove("a"));
        assert_eq!(registry.len(), 1);
    }
}
