//! The estimator registry: named, hot-swappable serving slots.
//!
//! Each slot holds an `Arc<ServingEstimator>` behind a short write-locked
//! swap: readers clone the `Arc` (nanoseconds), then work entirely
//! lock-free against the pinned generation. A rebuild/refresh publishes a
//! new generation with [`EstimatorRegistry::register`]; in-flight batches
//! keep the generation they pinned, so **no request ever observes a
//! half-swapped estimator** — the property the concurrent integration
//! test exercises.
//!
//! Every generation carries its own cold [`ShardedLruCache`]; hit/miss
//! counters live in the shared [`crate::metrics::ServiceMetrics`] so the
//! cumulative rates survive swaps.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use phe_core::{DriftReport, LabelPath, PathSelectivityEstimator};
use phe_graph::Graph;
use phe_obs::MetricsRegistry;
use phe_query::expr::ExpandOptions;
use phe_query::parse_expr;

use crate::cache::{CacheCounters, CachedExpr, ExprCache, ShardedLruCache};
use crate::estimator::{CatalogResidency, EstimateError, ServableEstimator};

/// One published generation: an immutable estimator plus its caches (the
/// sharded per-path LRU and the normalized-expression LRU).
pub struct ServingEstimator {
    estimator: ServableEstimator,
    cache: ShardedLruCache,
    expr_cache: ExprCache,
    version: u64,
}

/// One expression answered by [`ServingEstimator::estimate_expr`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExprOutcome {
    /// Total estimate (canonical-order sum over the expansion).
    pub total: f64,
    /// Number of concrete branches.
    pub width: u64,
    /// Branches discarded by follow pruning. Non-zero when the served
    /// statistics shipped their follow matrix (v5 snapshots, live
    /// builds); 0 for older snapshots, which expand purely
    /// syntactically.
    pub pruned: u64,
    /// Branches discarded for exceeding the statistics' `k`.
    pub truncated: u64,
    /// Whether the expression also denotes the empty path.
    pub matches_empty: bool,
    /// Whether the answer came from the expression cache.
    pub cached: bool,
    /// Per-branch `(path, estimate)` rows, present only for explain
    /// requests (which bypass the cache to produce them).
    pub branches: Option<Vec<(String, f64)>>,
}

impl ServingEstimator {
    /// The wrapped estimator.
    pub fn estimator(&self) -> &ServableEstimator {
        &self.estimator
    }

    /// Monotonic version of this generation within its slot (1-based).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Estimates one validated path through the cache.
    pub fn estimate(&self, path: &LabelPath) -> f64 {
        if let Some(v) = self.cache.get(path) {
            return v;
        }
        let v = self.estimator.estimate(path);
        self.cache.insert(*path, v);
        v
    }

    /// Estimates a batch of validated paths. The whole batch is served by
    /// this one generation, so its results are internally consistent even
    /// if a hot-swap lands mid-batch.
    pub fn estimate_batch(&self, paths: &[LabelPath]) -> Vec<f64> {
        paths.iter().map(|p| self.estimate(p)).collect()
    }

    /// Validates raw label-id paths and estimates them as one batch.
    ///
    /// # Errors
    /// The first validation failure aborts the batch — partial answers
    /// would be ambiguous to the caller.
    pub fn estimate_id_batch(
        &self,
        paths: &[Vec<phe_graph::LabelId>],
    ) -> Result<Vec<f64>, EstimateError> {
        let validated: Vec<LabelPath> = paths
            .iter()
            .map(|p| self.estimator.validate(p))
            .collect::<Result<_, _>>()?;
        Ok(self.estimate_batch(&validated))
    }

    /// Parses, normalizes, and estimates one regular path expression
    /// against this generation's statistics.
    ///
    /// The expression cache is keyed by the **normalized** rendering, so
    /// `(a|b)/c` and `(b|a)/c` share an entry; per-branch estimates on a
    /// miss flow through the per-path LRU, so hot branches amortize
    /// across different expressions. `explain` requests bypass the cache
    /// (they need the branch breakdown, which is not cached) and leave
    /// the hit/miss counters untouched.
    ///
    /// # Errors
    /// A rendered message for parse failures (with byte positions) and
    /// over-wide expansions.
    pub fn estimate_expr(&self, source: &str, explain: bool) -> Result<ExprOutcome, String> {
        let parse_span = phe_obs::span::stage("query.parse");
        let expr = parse_expr(self.estimator(), source).map_err(|e| {
            format!(
                "{e} (bytes {}..{} of the expression)",
                e.span.start, e.span.end
            )
        })?;
        let normalized = expr.normalize();
        let key = normalized.to_string();
        drop(parse_span);
        if !explain {
            if let Some(hit) = self.expr_cache.get(&key) {
                return Ok(ExprOutcome {
                    total: hit.total,
                    width: hit.width,
                    pruned: hit.pruned,
                    truncated: hit.truncated,
                    matches_empty: hit.matches_empty,
                    cached: true,
                    branches: None,
                });
            }
        }
        // Statistics that shipped their follow matrix prune impossible
        // branches here — fewer histogram probes, and the estimate stops
        // summing terms that are provably zero in the graph.
        let mut opts = ExpandOptions::new(self.estimator.label_count(), self.estimator.k());
        if let Some(follow) = self.estimator.follow() {
            opts = opts.with_follow(follow);
        }
        let expansion = normalized.expand(&opts).map_err(|e| e.to_string())?;
        let estimate_span = phe_obs::span::stage("query.estimate");
        let mut total = 0.0f64;
        let mut branches = explain.then(|| Vec::with_capacity(expansion.paths.len()));
        for path in &expansion.paths {
            let estimate = self.estimate(path);
            total += estimate;
            if let Some(rows) = branches.as_mut() {
                rows.push((self.estimator.render_path(path), estimate));
            }
        }
        drop(estimate_span);
        let cached_entry = CachedExpr {
            total,
            width: expansion.paths.len() as u64,
            pruned: expansion.pruned,
            truncated: expansion.truncated,
            matches_empty: expansion.matches_empty,
        };
        if !explain {
            self.expr_cache.insert(key, cached_entry);
        }
        Ok(ExprOutcome {
            total,
            width: cached_entry.width,
            pruned: cached_entry.pruned,
            truncated: cached_entry.truncated,
            matches_empty: cached_entry.matches_empty,
            cached: false,
            branches,
        })
    }
}

struct Slot {
    current: RwLock<Arc<ServingEstimator>>,
    /// Expression-cache hit/miss counters for this slot — shared across
    /// its generations, so the `list` op reports a per-slot rate that
    /// survives hot-swaps.
    expr_counters: Arc<CacheCounters>,
}

/// What a slot keeps between incremental updates: the graph the published
/// statistics were counted over and the full estimator with its retained
/// sparse catalog. A `rebuild` op with `"maintain": true` stores one;
/// each successful `delta` op replaces it with the post-delta state, so
/// deltas chain without ever recounting the graph.
pub struct MaintenanceState {
    /// The graph the estimator's counts describe — the base the next
    /// delta's changes apply to.
    pub graph: Graph,
    /// The builder-side estimator (with [`phe_core::EstimatorConfig`]
    /// `retain_sparse` state) that [`PathSelectivityEstimator::apply_delta`]
    /// advances.
    pub estimator: PathSelectivityEstimator,
}

/// The memory footprint of a slot's *maintained* sparse catalog (present
/// only for slots rebuilt with `maintain`): the state `delta` ops merge
/// into, reported so the compression ratio is observable wherever memory
/// already is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaintainedFootprint {
    /// Realized (non-zero) paths in the maintained catalog.
    pub nonzero_paths: u64,
    /// Resident bytes of the block-compressed runs (payload + skip index
    /// + struct overhead).
    pub catalog_bytes: u64,
    /// Bytes the flat 16 B/entry pair vector would need.
    pub plain_bytes: u64,
}

/// One row of [`EstimatorRegistry::list`], captured from a single
/// generation.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorInfo {
    /// Registry slot name.
    pub name: String,
    /// Current generation version.
    pub version: u64,
    /// Maximum supported path length.
    pub k: usize,
    /// Number of labels in the statistics' alphabet.
    pub label_count: usize,
    /// Approximate retained memory of the estimator (buckets + ordering
    /// reconstruction state; no catalog is held at serve time).
    pub size_bytes: usize,
    /// Provenance string.
    pub description: String,
    /// Delta lineage of the served statistics: `(base_build_id,
    /// applied_deltas)`. A slot whose `applied_deltas` keeps climbing is
    /// drifting from its last full build — the operator signal for a
    /// compacting rebuild. `None` for pre-lineage snapshots.
    pub lineage: Option<(u64, u64)>,
    /// Per-slot expression-cache counters `(normalized-key hits, raw
    /// misses)`, cumulative across the slot's generations.
    pub expr_cache: (u64, u64),
    /// The maintained sparse catalog's footprint, when the slot holds
    /// maintenance state.
    pub maintained: Option<MaintainedFootprint>,
    /// Accuracy drift sampled after the slot's most recent `delta`:
    /// estimates vs exact counts over the touched paths. `None` until a
    /// delta has been applied to the maintained lineage.
    pub drift: Option<DriftReport>,
    /// Whether the served statistics carry a follow matrix (and so prune
    /// impossible expansion branches remotely).
    pub follow_pruning: bool,
    /// Residency of an attached disk-resident catalog (`.phc` sidecar),
    /// when the slot was loaded from a v5 external-catalog snapshot.
    pub catalog: Option<CatalogResidency>,
}

/// Named, concurrently readable, hot-swappable estimators.
pub struct EstimatorRegistry {
    slots: RwLock<HashMap<String, Arc<Slot>>>,
    counters: Arc<CacheCounters>,
    cache_capacity: usize,
    /// Metrics registry per-slot expression-cache counters are
    /// registered in (`phe_cache_requests_total{cache="expr",slot=…}`),
    /// when the serving tier wires one up.
    obs: Option<Arc<MetricsRegistry>>,
    /// Slots with a background rebuild in flight — one rebuild per slot
    /// at a time, so repeated `rebuild` requests cannot stack full-graph
    /// builds or publish out of order.
    rebuilding: Mutex<HashSet<String>>,
    /// Per-slot incremental-maintenance state (graph + sparse-retaining
    /// estimator), present only for slots rebuilt with `maintain`.
    maintenance: Mutex<HashMap<String, Arc<MaintenanceState>>>,
}

impl EstimatorRegistry {
    /// Default per-estimator cache capacity (entries).
    pub const DEFAULT_CACHE_CAPACITY: usize = 16 * 1024;

    /// Per-slot expression-cache capacity (normalized expressions). Each
    /// entry is one answered expression; the fan-out into per-path
    /// estimates is cached separately by the per-path LRU.
    pub const EXPR_CACHE_CAPACITY: usize = 1024;

    /// An empty registry whose caches report into `counters`.
    pub fn new(counters: Arc<CacheCounters>, cache_capacity: usize) -> EstimatorRegistry {
        EstimatorRegistry {
            slots: RwLock::new(HashMap::new()),
            counters,
            cache_capacity: cache_capacity.max(1),
            obs: None,
            rebuilding: Mutex::new(HashSet::new()),
            maintenance: Mutex::new(HashMap::new()),
        }
    }

    /// Registers per-slot cache counters in `registry` (builder style) —
    /// each slot's expression-cache hits and misses become
    /// `phe_cache_requests_total{cache="expr",slot=…}` alongside the
    /// rates `list` reports, read from the same atomics.
    pub fn with_observability(mut self, registry: Arc<MetricsRegistry>) -> EstimatorRegistry {
        self.obs = Some(registry);
        self
    }

    /// Stores (or replaces) a slot's incremental-maintenance state.
    pub fn store_maintenance(&self, name: &str, state: MaintenanceState) {
        self.maintenance
            .lock()
            .insert(name.to_owned(), Arc::new(state));
    }

    /// Drops a slot's maintenance state. Publishers that install
    /// statistics *not* derived from the maintained lineage (a `load`, a
    /// non-maintaining rebuild) must call this so a later `delta` cannot
    /// silently merge changes into a stale base.
    pub fn clear_maintenance(&self, name: &str) {
        self.maintenance.lock().remove(name);
    }

    /// The slot's maintenance state, if a maintaining rebuild (or a
    /// subsequent delta) stored one.
    pub fn maintenance(&self, name: &str) -> Option<Arc<MaintenanceState>> {
        self.maintenance.lock().get(name).cloned()
    }

    /// Marks `name` as having a background rebuild in flight. Returns
    /// `false` when one is already running — callers refuse the request
    /// instead of stacking builds. Pair with
    /// [`EstimatorRegistry::finish_rebuild`].
    pub fn try_begin_rebuild(&self, name: &str) -> bool {
        self.rebuilding.lock().insert(name.to_owned())
    }

    /// Clears the in-flight rebuild mark (success, failure, or panic —
    /// the rebuild worker must always release it).
    pub fn finish_rebuild(&self, name: &str) {
        self.rebuilding.lock().remove(name);
    }

    /// An empty registry with stand-alone counters (tests, benches).
    pub fn with_default_counters() -> EstimatorRegistry {
        EstimatorRegistry::new(
            Arc::new(CacheCounters::default()),
            Self::DEFAULT_CACHE_CAPACITY,
        )
    }

    /// Publishes `estimator` under `name`. If the slot exists this is a
    /// **hot swap**: the new generation (with a fresh cold cache) becomes
    /// visible atomically, while batches pinned to the old generation
    /// finish undisturbed. Returns the new generation's version.
    ///
    /// Any maintenance state the slot held is **invalidated**: the newly
    /// published statistics were not derived from it, so a later `delta`
    /// must not merge changes into the stale lineage (the slot needs a
    /// fresh maintaining rebuild first).
    pub fn register(&self, name: &str, estimator: ServableEstimator) -> u64 {
        // Hold the maintenance lock across the swap so this publish
        // serializes with `register_if_version_maintained`: a background
        // worker can never re-store maintenance state cleared here
        // between its compare-and-swap and its store. Lock order is
        // always maintenance → slots.
        let mut maintenance = self.maintenance.lock();
        maintenance.remove(name);
        // Fast path: swap an existing slot. The map read lock is held
        // across the inner write so a concurrent `remove` (which needs
        // the map write lock) cannot detach the slot between lookup and
        // publish — registrations are never silently lost.
        {
            let slots = self.slots.read();
            if let Some(slot) = slots.get(name) {
                return self.swap_in(slot, estimator);
            }
        }
        let mut slots = self.slots.write();
        // Re-check: another thread may have created the slot between our
        // read and this write lock.
        if let Some(slot) = slots.get(name) {
            return self.swap_in(slot, estimator);
        }
        slots.insert(name.to_owned(), self.new_slot(name, estimator));
        1
    }

    /// A fresh slot at version 1, with its own expression-cache counters.
    fn new_slot(&self, name: &str, estimator: ServableEstimator) -> Arc<Slot> {
        let expr_counters = Arc::new(match &self.obs {
            Some(obs) => CacheCounters::registered(obs, &[("cache", "expr"), ("slot", name)]),
            None => CacheCounters::default(),
        });
        Arc::new(Slot {
            current: RwLock::new(Arc::new(self.generation(
                estimator,
                1,
                Arc::clone(&expr_counters),
            ))),
            expr_counters,
        })
    }

    /// Installs a new generation into an existing slot; the caller holds a
    /// map lock, so the slot cannot be detached concurrently. The slot's
    /// expression-cache counters carry over (the cache itself starts
    /// cold, like the per-path cache).
    fn swap_in(&self, slot: &Slot, estimator: ServableEstimator) -> u64 {
        let mut current = slot.current.write();
        let version = current.version() + 1;
        *current = Arc::new(self.generation(estimator, version, Arc::clone(&slot.expr_counters)));
        version
    }

    /// Publishes `estimator` under `name` **only if** the slot's version
    /// still equals `expected` (`0` ⇒ the slot must not exist yet).
    /// Returns the new version, or `None` when a newer generation landed
    /// in the meantime — the compare-and-swap a slow background rebuild
    /// needs so it can never stomp a fresher `load`/`register`.
    pub fn register_if_version(
        &self,
        name: &str,
        estimator: ServableEstimator,
        expected: u64,
    ) -> Option<u64> {
        {
            let slots = self.slots.read();
            if let Some(slot) = slots.get(name) {
                // Hold the generation write lock across the version check
                // so a concurrent publish cannot slip between check and
                // swap.
                let mut current = slot.current.write();
                if current.version() != expected {
                    return None;
                }
                let version = expected + 1;
                *current =
                    Arc::new(self.generation(estimator, version, Arc::clone(&slot.expr_counters)));
                return Some(version);
            }
        }
        if expected != 0 {
            return None; // slot was removed since the caller observed it
        }
        let mut slots = self.slots.write();
        if slots.contains_key(name) {
            return None; // created concurrently: that publish is newer
        }
        slots.insert(name.to_owned(), self.new_slot(name, estimator));
        Some(1)
    }

    /// [`EstimatorRegistry::register_if_version`] plus an **atomic**
    /// maintenance update: when the compare-and-swap succeeds, the slot's
    /// maintenance state is stored (`Some`) or invalidated (`None`) under
    /// the same maintenance lock a concurrent [`EstimatorRegistry::register`]
    /// must take — so a `load` can never slip between a background
    /// worker's publish and its state update and have cleared state
    /// resurrected over it.
    pub fn register_if_version_maintained(
        &self,
        name: &str,
        estimator: ServableEstimator,
        expected: u64,
        state: Option<MaintenanceState>,
    ) -> Option<u64> {
        let mut maintenance = self.maintenance.lock();
        let version = self.register_if_version(name, estimator, expected)?;
        match state {
            Some(state) => {
                maintenance.insert(name.to_owned(), Arc::new(state));
            }
            None => {
                maintenance.remove(name);
            }
        }
        Some(version)
    }

    fn generation(
        &self,
        estimator: ServableEstimator,
        version: u64,
        expr_counters: Arc<CacheCounters>,
    ) -> ServingEstimator {
        ServingEstimator {
            estimator,
            cache: ShardedLruCache::new(self.cache_capacity, Arc::clone(&self.counters)),
            expr_cache: ExprCache::new(Self::EXPR_CACHE_CAPACITY, expr_counters),
            version,
        }
    }

    /// Pins the current generation of `name` for reading. The returned
    /// `Arc` stays valid (and internally consistent) across any number of
    /// subsequent hot-swaps.
    pub fn get(&self, name: &str) -> Option<Arc<ServingEstimator>> {
        let slot = self.slots.read().get(name).cloned()?;
        let generation = slot.current.read().clone();
        Some(generation)
    }

    /// Removes a slot (and its maintenance state, if any). In-flight
    /// readers keep their pinned generations.
    pub fn remove(&self, name: &str) -> bool {
        self.maintenance.lock().remove(name);
        self.slots.write().remove(name).is_some()
    }

    /// Sorted listing, each row read from a single generation (so a
    /// concurrent hot-swap never produces a row mixing two generations).
    /// Maintained slots additionally report their catalog's compressed
    /// vs plain footprint.
    pub fn list(&self) -> Vec<EstimatorInfo> {
        // Maintenance footprints are captured *before* the slots lock:
        // publishers take maintenance → slots (see `register`), so
        // touching the maintenance mutex while holding a slots guard
        // would invert the lock order and deadlock against a concurrent
        // publish.
        let maintained: HashMap<String, (MaintainedFootprint, Option<DriftReport>)> = self
            .maintenance
            .lock()
            .iter()
            .filter_map(|(name, state)| {
                // Every maintained estimator is built sparse, so the
                // catalog is present by construction — but a listing is
                // diagnostics, not a place to die on a broken invariant:
                // a slot that somehow lost it is simply reported without
                // the maintained footprint.
                let catalog = state.estimator.sparse_catalog()?;
                Some((
                    name.clone(),
                    (
                        MaintainedFootprint {
                            nonzero_paths: catalog.nonzero_count() as u64,
                            catalog_bytes: catalog.size_bytes() as u64,
                            plain_bytes: catalog.plain_bytes() as u64,
                        },
                        state.estimator.drift().copied(),
                    ),
                ))
            })
            .collect();
        let mut entries: Vec<EstimatorInfo> = self
            .slots
            .read()
            .iter()
            .map(|(name, slot)| {
                let generation = slot.current.read();
                EstimatorInfo {
                    name: name.clone(),
                    version: generation.version(),
                    k: generation.estimator().k(),
                    label_count: generation.estimator().label_count(),
                    size_bytes: generation.estimator().size_bytes(),
                    description: generation.estimator().description().to_owned(),
                    lineage: generation.estimator().lineage(),
                    expr_cache: (slot.expr_counters.hits(), slot.expr_counters.misses()),
                    maintained: maintained.get(name).map(|(footprint, _)| *footprint),
                    drift: maintained.get(name).and_then(|(_, drift)| *drift),
                    follow_pruning: generation.estimator().follow().is_some(),
                    catalog: generation.estimator().catalog_residency(),
                }
            })
            .collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        entries
    }

    /// Number of registered estimators.
    pub fn len(&self) -> usize {
        self.slots.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// The registry is the object shared across every serving thread.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EstimatorRegistry>();
    assert_send_sync::<ServingEstimator>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use phe_core::{EstimatorConfig, HistogramKind, OrderingKind, PathSelectivityEstimator};
    use phe_datasets::{erdos_renyi, LabelDistribution};
    use phe_graph::LabelId;

    fn servable(beta: usize) -> ServableEstimator {
        let g = erdos_renyi(40, 240, 3, LabelDistribution::Zipf { exponent: 1.0 }, 11);
        ServableEstimator::from_estimator(
            PathSelectivityEstimator::build(
                &g,
                EstimatorConfig {
                    k: 3,
                    beta,
                    ordering: OrderingKind::SumBased,
                    histogram: HistogramKind::VOptimalGreedy,
                    threads: 1,
                    retain_catalog: false,
                    retain_sparse: false,
                },
            )
            .unwrap(),
        )
    }

    #[test]
    fn register_get_roundtrip() {
        let registry = EstimatorRegistry::with_default_counters();
        assert!(registry.get("main").is_none());
        assert_eq!(registry.register("main", servable(8)), 1);
        let generation = registry.get("main").unwrap();
        assert_eq!(generation.version(), 1);
        let p = LabelPath::new(&[LabelId(0), LabelId(1)]);
        // Cached value equals direct value.
        let direct = generation.estimator().estimate(&p);
        assert_eq!(generation.estimate(&p), direct);
        assert_eq!(generation.estimate(&p), direct);
    }

    #[test]
    fn hot_swap_bumps_version_and_preserves_pinned_readers() {
        let registry = EstimatorRegistry::with_default_counters();
        registry.register("main", servable(4));
        let pinned = registry.get("main").unwrap();
        assert_eq!(registry.register("main", servable(32)), 2);
        // The pinned generation still answers with its own estimator.
        let p = LabelPath::new(&[LabelId(1)]);
        let old = pinned.estimate(&p);
        assert_eq!(pinned.version(), 1);
        let fresh = registry.get("main").unwrap();
        assert_eq!(fresh.version(), 2);
        // Old generation remains self-consistent.
        assert_eq!(pinned.estimate(&p), old);
    }

    #[test]
    fn batch_is_single_generation_consistent() {
        let registry = EstimatorRegistry::with_default_counters();
        registry.register("main", servable(16));
        let generation = registry.get("main").unwrap();
        let paths: Vec<Vec<LabelId>> = vec![
            vec![LabelId(0)],
            vec![LabelId(1), LabelId(2)],
            vec![LabelId(2), LabelId(0), LabelId(1)],
        ];
        let batch = generation.estimate_id_batch(&paths).unwrap();
        for (p, got) in paths.iter().zip(&batch) {
            assert_eq!(*got, generation.estimator().estimate_labels(p).unwrap());
        }
    }

    #[test]
    fn invalid_path_fails_whole_batch() {
        let registry = EstimatorRegistry::with_default_counters();
        registry.register("main", servable(16));
        let generation = registry.get("main").unwrap();
        let paths = vec![vec![LabelId(0)], vec![LabelId(99)]];
        assert!(matches!(
            generation.estimate_id_batch(&paths),
            Err(EstimateError::UnknownLabelId(99))
        ));
    }

    #[test]
    fn estimate_expr_caches_under_normalized_keys_per_slot() {
        let registry = EstimatorRegistry::with_default_counters();
        registry.register("main", servable(16));
        let generation = registry.get("main").unwrap();
        let labels = generation.estimator().label_count();
        assert_eq!(labels, 3);

        // Miss, then a commuted alternation hits the same normalized key.
        let first = generation.estimate_expr("0|1", false).unwrap();
        assert!(!first.cached);
        assert_eq!(first.width, 2);
        let second = generation.estimate_expr("1|0", false).unwrap();
        assert!(second.cached, "commuted alternation must hit");
        assert_eq!(second.total.to_bits(), first.total.to_bits());

        // The total is the canonical-order sum of the branch estimates.
        let direct = generation
            .estimate_id_batch(&[vec![LabelId(0)], vec![LabelId(1)]])
            .unwrap();
        assert_eq!(first.total.to_bits(), (direct[0] + direct[1]).to_bits());

        // Explain bypasses the cache and carries branch rows.
        let explained = generation.estimate_expr("0|1", true).unwrap();
        assert!(!explained.cached);
        let branches = explained.branches.expect("explain carries branches");
        assert_eq!(branches.len(), 2);
        assert_eq!(branches[0].0, "0");

        // Per-slot counters: 1 hit, 1 miss so far (explain not counted),
        // reported by list() and surviving a hot swap.
        let row = &registry.list()[0];
        assert_eq!(row.expr_cache, (1, 1));
        registry.register("main", servable(8));
        let row = &registry.list()[0];
        assert_eq!(row.expr_cache, (1, 1), "counters survive the swap");
        let fresh = registry.get("main").unwrap();
        let after_swap = fresh.estimate_expr("1|0", false).unwrap();
        assert!(!after_swap.cached, "new generation starts cold");
        assert_eq!(registry.list()[0].expr_cache, (1, 2));

        // Parse errors surface with byte positions; wildcards expand.
        let err = generation.estimate_expr("0/nope", false).unwrap_err();
        assert!(err.contains("nope") && err.contains("bytes 2..6"), "{err}");
        let wild = generation.estimate_expr(".", false).unwrap();
        assert_eq!(wild.width, labels as u64);
    }

    #[test]
    fn follow_matrix_prunes_remote_expansions() {
        // A two-label chain graph: "a" edges feed "b" edges, nothing
        // else composes. Of the four length-2 wildcard branches only
        // a/b can occur, so remote expansion must prune the other three
        // — the serving tier now ships the follow matrix instead of
        // expanding purely syntactically.
        let mut b = phe_graph::GraphBuilder::new();
        b.add_edge_named(0, "a", 1);
        b.add_edge_named(3, "a", 4);
        b.add_edge_named(1, "b", 2);
        b.add_edge_named(4, "b", 5);
        let g = b.build();
        let est = PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                k: 2,
                beta: 4,
                threads: 1,
                ..EstimatorConfig::default()
            },
        )
        .unwrap();
        let snapshot = est.snapshot().unwrap();

        let registry = EstimatorRegistry::with_default_counters();
        registry.register("live", ServableEstimator::from_estimator(est));
        registry.register(
            "restored",
            ServableEstimator::from_snapshot(&snapshot).unwrap(),
        );
        for name in ["live", "restored"] {
            let generation = registry.get(name).unwrap();
            let out = generation.estimate_expr("./.", true).unwrap();
            assert_eq!((out.width, out.pruned), (1, 3), "{name}");
            let branches = out.branches.unwrap();
            assert_eq!(branches.len(), 1);
            assert_eq!(branches[0].0, "a/b", "{name}");
        }
        // Both rows advertise the capability.
        for row in registry.list() {
            assert!(row.follow_pruning, "{}", row.name);
            assert!(row.catalog.is_none(), "{}", row.name);
        }

        // A pre-v5 snapshot (no follow bits) expands syntactically:
        // same total branch space, nothing pruned.
        let mut v4 = snapshot;
        v4.follow_bits_base64 = None;
        registry.register("legacy", ServableEstimator::from_snapshot(&v4).unwrap());
        let generation = registry.get("legacy").unwrap();
        let out = generation.estimate_expr("./.", false).unwrap();
        assert_eq!((out.width, out.pruned), (4, 0));
        let row = registry
            .list()
            .into_iter()
            .find(|r| r.name == "legacy")
            .unwrap();
        assert!(!row.follow_pruning);
    }

    #[test]
    fn register_if_version_refuses_stale_publishes() {
        let registry = EstimatorRegistry::with_default_counters();
        // Fresh slot: expected 0 creates it.
        assert_eq!(
            registry.register_if_version("main", servable(4), 0),
            Some(1)
        );
        // Matching version swaps.
        assert_eq!(
            registry.register_if_version("main", servable(8), 1),
            Some(2)
        );
        // Stale expectation (a newer publish landed): refused, current kept.
        assert_eq!(registry.register_if_version("main", servable(16), 1), None);
        assert_eq!(registry.get("main").unwrap().version(), 2);
        // Expecting an existing version on a missing slot: refused.
        assert_eq!(registry.register_if_version("other", servable(4), 3), None);
        // Expecting creation when the slot exists: refused.
        assert_eq!(registry.register_if_version("main", servable(4), 0), None);
    }

    #[test]
    fn register_invalidates_maintenance_state() {
        let g = erdos_renyi(30, 150, 3, LabelDistribution::Uniform, 5);
        let est = PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                k: 2,
                beta: 8,
                retain_sparse: true,
                threads: 1,
                ..EstimatorConfig::default()
            },
        )
        .unwrap();
        let registry = EstimatorRegistry::with_default_counters();
        registry.register("main", servable(8));
        registry.store_maintenance(
            "main",
            MaintenanceState {
                graph: g,
                estimator: est,
            },
        );
        assert!(registry.maintenance("main").is_some());
        // An unconditional publish (a `load`) is not derived from the
        // maintained lineage: the state must be invalidated with it.
        registry.register("main", servable(16));
        assert!(registry.maintenance("main").is_none());
    }

    #[test]
    fn rebuild_marks_are_per_slot_and_releasable() {
        let registry = EstimatorRegistry::with_default_counters();
        assert!(registry.try_begin_rebuild("a"));
        assert!(!registry.try_begin_rebuild("a"), "second rebuild refused");
        assert!(registry.try_begin_rebuild("b"), "other slots unaffected");
        registry.finish_rebuild("a");
        assert!(registry.try_begin_rebuild("a"), "released after finish");
    }

    #[test]
    fn size_bytes_tracks_histogram_footprint() {
        // More buckets ⇒ a strictly larger reported footprint, and the
        // report matches the estimator's own accounting.
        let registry = EstimatorRegistry::with_default_counters();
        registry.register("small", servable(4));
        registry.register("large", servable(32));
        let list = registry.list();
        let small = list.iter().find(|i| i.name == "small").unwrap();
        let large = list.iter().find(|i| i.name == "large").unwrap();
        assert!(
            large.size_bytes > small.size_bytes,
            "β=32 ({}) must outweigh β=4 ({})",
            large.size_bytes,
            small.size_bytes
        );
        let pinned = registry.get("small").unwrap();
        assert_eq!(small.size_bytes, pinned.estimator().size_bytes());
    }

    #[test]
    fn list_reports_lineage_and_maintained_footprint() {
        // Enough realized paths that the block compression clears its
        // fixed overhead (skip row + struct) — as any real catalog does.
        let g = erdos_renyi(60, 600, 4, LabelDistribution::Zipf { exponent: 1.0 }, 5);
        let config = EstimatorConfig {
            k: 3,
            beta: 8,
            retain_sparse: true,
            threads: 1,
            ..EstimatorConfig::default()
        };
        let est = PathSelectivityEstimator::build(&g, config).unwrap();
        let build_id = est.build_id();
        let serving = PathSelectivityEstimator::build(&g, config).unwrap();

        let registry = EstimatorRegistry::with_default_counters();
        registry.register("main", ServableEstimator::from_estimator(serving));
        // No maintenance state yet: lineage present, footprint absent.
        let row = &registry.list()[0];
        assert_eq!(row.lineage, Some((build_id, 0)));
        assert!(row.maintained.is_none());

        registry.store_maintenance(
            "main",
            MaintenanceState {
                graph: g,
                estimator: est,
            },
        );
        let row = &registry.list()[0];
        let m = row.maintained.expect("maintained slot reports its catalog");
        assert!(m.nonzero_paths > 0);
        assert_eq!(m.plain_bytes, m.nonzero_paths * 16);
        assert!(
            m.catalog_bytes < m.plain_bytes,
            "compressed {} must undercut plain {}",
            m.catalog_bytes,
            m.plain_bytes
        );
    }

    #[test]
    fn list_and_remove() {
        let registry = EstimatorRegistry::with_default_counters();
        registry.register("b", servable(8));
        registry.register("a", servable(8));
        let names: Vec<String> = registry.list().into_iter().map(|info| info.name).collect();
        assert_eq!(names, vec!["a", "b"]);
        let info = &registry.list()[0];
        assert_eq!((info.k, info.label_count, info.version), (3, 3, 1));
        assert!(info.size_bytes > 0, "footprint must be reported");
        assert!(registry.remove("a"));
        assert!(!registry.remove("a"));
        assert_eq!(registry.len(), 1);
    }
}
