//! The original thread-per-connection serving backend: an acceptor thread
//! feeding a fixed worker pool over a bounded channel, std-only.
//!
//! Each worker owns one connection at a time, so concurrency is capped at
//! the pool size and connections past `workers × 4` backlog are refused.
//! The readiness-driven event loop (`crate::eventloop`) replaced this as
//! the default backend on unix; the pool survives as the non-unix
//! fallback and as the baseline the connection-scale bench measures the
//! event loop against.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::maintenance::MaintenanceCoordinator;
use crate::metrics::ServiceMetrics;
use crate::protocol::error_response;
use crate::registry::EstimatorRegistry;
use crate::server::{handle_line, ServerConfig, MAX_REQUEST_BYTES};

/// A running thread-pool server; dropping it does **not** stop the
/// threads — call [`ThreadPoolServer::shutdown`].
pub struct ThreadPoolServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPoolServer {
    /// Binds and starts accepting on a `config.workers`-thread pool.
    /// Returns once the listener is live, so `local_addr` is immediately
    /// connectable (ephemeral ports included).
    ///
    /// Of the admission fields only the implicit `workers × 4` backlog
    /// applies: this backend predates per-client quotas and shedding and
    /// is kept as the bench baseline, so it refuses with the legacy
    /// "connection capacity" error line instead.
    pub fn start_with(
        registry: Arc<EstimatorRegistry>,
        metrics: Arc<ServiceMetrics>,
        maintenance: Option<Arc<MaintenanceCoordinator>>,
        config: ServerConfig,
    ) -> std::io::Result<ThreadPoolServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));

        let worker_count = config.workers.max(1);
        // Bounded queue: each worker owns one connection at a time, so
        // connections beyond workers + backlog are refused with an error
        // line instead of queueing (and hanging) unboundedly.
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            mpsc::sync_channel(worker_count * 4);
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(worker_count);
        for _ in 0..worker_count {
            let rx = Arc::clone(&rx);
            let registry = Arc::clone(&registry);
            let metrics = Arc::clone(&metrics);
            let maintenance = maintenance.clone();
            let stop = Arc::clone(&stop);
            let allow_load = config.allow_load;
            workers.push(std::thread::spawn(move || loop {
                // Hold the receiver lock only to pull one connection.
                let conn = {
                    let guard = rx.lock();
                    guard.recv_timeout(Duration::from_millis(100))
                };
                match conn {
                    Ok(stream) => serve_connection(
                        stream,
                        &registry,
                        &metrics,
                        maintenance.as_ref(),
                        &stop,
                        allow_load,
                    ),
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => return,
                }
            }));
        }

        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // Bounded exponential backoff on accept errors: transient
                // failures (EMFILE, ECONNABORTED storms) back off up to
                // ~250 ms instead of hot-looping at a fixed 10 ms.
                let mut backoff = Duration::from_millis(1);
                loop {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            backoff = Duration::from_millis(1);
                            match tx.try_send(stream) {
                                Ok(()) => {}
                                Err(mpsc::TrySendError::Full(mut stream)) => {
                                    let _ = stream
                                        .write_all(
                                            error_response("server at connection capacity")
                                                .as_bytes(),
                                        )
                                        .and_then(|()| stream.write_all(b"\n"));
                                    // Dropped: the peer sees the error, then EOF.
                                }
                                Err(mpsc::TrySendError::Disconnected(_)) => return,
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            if stop.load(Ordering::Acquire) {
                                return;
                            }
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => {
                            if stop.load(Ordering::Acquire) {
                                return;
                            }
                            std::thread::sleep(backoff);
                            backoff = (backoff * 2).min(Duration::from_millis(250));
                        }
                    }
                }
            })
        };

        Ok(ThreadPoolServer {
            local_addr,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Signals shutdown and joins every thread. Idle connections are
    /// noticed within the worker read timeout (~250 ms).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    registry: &Arc<EstimatorRegistry>,
    metrics: &Arc<ServiceMetrics>,
    maintenance: Option<&Arc<MaintenanceCoordinator>>,
    stop: &AtomicBool,
    allow_load: bool,
) {
    // A short read timeout lets the worker poll the stop flag while the
    // peer is idle; the write timeout drops a peer that sends requests but
    // never drains responses (otherwise a full send buffer would block
    // the worker forever and wedge shutdown); TCP_NODELAY keeps one-line
    // responses from waiting on Nagle.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // Raw bytes, not a String: `read_until` keeps whatever it consumed
    // before a timeout, so a request fragmented across timeouts
    // reassembles — including fragments split mid multi-byte UTF-8
    // character, which `read_line`'s validity guard would discard. The
    // `take` bounds a single line: a peer streaming an endless
    // unterminated line hits the cap instead of growing the buffer
    // without limit.
    let mut line: Vec<u8> = Vec::new();
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let budget = (MAX_REQUEST_BYTES + 1).saturating_sub(line.len()) as u64;
        match std::io::Read::take(&mut reader, budget).read_until(b'\n', &mut line) {
            Ok(0) if line.is_empty() => return, // peer closed
            Ok(_) if line.len() > MAX_REQUEST_BYTES => {
                metrics.record_request(0, Duration::ZERO, false);
                let _ = writer
                    .write_all(error_response("request line too large").as_bytes())
                    .and_then(|()| writer.write_all(b"\n"));
                return;
            }
            // Ok(0) with buffered bytes: the peer closed mid-line after a
            // timeout left a fragment — answer the fragment, then drop.
            Ok(n) => {
                let text = String::from_utf8_lossy(&line);
                let trimmed = text.trim();
                if !trimmed.is_empty() {
                    let t0 = Instant::now();
                    let (response, paths, ok) =
                        handle_line(trimmed, registry, metrics, maintenance, allow_load);
                    metrics.record_request(paths, t0.elapsed(), ok);
                    if writer
                        .write_all(response.as_bytes())
                        .and_then(|()| writer.write_all(b"\n"))
                        .is_err()
                    {
                        return;
                    }
                }
                if n == 0 {
                    return; // peer closed
                }
                line.clear();
            }
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}
