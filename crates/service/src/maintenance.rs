//! The maintenance loop: self-managing freshness for maintained slots.
//!
//! PR 3's `delta` op applies one change batch per request — correct, but
//! the counting pass dominates cost, so N small batches pay N passes.
//! The [`MaintenanceCoordinator`] makes maintained slots self-managing
//! instead:
//!
//! * **Delta queue + compactor** — `delta` ops *enqueue* parsed change
//!   batches. On each publish interval (or a forced `maintenance`
//!   `compact`), the worker folds every queued batch into **one**
//!   composed delta ([`phe_graph::GraphDelta::compose`], which cancels
//!   insert-then-remove churn) and runs a single counting pass + merge +
//!   compare-and-swap publish. Queued batches are *peeked*, not popped:
//!   they leave the queue only after the CAS confirms their statistics
//!   won, so a crashed or failed pass retries the same batches and a
//!   superseded pass cannot double-apply them.
//! * **Rebuild triggers** — after each pass the slot's lineage is held
//!   against a [`RebuildPolicy`]: too many applied deltas, or a sampled
//!   [`phe_core::DriftReport`] crossing the Baraud–Birgé-derived
//!   threshold (see `phe_core::maintenance`), trigger one full
//!   maintaining rebuild from the slot's own maintained graph — no
//!   filesystem involved — which resets both lineage and drift.
//!
//! Every publish goes through the same
//! [`EstimatorRegistry::register_if_version_maintained`] compare-and-swap
//! as the PR 3 workers, so a compacted publish can never overwrite a
//! fresher `load`: the CAS fails, the result is discarded, and the queue
//! is purged because the lineage its batches were written against is
//! gone.
//!
//! ## Fault injection
//!
//! The loop is built against a deterministic harness: a [`FailurePlan`]
//! names the points a real deployment fails at ([`FailPoint`]) and scripts
//! what happens there — an error return, a panic, or a [`Gate`] hold that
//! parks the worker while the test races a concurrent publish against it.
//! `tests/maintenance_faults.rs` drives every scenario the design claims
//! to survive.

use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Condvar, Mutex as StdMutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use phe_core::{PathSelectivityEstimator, RebuildPolicy, RebuildTrigger};
use phe_graph::GraphDelta;

use crate::estimator::ServableEstimator;
use crate::metrics::ServiceMetrics;
use crate::registry::{EstimatorRegistry, MaintenanceState};
use crate::server::panic_message;

/// A named point in the maintenance worker where a [`FailurePlan`] can
/// interpose. Each corresponds to a real-world failure the loop must
/// survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailPoint {
    /// Before the compacted counting pass — a counting crash or OOM.
    BeforeCount,
    /// After counting, before the servable snapshot is derived — a lost
    /// publish: work done, nothing installed.
    BeforePublish,
    /// Immediately before the compare-and-swap — the window where a
    /// concurrent `load` races the worker and must win.
    BeforeCas,
    /// Before a policy-triggered full rebuild's build pass.
    BeforeRebuild,
}

/// A two-phase rendezvous for deterministic interleavings: the worker
/// [`Gate::pass`]es (announces arrival, then parks); the test
/// [`Gate::wait_arrived`]s, performs its concurrent action, and
/// [`Gate::release`]s the worker.
#[derive(Debug, Default)]
pub struct Gate {
    state: StdMutex<GateState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct GateState {
    arrived: bool,
    released: bool,
}

impl Gate {
    /// A fresh, unreleased gate.
    pub fn new() -> Arc<Gate> {
        Arc::new(Gate::default())
    }

    /// Worker side: announce arrival and park until released.
    pub fn pass(&self) {
        // The gate guards two plain booleans; a panicking holder cannot
        // leave them torn, so poisoning recovery is sound.
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        s.arrived = true;
        self.cv.notify_all();
        while !s.released {
            s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Test side: block until the worker has arrived at the gate.
    pub fn wait_arrived(&self) {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while !s.arrived {
            s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Test side: let the worker proceed (idempotent; also unblocks a
    /// worker that arrives later).
    pub fn release(&self) {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        s.released = true;
        self.cv.notify_all();
    }
}

/// What happens when the worker reaches an armed [`FailPoint`].
#[derive(Debug, Clone)]
pub enum FailAction {
    /// The pass aborts with this error; queued batches are retained.
    Fail(String),
    /// The worker panics with this message (recovered by the runner, as
    /// a real worker-thread crash would be by the next tick).
    Panic(String),
    /// The worker parks at the [`Gate`] until the test releases it.
    Hold(Arc<Gate>),
}

/// A deterministic fault-injection script for the maintenance worker.
///
/// Actions are armed per point and consumed FIFO: each time the worker
/// reaches the point, the next armed action fires; with the queue
/// drained the point passes through. Hit counts are recorded whether or
/// not an action fired.
#[derive(Debug, Default)]
pub struct FailurePlan {
    armed: Mutex<HashMap<FailPoint, Vec<FailAction>>>,
    hits: Mutex<HashMap<FailPoint, u64>>,
}

impl FailurePlan {
    /// Arms `action` to fire on the next un-consumed hit of `point`.
    pub fn inject(&self, point: FailPoint, action: FailAction) {
        self.armed.lock().entry(point).or_default().push(action);
    }

    /// How many times the worker has reached `point`.
    pub fn hits(&self, point: FailPoint) -> u64 {
        self.hits.lock().get(&point).copied().unwrap_or(0)
    }

    /// Worker side: pass through `point`, firing the next armed action.
    fn hit(&self, point: FailPoint) -> Result<(), String> {
        *self.hits.lock().entry(point).or_insert(0) += 1;
        let action = self.armed.lock().get_mut(&point).and_then(|queue| {
            if queue.is_empty() {
                None
            } else {
                Some(queue.remove(0))
            }
        });
        match action {
            None => Ok(()),
            Some(FailAction::Fail(message)) => Err(format!("injected failure: {message}")),
            // LINT-ALLOW(panic): this IS the fault-injection harness —
            // the armed action's contract is a real worker-thread panic.
            Some(FailAction::Panic(message)) => panic!("injected panic: {message}"),
            Some(FailAction::Hold(gate)) => {
                gate.pass();
                Ok(())
            }
        }
    }
}

/// Tuning for the maintenance loop.
#[derive(Debug, Clone, Copy)]
pub struct MaintenanceConfig {
    /// How often the ticker compacts queued batches and evaluates
    /// rebuild triggers.
    pub publish_interval: Duration,
    /// When a maintained slot should stop merging and fully rebuild.
    pub policy: RebuildPolicy,
    /// Per-slot delta queue cap: an [`MaintenanceCoordinator::enqueue`]
    /// past this depth is refused with [`EnqueueError::QueueFull`]
    /// (structured backpressure) instead of growing the queue — and the
    /// parsed-but-unapplied batches it holds — without bound.
    pub max_queue_depth: usize,
}

impl Default for MaintenanceConfig {
    /// Two-second publish cadence under the default [`RebuildPolicy`],
    /// queues capped at 1024 batches per slot.
    fn default() -> MaintenanceConfig {
        MaintenanceConfig {
            publish_interval: Duration::from_secs(2),
            policy: RebuildPolicy::default(),
            max_queue_depth: 1024,
        }
    }
}

/// Why [`MaintenanceCoordinator::enqueue`] refused a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnqueueError {
    /// The slot has no maintained lineage for batches to apply to.
    NoLineage {
        /// The slot that was addressed.
        slot: String,
    },
    /// The slot's queue is at [`MaintenanceConfig::max_queue_depth`];
    /// the batch was **not** queued. The caller should surface
    /// backpressure and retry after the next compacted publish.
    QueueFull {
        /// The configured cap the queue sits at.
        cap: usize,
    },
}

impl std::fmt::Display for EnqueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnqueueError::NoLineage { slot } => write!(
                f,
                "no maintained statistics for {slot:?}; run a rebuild with \
                 \"maintain\": true first"
            ),
            EnqueueError::QueueFull { cap } => write!(
                f,
                "maintenance delta queue at its cap of {cap} batches; \
                 retry after the next compacted publish"
            ),
        }
    }
}

impl std::error::Error for EnqueueError {}

/// A point-in-time view of one slot's maintenance loop, for the
/// `maintenance` protocol op and the `list` row join.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SlotStatus {
    /// Batches currently queued for the next compacted publish.
    pub queued: usize,
    /// Batches ever enqueued.
    pub enqueued: u64,
    /// Batches refused at the queue cap (structured backpressure).
    pub rejected: u64,
    /// Batches folded into a published compacted pass.
    pub compacted: u64,
    /// Batches discarded because their target lineage disappeared.
    pub purged: u64,
    /// Human-readable description of the last rebuild trigger that
    /// fired, if any.
    pub last_trigger: Option<String>,
    /// Outcome of the slot's most recent maintenance pass.
    pub last_outcome: Option<String>,
}

/// What one maintenance pass over a slot did.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// Another rebuild or compaction holds the slot's single-flight
    /// mark; nothing was done.
    Busy,
    /// Nothing queued and no rebuild trigger armed.
    Idle,
    /// The slot has no maintained lineage; any queued batches were
    /// purged (they can never apply).
    NoLineage {
        /// Batches dropped from the queue.
        purged: usize,
    },
    /// A publish landed: `batches` queued batches were folded into one
    /// pass (0 when only a trigger-driven rebuild published), and
    /// `rebuilt` names the trigger kind if a full rebuild followed.
    Published {
        /// The slot version the publish installed.
        version: u64,
        /// Queued batches consumed by the compacted pass.
        batches: usize,
        /// `Some(trigger kind)` when a policy-triggered full rebuild
        /// also published.
        rebuilt: Option<String>,
    },
    /// The compare-and-swap lost to a concurrent publish; the queue,
    /// which targeted the now-dead lineage, was purged.
    Superseded {
        /// Batches dropped from the queue.
        purged: usize,
    },
    /// The pass stopped before publishing; `retained` batches stay
    /// queued for the next tick.
    Failed {
        /// What went wrong.
        message: String,
        /// Batches left in the queue to retry.
        retained: usize,
    },
}

impl std::fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunOutcome::Busy => write!(f, "busy"),
            RunOutcome::Idle => write!(f, "idle"),
            RunOutcome::NoLineage { purged } => {
                write!(f, "no maintained lineage ({purged} purged)")
            }
            RunOutcome::Published {
                version,
                batches,
                rebuilt,
            } => match rebuilt {
                Some(kind) => write!(
                    f,
                    "published v{version} ({batches} batches; {kind} rebuild)"
                ),
                None => write!(f, "published v{version} ({batches} batches)"),
            },
            RunOutcome::Superseded { purged } => write!(f, "superseded ({purged} purged)"),
            RunOutcome::Failed { message, retained } => {
                write!(f, "failed: {message} ({retained} retained)")
            }
        }
    }
}

/// Per-slot queue and loop bookkeeping.
#[derive(Debug, Default)]
struct SlotQueue {
    batches: Vec<GraphDelta>,
    enqueued: u64,
    rejected: u64,
    compacted: u64,
    purged: u64,
    last_trigger: Option<String>,
    last_outcome: Option<String>,
}

/// The per-process maintenance loop: one delta queue per maintained
/// slot, a compactor, and policy-triggered rebuilds. See the module doc
/// for the design; `phe serve` owns one and runs
/// [`MaintenanceCoordinator::start_ticker`].
pub struct MaintenanceCoordinator {
    registry: Arc<EstimatorRegistry>,
    metrics: Arc<ServiceMetrics>,
    config: Mutex<MaintenanceConfig>,
    slots: Mutex<HashMap<String, SlotQueue>>,
    plan: FailurePlan,
    shutdown: StdMutex<bool>,
    shutdown_cv: Condvar,
}

impl MaintenanceCoordinator {
    /// A coordinator over `registry`, reporting into `metrics`.
    pub fn new(
        registry: Arc<EstimatorRegistry>,
        metrics: Arc<ServiceMetrics>,
        config: MaintenanceConfig,
    ) -> Arc<MaintenanceCoordinator> {
        Arc::new(MaintenanceCoordinator {
            registry,
            metrics,
            config: Mutex::new(config),
            slots: Mutex::new(HashMap::new()),
            plan: FailurePlan::default(),
            shutdown: StdMutex::new(false),
            shutdown_cv: Condvar::new(),
        })
    }

    /// The fault-injection script (inert unless actions are armed).
    pub fn failure_plan(&self) -> &FailurePlan {
        &self.plan
    }

    /// The current loop configuration.
    pub fn config(&self) -> MaintenanceConfig {
        *self.config.lock()
    }

    /// Replaces the rebuild policy (the `maintenance` op's `set-policy`).
    pub fn set_policy(&self, policy: RebuildPolicy) {
        self.config.lock().policy = policy;
    }

    /// Queues one parsed change batch for `name`'s next compacted
    /// publish. Returns the queue depth after the push.
    ///
    /// # Errors
    /// [`EnqueueError::NoLineage`] when the slot has no maintained
    /// lineage to apply batches to; [`EnqueueError::QueueFull`] when the
    /// queue sits at [`MaintenanceConfig::max_queue_depth`] (counted as
    /// `phe_maintenance_batches_total{event="rejected"}`; the batch is
    /// dropped and the caller must surface backpressure).
    pub fn enqueue(&self, name: &str, delta: GraphDelta) -> Result<usize, EnqueueError> {
        if self.registry.maintenance(name).is_none() {
            return Err(EnqueueError::NoLineage {
                slot: name.to_owned(),
            });
        }
        let cap = self.config.lock().max_queue_depth;
        let mut slots = self.slots.lock();
        let queue = slots.entry(name.to_owned()).or_default();
        if queue.batches.len() >= cap {
            queue.rejected += 1;
            drop(slots);
            self.metrics.record_maintenance_batches("rejected", 1);
            return Err(EnqueueError::QueueFull { cap });
        }
        queue.batches.push(delta);
        queue.enqueued += 1;
        let depth = queue.batches.len();
        drop(slots);
        self.metrics.record_maintenance_batches("enqueued", 1);
        self.metrics.record_maintenance_queue_depth(name, depth);
        Ok(depth)
    }

    /// The slot's loop status (all-zero defaults for unseen slots).
    pub fn status(&self, name: &str) -> SlotStatus {
        self.slots
            .lock()
            .get(name)
            .map(|q| SlotStatus {
                queued: q.batches.len(),
                enqueued: q.enqueued,
                rejected: q.rejected,
                compacted: q.compacted,
                purged: q.purged,
                last_trigger: q.last_trigger.clone(),
                last_outcome: q.last_outcome.clone(),
            })
            .unwrap_or_default()
    }

    /// Status of every slot the loop has touched, sorted by name.
    pub fn status_all(&self) -> Vec<(String, SlotStatus)> {
        let names: BTreeSet<String> = self.slots.lock().keys().cloned().collect();
        names
            .into_iter()
            .map(|name| {
                let status = self.status(&name);
                (name, status)
            })
            .collect()
    }

    /// One maintenance pass over every slot that has queued batches or a
    /// maintained lineage; returns what each pass did.
    pub fn tick(&self) -> Vec<(String, RunOutcome)> {
        let mut names: BTreeSet<String> = self
            .slots
            .lock()
            .iter()
            .filter(|(_, q)| !q.batches.is_empty())
            .map(|(name, _)| name.clone())
            .collect();
        for info in self.registry.list() {
            if info.maintained.is_some() {
                names.insert(info.name);
            }
        }
        names
            .into_iter()
            .map(|name| {
                let outcome = self.run_slot(&name);
                (name, outcome)
            })
            .collect()
    }

    /// One maintenance pass over `name`: compact queued batches into a
    /// single counting pass + CAS publish, then evaluate rebuild
    /// triggers. Serialized against protocol-level rebuilds and deltas
    /// through the slot's single-flight mark; panics (real or injected)
    /// are recovered and reported as [`RunOutcome::Failed`] with the
    /// queue intact.
    pub fn run_slot(&self, name: &str) -> RunOutcome {
        if !self.registry.try_begin_rebuild(name) {
            return RunOutcome::Busy;
        }
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_locked(name)))
                .unwrap_or_else(|panic| RunOutcome::Failed {
                    message: panic_message(panic.as_ref()).to_owned(),
                    retained: self.queue_len(name),
                });
        self.registry.finish_rebuild(name);
        self.record_outcome(name, &outcome);
        outcome
    }

    /// The pass body; the single-flight mark is held by the caller.
    fn run_locked(&self, name: &str) -> RunOutcome {
        // Version first, maintenance second — same order as the protocol
        // delta handler, so a `load` racing us either clears the state
        // (pass refused) or bumps the version (CAS below fails).
        let expected = self.registry.get(name).map_or(0, |g| g.version());
        let Some(state) = self.registry.maintenance(name) else {
            return RunOutcome::NoLineage {
                purged: self.purge(name),
            };
        };
        // Peek — not pop — the batches queued so far. Later arrivals ride
        // the next pass; these leave the queue only after a winning CAS.
        let pending: Vec<GraphDelta> = self
            .slots
            .lock()
            .get(name)
            .map_or_else(Vec::new, |q| q.batches.clone());
        let batches = pending.len();
        let mut published = None;
        if batches > 0 {
            if let Err(message) = self.plan.hit(FailPoint::BeforeCount) {
                return RunOutcome::Failed {
                    message,
                    retained: batches,
                };
            }
            let composed = GraphDelta::compose(&pending);
            if composed.is_empty() {
                // The batches cancel to nothing: folding them in is a
                // no-op, so they are consumed without a publish.
                self.pop(name, batches, true);
            } else {
                let (estimator, graph) = match state.estimator.apply_delta(&state.graph, &composed)
                {
                    Ok(pair) => pair,
                    Err(e) => {
                        // A contract violation can never succeed on retry;
                        // dropping the batches is the only way forward.
                        self.pop(name, batches, false);
                        self.metrics.record_delta_failed();
                        return RunOutcome::Failed {
                            message: format!("compacted delta rejected: {e}"),
                            retained: 0,
                        };
                    }
                };
                if let Err(message) = self.plan.hit(FailPoint::BeforePublish) {
                    return RunOutcome::Failed {
                        message,
                        retained: batches,
                    };
                }
                // Drift is published only once the CAS confirms these
                // statistics won.
                let drift = estimator.drift().copied();
                let servable = match estimator
                    .snapshot()
                    .map_err(|e| e.to_string())
                    .and_then(|s| ServableEstimator::from_snapshot(&s).map_err(|e| e.to_string()))
                {
                    Ok(servable) => servable,
                    Err(message) => {
                        self.metrics.record_delta_failed();
                        return RunOutcome::Failed {
                            message: format!("deriving servable: {message}"),
                            retained: batches,
                        };
                    }
                };
                if let Err(message) = self.plan.hit(FailPoint::BeforeCas) {
                    return RunOutcome::Failed {
                        message,
                        retained: batches,
                    };
                }
                match self.registry.register_if_version_maintained(
                    name,
                    servable,
                    expected,
                    Some(MaintenanceState { graph, estimator }),
                ) {
                    Some(version) => {
                        self.pop(name, batches, true);
                        if version > 1 {
                            self.metrics.record_swap();
                        }
                        if let Some(drift) = drift {
                            self.metrics.record_drift(name, &drift);
                        }
                        published = Some(version);
                    }
                    None => {
                        // A fresher publish (a `load`) won the race; the
                        // queued batches target a lineage that no longer
                        // exists and must not be replayed against the new
                        // statistics.
                        self.metrics.record_delta_superseded();
                        return RunOutcome::Superseded {
                            purged: self.purge(name),
                        };
                    }
                }
            }
        }
        // Hold the (possibly just-advanced) lineage against the policy.
        let Some(state) = self.registry.maintenance(name) else {
            return match published {
                Some(version) => RunOutcome::Published {
                    version,
                    batches,
                    rebuilt: None,
                },
                None => RunOutcome::NoLineage {
                    purged: self.purge(name),
                },
            };
        };
        let policy = self.config.lock().policy;
        let estimator = &state.estimator;
        let trigger = policy.trigger(
            estimator.applied_deltas(),
            estimator.drift(),
            estimator.config().beta,
            estimator.footprint().nonzero_paths,
        );
        match trigger {
            Some(trigger) => self.rebuild_locked(name, &state, trigger, batches),
            None => match published {
                Some(version) => RunOutcome::Published {
                    version,
                    batches,
                    rebuilt: None,
                },
                None => RunOutcome::Idle,
            },
        }
    }

    /// A policy-triggered full maintaining rebuild from the slot's own
    /// maintained graph; resets lineage and drift on success.
    fn rebuild_locked(
        &self,
        name: &str,
        state: &MaintenanceState,
        trigger: RebuildTrigger,
        batches: usize,
    ) -> RunOutcome {
        self.slots
            .lock()
            .entry(name.to_owned())
            .or_default()
            .last_trigger = Some(trigger.to_string());
        if let Err(message) = self.plan.hit(FailPoint::BeforeRebuild) {
            return RunOutcome::Failed {
                message,
                retained: self.queue_len(name),
            };
        }
        let expected = self.registry.get(name).map_or(0, |g| g.version());
        self.metrics.record_rebuild_started();
        // `retain_sparse` is already set in a maintained config, so the
        // fresh build starts a new maintainable lineage.
        let fresh = match PathSelectivityEstimator::build(&state.graph, *state.estimator.config()) {
            Ok(estimator) => estimator,
            Err(e) => {
                self.metrics.record_rebuild_failed();
                return RunOutcome::Failed {
                    message: format!("policy rebuild: {e}"),
                    retained: self.queue_len(name),
                };
            }
        };
        let servable = match fresh
            .snapshot()
            .map_err(|e| e.to_string())
            .and_then(|s| ServableEstimator::from_snapshot(&s).map_err(|e| e.to_string()))
        {
            Ok(servable) => servable,
            Err(message) => {
                self.metrics.record_rebuild_failed();
                return RunOutcome::Failed {
                    message: format!("policy rebuild snapshot: {message}"),
                    retained: self.queue_len(name),
                };
            }
        };
        match self.registry.register_if_version_maintained(
            name,
            servable,
            expected,
            Some(MaintenanceState {
                graph: state.graph.clone(),
                estimator: fresh,
            }),
        ) {
            Some(version) => {
                self.metrics.record_maintenance_rebuild(trigger.kind());
                if version > 1 {
                    self.metrics.record_swap();
                }
                // The fresh lineage has no sampled drift; the stale
                // gauges must not outlive the lineage they measured.
                self.metrics.clear_drift(name);
                RunOutcome::Published {
                    version,
                    batches,
                    rebuilt: Some(trigger.kind().to_owned()),
                }
            }
            None => {
                self.metrics.record_rebuild_superseded();
                RunOutcome::Superseded {
                    purged: self.purge(name),
                }
            }
        }
    }

    /// Spawns the publish-interval ticker. Stop it with
    /// [`MaintenanceCoordinator::request_shutdown`] and join the handle.
    pub fn start_ticker(self: &Arc<Self>) -> JoinHandle<()> {
        let this = Arc::clone(self);
        std::thread::spawn(move || loop {
            let interval = this.config.lock().publish_interval;
            // The flag is one boolean — recovering a poisoned lock reads
            // either valid state, so the ticker survives a panicking
            // sibling instead of killing shutdown.
            let stop = this.shutdown.lock().unwrap_or_else(PoisonError::into_inner);
            let (stop, _) = this
                .shutdown_cv
                .wait_timeout_while(stop, interval, |stopped| !*stopped)
                .unwrap_or_else(PoisonError::into_inner);
            if *stop {
                return;
            }
            drop(stop);
            this.tick();
        })
    }

    /// Asks the ticker to exit at its next wakeup (immediate).
    pub fn request_shutdown(&self) {
        *self.shutdown.lock().unwrap_or_else(PoisonError::into_inner) = true;
        self.shutdown_cv.notify_all();
    }

    fn queue_len(&self, name: &str) -> usize {
        self.slots.lock().get(name).map_or(0, |q| q.batches.len())
    }

    /// Removes the first `n` batches — the ones the finished pass peeked;
    /// `applied` says whether they published (vs. were rejected).
    fn pop(&self, name: &str, n: usize, applied: bool) {
        let depth = {
            let mut slots = self.slots.lock();
            let queue = slots.entry(name.to_owned()).or_default();
            let n = n.min(queue.batches.len());
            queue.batches.drain(..n);
            if applied {
                queue.compacted += n as u64;
            } else {
                queue.purged += n as u64;
            }
            queue.batches.len()
        };
        self.metrics
            .record_maintenance_batches(if applied { "compacted" } else { "purged" }, n as u64);
        self.metrics.record_maintenance_queue_depth(name, depth);
    }

    /// Drops the whole queue (the lineage its batches target is gone).
    fn purge(&self, name: &str) -> usize {
        let purged = {
            let mut slots = self.slots.lock();
            let queue = slots.entry(name.to_owned()).or_default();
            let purged = queue.batches.len();
            queue.batches.clear();
            queue.purged += purged as u64;
            purged
        };
        if purged > 0 {
            self.metrics
                .record_maintenance_batches("purged", purged as u64);
        }
        self.metrics.record_maintenance_queue_depth(name, 0);
        purged
    }

    fn record_outcome(&self, name: &str, outcome: &RunOutcome) {
        if matches!(outcome, RunOutcome::Idle | RunOutcome::Busy) {
            // Don't overwrite an interesting outcome with steady-state
            // idle ticks.
            return;
        }
        if let RunOutcome::Failed { message, .. } = outcome {
            eprintln!("maintenance pass for {name:?} failed: {message}");
        }
        self.slots
            .lock()
            .entry(name.to_owned())
            .or_default()
            .last_outcome = Some(outcome.to_string());
    }
}

impl std::fmt::Debug for MaintenanceCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaintenanceCoordinator")
            .field("config", &*self.config.lock())
            .field("slots", &self.slots.lock().len())
            .finish_non_exhaustive()
    }
}
