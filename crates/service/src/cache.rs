//! LRU caches for repeated estimates: sharded per-path, plus the
//! normalized-expression cache.
//!
//! Path-selectivity workloads are heavily skewed (optimizers re-ask the
//! same hot join paths), so a small cache in front of the histogram's
//! three-stage sum-based lookup pays for itself quickly. Sharding by path
//! hash keeps lock hold times short under concurrent batches; hit/miss
//! counters are shared with [`crate::metrics::ServiceMetrics`] so the
//! cumulative hit rate survives snapshot hot-swaps (each swap installs a
//! fresh, cold cache — the *counters* must not reset with it).
//!
//! The [`ExprCache`] serves the `estimate_expr` op. It is keyed by the
//! **normalized** expression (see `phe_query::PathExpr::cache_key`), so
//! syntactic variants like `(a|b)/c` and `(b|a)/c` share one entry —
//! the hit counters therefore measure normalized-key hits against raw
//! misses. Its counters are *per registry slot* and survive generation
//! swaps within the slot.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

use parking_lot::Mutex;
use phe_core::LabelPath;
use phe_obs::{Counter, MetricsRegistry};

/// Cumulative hit/miss counters, shared between cache generations.
///
/// Backed by a pair of [`phe_obs::Counter`] handles. Detached by
/// default; [`CacheCounters::registered`] binds the same counters into a
/// metrics registry as `phe_cache_requests_total{…,outcome=…}`, so the
/// hit rate the `list` op and the scrape endpoint report is read from
/// the **same atomics** the cache increments — the surfaces cannot
/// disagree.
#[derive(Debug)]
pub struct CacheCounters {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
}

impl Default for CacheCounters {
    fn default() -> Self {
        CacheCounters {
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
        }
    }
}

impl CacheCounters {
    /// Counters registered in `registry` under
    /// `phe_cache_requests_total` with the given identifying labels plus
    /// `outcome="hit"` / `outcome="miss"`.
    pub fn registered(registry: &MetricsRegistry, labels: &[(&str, &str)]) -> CacheCounters {
        const NAME: &str = phe_obs::names::CACHE_REQUESTS_TOTAL;
        const HELP: &str = "Cache lookups by cache, slot, and outcome.";
        let mut hit_labels = labels.to_vec();
        hit_labels.push(("outcome", "hit"));
        let mut miss_labels = labels.to_vec();
        miss_labels.push(("outcome", "miss"));
        CacheCounters {
            hits: registry.counter_with(NAME, HELP, &hit_labels),
            misses: registry.counter_with(NAME, HELP, &miss_labels),
        }
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Hits / (hits + misses), or 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let total = h + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            h / total
        }
    }
}

const NIL: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// One shard: a classic HashMap + intrusive-list LRU, generic over the
/// key (label paths here, normalized expression strings in
/// [`ExprCache`]).
struct Shard<K, V> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> Shard<K, V> {
    fn new(capacity: usize) -> Shard<K, V> {
        Shard {
            map: HashMap::with_capacity(capacity.min(1024)),
            nodes: Vec::with_capacity(capacity.min(1024)),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get<Q: Hash + Eq + ?Sized>(&mut self, key: &Q) -> Option<V>
    where
        K: std::borrow::Borrow<Q>,
    {
        let &i = self.map.get(key)?;
        let value = self.nodes[i].value.clone();
        if self.head != i {
            self.detach(i);
            self.push_front(i);
        }
        Some(value)
    }

    fn insert(&mut self, key: K, value: V) {
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i].value = value;
            if self.head != i {
                self.detach(i);
                self.push_front(i);
            }
            return;
        }
        let i = if self.nodes.len() < self.capacity {
            self.nodes.push(Node {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        } else {
            // Evict the least recently used entry and reuse its node.
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.detach(victim);
            self.map.remove(&self.nodes[victim].key);
            self.nodes[victim] = Node {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            };
            victim
        };
        self.map.insert(key, i);
        self.push_front(i);
    }
}

/// The sharded LRU estimate cache.
pub struct ShardedLruCache {
    shards: Vec<Mutex<Shard<LabelPath, f64>>>,
    counters: Arc<CacheCounters>,
}

impl ShardedLruCache {
    /// Number of shards (power of two so the hash → shard map is a mask).
    pub const SHARDS: usize = 16;

    /// A cache holding up to ~`capacity` entries, reporting into
    /// `counters`.
    pub fn new(capacity: usize, counters: Arc<CacheCounters>) -> ShardedLruCache {
        let per_shard = capacity.div_ceil(Self::SHARDS).max(1);
        ShardedLruCache {
            shards: (0..Self::SHARDS)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            counters,
        }
    }

    fn shard_for(&self, path: &LabelPath) -> &Mutex<Shard<LabelPath, f64>> {
        // FNV-1a over the packed labels: cheap and well-mixed for the
        // short u16 sequences paths are.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &l in &path.as_slice()[..path.len()] {
            h ^= l as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= path.len() as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        &self.shards[(h as usize) & (Self::SHARDS - 1)]
    }

    /// Looks up a cached estimate, counting the hit or miss.
    pub fn get(&self, path: &LabelPath) -> Option<f64> {
        let result = self.shard_for(path).lock().get(path);
        match result {
            Some(_) => self.counters.hits.inc(),
            None => self.counters.misses.inc(),
        };
        result
    }

    /// Inserts an estimate, evicting the shard's LRU entry if full.
    pub fn insert(&self, path: LabelPath, value: f64) {
        self.shard_for(&path).lock().insert(path, value);
    }

    /// Current number of cached entries (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A cached expression outcome: everything `estimate_expr` answers apart
/// from the per-branch breakdown (explain requests recompute).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedExpr {
    /// Total estimate across the expansion, canonical-order sum.
    pub total: f64,
    /// Number of concrete branches estimated.
    pub width: u64,
    /// Branches discarded by follow pruning.
    pub pruned: u64,
    /// Branches discarded for exceeding the length budget.
    pub truncated: u64,
    /// Whether the expression also denotes the empty path.
    pub matches_empty: bool,
}

/// The expression cache: one LRU keyed by the **normalized** expression
/// rendering, so commuted alternations share entries. Expression traffic
/// is far lighter than per-path traffic (each expression fans out into
/// many per-path lookups below it), so a single mutex suffices.
pub struct ExprCache {
    shard: Mutex<Shard<String, CachedExpr>>,
    counters: Arc<CacheCounters>,
}

impl ExprCache {
    /// A cache holding up to `capacity` expressions, reporting into the
    /// per-slot `counters`.
    pub fn new(capacity: usize, counters: Arc<CacheCounters>) -> ExprCache {
        ExprCache {
            shard: Mutex::new(Shard::new(capacity.max(1))),
            counters,
        }
    }

    /// Looks up a normalized key, counting the hit or miss.
    pub fn get(&self, key: &str) -> Option<CachedExpr> {
        let result = self.shard.lock().get(key);
        match result {
            Some(_) => self.counters.hits.inc(),
            None => self.counters.misses.inc(),
        };
        result
    }

    /// Inserts an outcome under its normalized key.
    pub fn insert(&self, key: String, value: CachedExpr) {
        self.shard.lock().insert(key, value);
    }

    /// Current number of cached expressions.
    pub fn len(&self) -> usize {
        self.shard.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phe_graph::LabelId;

    fn path(labels: &[u16]) -> LabelPath {
        let ids: Vec<LabelId> = labels.iter().map(|&l| LabelId(l)).collect();
        LabelPath::new(&ids)
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let counters = Arc::new(CacheCounters::default());
        let cache = ShardedLruCache::new(64, counters.clone());
        let p = path(&[1, 2]);
        assert_eq!(cache.get(&p), None);
        cache.insert(p, 0.5);
        assert_eq!(cache.get(&p), Some(0.5));
        assert_eq!(counters.hits(), 1);
        assert_eq!(counters.misses(), 1);
        assert!((counters.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used_per_shard() {
        // Capacity 16 over 16 shards = 1 entry per shard: any two distinct
        // paths landing in the same shard evict each other.
        let cache = ShardedLruCache::new(16, Arc::new(CacheCounters::default()));
        let mut same_shard = Vec::new();
        for a in 0..200u16 {
            let p = path(&[a]);
            if std::ptr::eq(cache.shard_for(&p), cache.shard_for(&path(&[0]))) {
                same_shard.push(p);
            }
            if same_shard.len() == 2 {
                break;
            }
        }
        assert_eq!(same_shard.len(), 2, "no shard collision in 200 paths?");
        cache.insert(same_shard[0], 1.0);
        cache.insert(same_shard[1], 2.0);
        assert_eq!(cache.get(&same_shard[0]), None, "LRU entry should evict");
        assert_eq!(cache.get(&same_shard[1]), Some(2.0));
    }

    #[test]
    fn recently_used_survives_eviction() {
        let cache = ShardedLruCache::new(
            ShardedLruCache::SHARDS * 2,
            Arc::new(CacheCounters::default()),
        );
        // Find three paths in one shard; touch the first, insert the
        // third: the second (LRU) must go.
        let reference = path(&[0]);
        let mut trio = Vec::new();
        for a in 0..2000u16 {
            let p = path(&[a, 1]);
            if std::ptr::eq(cache.shard_for(&p), cache.shard_for(&reference)) {
                trio.push(p);
            }
            if trio.len() == 3 {
                break;
            }
        }
        assert_eq!(trio.len(), 3);
        cache.insert(trio[0], 1.0);
        cache.insert(trio[1], 2.0);
        assert_eq!(cache.get(&trio[0]), Some(1.0)); // refresh
        cache.insert(trio[2], 3.0); // evicts trio[1]
        assert_eq!(cache.get(&trio[0]), Some(1.0));
        assert_eq!(cache.get(&trio[1]), None);
        assert_eq!(cache.get(&trio[2]), Some(3.0));
    }

    #[test]
    fn expr_cache_hits_normalized_keys_and_evicts() {
        let counters = Arc::new(CacheCounters::default());
        let cache = ExprCache::new(2, counters.clone());
        let entry = CachedExpr {
            total: 7.5,
            width: 2,
            pruned: 1,
            truncated: 0,
            matches_empty: false,
        };
        assert_eq!(cache.get("(0|1)/2"), None);
        cache.insert("(0|1)/2".to_owned(), entry);
        // A commuted alternation normalizes to the same key string by the
        // time it reaches the cache.
        assert_eq!(cache.get("(0|1)/2"), Some(entry));
        assert_eq!((counters.hits(), counters.misses()), (1, 1));

        cache.insert("0".to_owned(), entry);
        cache.insert("1".to_owned(), entry);
        assert_eq!(cache.get("(0|1)/2"), None, "LRU evicted at capacity 2");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn updates_replace_in_place() {
        let cache = ShardedLruCache::new(8, Arc::new(CacheCounters::default()));
        let p = path(&[3, 4, 5]);
        cache.insert(p, 1.0);
        cache.insert(p, 9.0);
        assert_eq!(cache.get(&p), Some(9.0));
        assert_eq!(cache.len(), 1);
    }
}
