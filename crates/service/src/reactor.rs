//! A minimal readiness reactor over `poll(2)`, std-only.
//!
//! The event-loop server ([`crate::server::Server`]) multiplexes every
//! connection over non-blocking sockets; this module supplies the one
//! primitive std lacks — *readiness*: "which of these descriptors can
//! make progress right now?". It is deliberately shaped like the
//! register/modify/wait surface of `mio`-style reactors, behind the
//! [`ReadinessBackend`] trait, so an `epoll(7)` or io_uring backend can
//! drop in later without touching the shard loop. The default
//! [`PollBackend`] rebuilds a `pollfd` array per wait — `poll(2)` is
//! `O(n)` in kernel anyway, and a shard watches at most a few hundred
//! descriptors.
//!
//! The compat environment has no `libc` crate, so the handful of
//! syscalls (`poll`, `pipe`, `read`, `write`, `close`, `fcntl`) are
//! bound directly — the same idiom as the `signal(2)` binding the
//! SIGINT handler has always used.

#![cfg(unix)]

use std::collections::HashMap;
use std::io;
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Interest in read readiness.
pub const READABLE: u8 = 0b01;
/// Interest in write readiness.
pub const WRITABLE: u8 = 0b10;

/// One readiness event delivered by [`ReadinessBackend::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the descriptor was registered under.
    pub token: usize,
    /// Reading will not block (includes EOF — a read returning 0).
    pub readable: bool,
    /// Writing will not block.
    pub writable: bool,
    /// The peer hung up or the descriptor errored; the owner should
    /// drain what is readable and then drop the connection.
    pub hangup: bool,
}

/// The readiness surface the event-loop shards are written against.
///
/// [`PollBackend`] is the std-only default; an epoll or io_uring
/// implementation only has to honour the same register/modify/wait
/// contract (level-triggered: a still-ready descriptor is reported
/// again on the next wait).
pub trait ReadinessBackend {
    /// Starts watching `fd` under `token` for `interest`
    /// ([`READABLE`] | [`WRITABLE`]).
    fn register(&mut self, fd: RawFd, token: usize, interest: u8);
    /// Replaces `fd`'s interest set (registering it if unknown).
    fn modify(&mut self, fd: RawFd, token: usize, interest: u8);
    /// Stops watching `fd`.
    fn deregister(&mut self, fd: RawFd);
    /// Blocks until at least one watched descriptor is ready (or the
    /// timeout elapses; `None` blocks indefinitely), appending events
    /// to `events` (cleared first).
    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()>;
}

// --------------------------------------------------------------- syscalls

#[repr(C)]
#[derive(Debug)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: core::ffi::c_ulong, timeout: i32) -> i32;
    fn pipe(fds: *mut i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
}

const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
#[cfg(target_os = "linux")]
const O_NONBLOCK: i32 = 0o4000;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: i32 = 0x0004;

fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: fcntl on an owned descriptor with valid F_GETFL/F_SETFL.
    unsafe {
        let flags = fcntl(fd, F_GETFL, 0);
        if flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

// ------------------------------------------------------------ PollBackend

/// The std-only default backend: interest map + one `poll(2)` per wait.
#[derive(Debug, Default)]
pub struct PollBackend {
    interest: HashMap<RawFd, (usize, u8)>,
    // Scratch pollfd array, reused across waits.
    fds: Vec<PollFd>,
}

impl PollBackend {
    /// An empty backend watching nothing.
    pub fn new() -> PollBackend {
        PollBackend::default()
    }
}

impl ReadinessBackend for PollBackend {
    fn register(&mut self, fd: RawFd, token: usize, interest: u8) {
        self.interest.insert(fd, (token, interest));
    }

    fn modify(&mut self, fd: RawFd, token: usize, interest: u8) {
        self.interest.insert(fd, (token, interest));
    }

    fn deregister(&mut self, fd: RawFd) {
        self.interest.remove(&fd);
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        self.fds.clear();
        let mut tokens = Vec::with_capacity(self.interest.len());
        for (&fd, &(token, interest)) in &self.interest {
            let mut mask = 0i16;
            if interest & READABLE != 0 {
                mask |= POLLIN;
            }
            if interest & WRITABLE != 0 {
                mask |= POLLOUT;
            }
            if mask == 0 {
                continue;
            }
            self.fds.push(PollFd {
                fd,
                events: mask,
                revents: 0,
            });
            tokens.push(token);
        }
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        // SAFETY: fds points at an initialized slice for the duration of
        // the call; the kernel only writes revents.
        let n = unsafe {
            poll(
                self.fds.as_mut_ptr(),
                self.fds.len() as core::ffi::c_ulong,
                timeout_ms,
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(()); // spurious wakeup; caller re-waits
            }
            return Err(e);
        }
        for (slot, &token) in self.fds.iter().zip(&tokens) {
            let r = slot.revents;
            if r == 0 {
                continue;
            }
            events.push(Event {
                token,
                readable: r & (POLLIN | POLLHUP | POLLERR) != 0,
                writable: r & POLLOUT != 0,
                hangup: r & (POLLHUP | POLLERR | POLLNVAL) != 0,
            });
        }
        Ok(())
    }
}

// -------------------------------------------------------------- WakePipe

/// A self-pipe: any thread can [`WakePipe::wake`] a shard blocked in
/// [`ReadinessBackend::wait`], immediately and without locks. Both ends
/// are non-blocking; wakes coalesce (a full pipe already guarantees a
/// pending wakeup).
#[derive(Debug)]
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
    // Collapses redundant writes: one pending byte is enough.
    armed: AtomicBool,
}

impl WakePipe {
    /// A fresh pipe with both ends non-blocking.
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        // SAFETY: pipe writes two descriptors into the array.
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        let (read_fd, write_fd) = (fds[0], fds[1]);
        set_nonblocking(read_fd)?;
        set_nonblocking(write_fd)?;
        Ok(WakePipe {
            read_fd,
            write_fd,
            armed: AtomicBool::new(false),
        })
    }

    /// The readable end, for registering with a backend.
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Wakes the owner: writes one byte unless a wake is already
    /// pending. Safe from any thread, including signal-free contexts.
    pub fn wake(&self) {
        if self.armed.swap(true, Ordering::AcqRel) {
            return; // a byte is already in flight
        }
        // SAFETY: write of one byte from a valid buffer; EAGAIN (pipe
        // full) still leaves a pending byte, which is all we need.
        unsafe {
            let byte = 1u8;
            let _ = write(self.write_fd, &byte, 1);
        }
    }

    /// Drains pending wake bytes; call after the read end polls ready.
    pub fn drain(&self) {
        self.armed.store(false, Ordering::Release);
        let mut buf = [0u8; 64];
        // SAFETY: read into a stack buffer; loops until EAGAIN/empty.
        unsafe { while read(self.read_fd, buf.as_mut_ptr(), buf.len()) > 0 {} }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        // SAFETY: closing descriptors this struct owns.
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

// SAFETY: the pipe descriptors are valid for the struct's lifetime and
// write(2)/read(2) on pipes are thread-safe.
unsafe impl Send for WakePipe {}
// SAFETY: shared use is only ever concurrent `write(2)` calls on the
// write end (wakers) racing one reader; the kernel serializes both.
unsafe impl Sync for WakePipe {}

// ---------------------------------------------------------------- rlimit

/// Raises the process's soft open-file limit to at least `min`
/// descriptors (capped by the hard limit), returning the resulting soft
/// limit. Connection-scale tests and benches open 1000+ sockets in one
/// process; the common 1024-descriptor default would wedge them.
pub fn raise_nofile_limit(min: u64) -> u64 {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }
    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: i32 = 7;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_NOFILE: i32 = 8;
    let mut limit = RLimit { cur: 0, max: 0 };
    // SAFETY: getrlimit fills the struct; setrlimit reads it.
    unsafe {
        if getrlimit(RLIMIT_NOFILE, &mut limit) != 0 {
            return min;
        }
        if limit.cur >= min {
            return limit.cur;
        }
        limit.cur = min.min(limit.max);
        let _ = setrlimit(RLIMIT_NOFILE, &limit);
        if getrlimit(RLIMIT_NOFILE, &mut limit) != 0 {
            return min;
        }
    }
    limit.cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn wake_pipe_delivers_and_coalesces() {
        let pipe = WakePipe::new().unwrap();
        let mut backend = PollBackend::new();
        backend.register(pipe.read_fd(), 7, READABLE);
        let mut events = Vec::new();

        // No wake: times out with no events.
        backend
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        // Many wakes coalesce into one readable event; drain resets.
        for _ in 0..100 {
            pipe.wake();
        }
        backend
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        pipe.drain();
        backend
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        // Wake works again after a drain.
        pipe.wake();
        backend
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn wake_crosses_threads() {
        let pipe = std::sync::Arc::new(WakePipe::new().unwrap());
        let remote = std::sync::Arc::clone(&pipe);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            remote.wake();
        });
        let mut backend = PollBackend::new();
        backend.register(pipe.read_fd(), 0, READABLE);
        let mut events = Vec::new();
        backend
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        handle.join().unwrap();
    }

    #[test]
    fn poll_backend_reports_socket_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let mut backend = PollBackend::new();
        let fd = server_side.as_raw_fd();
        backend.register(fd, 1, READABLE);
        let mut events = Vec::new();

        // Nothing sent yet: no readable event.
        backend
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 1 || !e.readable));

        client.write_all(b"hello").unwrap();
        backend
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        // Write interest on an idle socket is immediately ready.
        backend.modify(fd, 1, READABLE | WRITABLE);
        backend
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));

        // Peer hangup surfaces as readable (EOF) and hangup.
        drop(client);
        backend
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        backend.deregister(fd);
        backend
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn raise_nofile_limit_is_monotone() {
        let current = raise_nofile_limit(64);
        assert!(current >= 64);
        // Asking again for less never lowers it.
        assert!(raise_nofile_limit(1) >= current.min(64));
    }
}
