//! The readiness-driven event-loop serving backend (unix).
//!
//! Connections are multiplexed across a fixed set of **shards**, each a
//! thread blocking in [`ReadinessBackend::wait`] over its connections
//! plus a [`WakePipe`]. Every connection is a small state machine: a
//! read buffer reassembling NDJSON lines across partial reads (the same
//! UTF-8-safe framing the thread pool used), inline dispatch for cheap
//! ops, and a write buffer with partial-write continuation. CPU-heavy
//! ops (`rebuild`, `load`, `delta`, large `estimate`/`estimate_expr`
//! batches) are handed to a few **dispatch workers** over a bounded
//! queue so the loop never blocks; their responses ride back to the
//! owning shard through its inbox + wake pipe. A connection with a
//! dispatched request in flight pauses parsing until the response is
//! queued, which both preserves response ordering and applies natural
//! per-connection backpressure.
//!
//! Admission control sits on top: the acceptor refuses connections past
//! `max_connections` with a structured `overloaded` line (`reason =
//! "capacity"`), each request is charged against a per-peer-address
//! in-flight quota (`reason = "quota"`), and expensive ops are shed
//! (`reason = "shed"`) while the dispatch queue or the recent p99
//! latency sits above threshold. All outcomes flow through
//! [`ServiceMetrics`]: `phe_connections_open`,
//! `phe_admission_total{outcome=admitted|refused|shed}`, and
//! `phe_dispatch_queue_depth`.

#![cfg(unix)]

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::maintenance::MaintenanceCoordinator;
use crate::metrics::ServiceMetrics;
use crate::protocol::{error_response, overloaded_response, MaintenanceAction, Request};
use crate::reactor::{
    raise_nofile_limit, PollBackend, ReadinessBackend, WakePipe, READABLE, WRITABLE,
};
use crate::registry::EstimatorRegistry;
use crate::server::{handle_request, ServerConfig, MAX_REQUEST_BYTES};

/// Token the shard's own wake pipe is registered under; connection
/// tokens start at 1.
const WAKE_TOKEN: usize = 0;

/// Pending unwritten response bytes past this mark pause reading from
/// the connection: a peer that sends requests but never drains responses
/// accumulates at most one buffer of backlog, not unbounded memory.
const WRITE_HIGH_WATER: usize = 4 * 1024 * 1024;

/// An `estimate` batch larger than this runs on a dispatch worker
/// instead of the loop thread.
const INLINE_MAX_PATHS: usize = 4096;

/// An `estimate_expr` batch larger than this (or any explain request,
/// which captures span trees) runs on a dispatch worker.
const INLINE_MAX_EXPRS: usize = 16;

/// How often the p99 shed trigger re-evaluates the latency window.
const SHED_EVAL_INTERVAL_MS: u64 = 100;

// -------------------------------------------------------------- admission

/// Ring of recent request latencies (lock-free, overwriting) feeding the
/// p99 shed trigger.
struct LatencyWindow {
    /// Microseconds + 1 so 0 can mean "slot never written".
    slots: Vec<AtomicU64>,
    next: AtomicUsize,
}

impl LatencyWindow {
    fn new(capacity: usize) -> LatencyWindow {
        LatencyWindow {
            slots: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            next: AtomicUsize::new(0),
        }
    }

    fn record(&self, latency: Duration) {
        // ORDERING: the cursor RMW only needs to hand out distinct slots;
        // the sample store publishes one self-contained u64 that p99()
        // reads atomically — no happens-before edge is needed for an
        // approximate sliding window.
        let index = self.next.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        let micros = (latency.as_micros() as u64).saturating_add(1);
        // ORDERING: see above — self-contained sample, no publication.
        self.slots[index].store(micros, Ordering::Relaxed);
    }

    /// The 99th-percentile latency over the filled slots, if any.
    fn p99(&self) -> Option<Duration> {
        let mut filled: Vec<u64> = self
            .slots
            .iter()
            // ORDERING: each slot is a self-contained sample; a stale or
            // torn-by-a-lap view only perturbs an already-approximate p99.
            .map(|slot| slot.load(Ordering::Relaxed))
            .filter(|&v| v > 0)
            .collect();
        if filled.is_empty() {
            return None;
        }
        filled.sort_unstable();
        let index = (filled.len() * 99 / 100).min(filled.len() - 1);
        Some(Duration::from_micros(filled[index] - 1))
    }
}

/// Shared admission state: per-peer in-flight quotas and the load-shed
/// triggers. One instance per server, shared by every shard and worker.
struct Admission {
    max_inflight_per_client: usize,
    shed_queue_depth: usize,
    shed_p99: Option<Duration>,
    inflight: Mutex<HashMap<IpAddr, usize>>,
    window: LatencyWindow,
    /// Cached outcome of the last p99 evaluation.
    shed_latency: AtomicBool,
    /// Milliseconds since `started` of the last p99 evaluation; a CAS on
    /// it elects one thread per interval to re-sort the window.
    last_eval_ms: AtomicU64,
    started: Instant,
    metrics: Arc<ServiceMetrics>,
}

impl Admission {
    fn new(config: &ServerConfig, metrics: Arc<ServiceMetrics>) -> Admission {
        Admission {
            max_inflight_per_client: config.max_inflight_per_client.max(1),
            shed_queue_depth: config.shed_queue_depth.max(1),
            shed_p99: config.shed_p99,
            inflight: Mutex::new(HashMap::new()),
            window: LatencyWindow::new(1024),
            shed_latency: AtomicBool::new(false),
            last_eval_ms: AtomicU64::new(0),
            started: Instant::now(),
            metrics,
        }
    }

    /// Charges one in-flight request against `peer`'s quota. `None`
    /// means the quota is exhausted; the returned ticket releases the
    /// charge on drop.
    fn try_admit(self: &Arc<Self>, peer: IpAddr) -> Option<Ticket> {
        let mut inflight = self.inflight.lock();
        let count = inflight.entry(peer).or_insert(0);
        if *count >= self.max_inflight_per_client {
            return None;
        }
        *count += 1;
        drop(inflight);
        Some(Ticket {
            peer,
            admission: Arc::clone(self),
        })
    }

    fn observe_latency(&self, latency: Duration) {
        self.window.record(latency);
    }

    /// Whether expensive ops should currently be refused: the dispatch
    /// queue is past its threshold, or the recent p99 latency is past
    /// the configured ceiling (re-evaluated at most every
    /// [`SHED_EVAL_INTERVAL_MS`], so recovery is automatic once the
    /// window refills with fast requests).
    fn should_shed(&self) -> bool {
        if self.metrics.dispatch_depth() > self.shed_queue_depth as u64 {
            return true;
        }
        let Some(threshold) = self.shed_p99 else {
            return false;
        };
        let now_ms = self.started.elapsed().as_millis() as u64;
        // ORDERING: the timestamp CAS is an election, not a publication —
        // it only picks one thread per interval to re-evaluate; the
        // evaluated verdict itself travels through `shed_latency` with
        // release/acquire below, so the election needs no ordering.
        let last = self.last_eval_ms.load(Ordering::Relaxed);
        if now_ms.saturating_sub(last) >= SHED_EVAL_INTERVAL_MS
            && self
                .last_eval_ms
                // ORDERING: see above — election only, verdict travels
                // through `shed_latency` release/acquire.
                .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            let over = self.window.p99().is_some_and(|p99| p99 > threshold);
            self.shed_latency.store(over, Ordering::Release);
        }
        self.shed_latency.load(Ordering::Acquire)
    }
}

/// RAII in-flight charge; dropping it releases one unit of `peer`'s
/// quota (wherever the request ends up completing).
struct Ticket {
    peer: IpAddr,
    admission: Arc<Admission>,
}

impl Drop for Ticket {
    fn drop(&mut self) {
        let mut inflight = self.admission.inflight.lock();
        if let Some(count) = inflight.get_mut(&self.peer) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                inflight.remove(&self.peer);
            }
        }
    }
}

// ----------------------------------------------------------- plumbing

/// What the acceptor and the dispatch workers send a shard.
enum ShardMsg {
    /// A freshly accepted connection to adopt.
    Conn(TcpStream, SocketAddr),
    /// A dispatch worker finished connection `conn`'s request.
    Done { conn: usize, response: String },
}

/// A shard's external address: its inbox plus the pipe that interrupts
/// its `wait`.
struct ShardPort {
    inbox: Sender<ShardMsg>,
    wake: Arc<WakePipe>,
}

/// One CPU-heavy request in flight to the dispatch workers.
struct Job {
    shard: usize,
    conn: usize,
    request: Request,
    ticket: Ticket,
    t0: Instant,
}

/// Everything a shard loop needs besides its own receiver and pipe.
struct ShardCtx {
    shard: usize,
    registry: Arc<EstimatorRegistry>,
    metrics: Arc<ServiceMetrics>,
    maintenance: Option<Arc<MaintenanceCoordinator>>,
    allow_load: bool,
    admission: Arc<Admission>,
    dispatch_tx: SyncSender<Job>,
    stop: Arc<AtomicBool>,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    peer: SocketAddr,
    /// Unparsed request bytes; lines are carved off the front.
    buf: Vec<u8>,
    /// Index into `buf` already scanned for a newline, so a large line
    /// arriving in many chunks is not rescanned from the start each time.
    scanned: usize,
    /// Response bytes not yet accepted by the socket.
    out: Vec<u8>,
    /// How much of `out` has been written.
    out_pos: usize,
    /// Requests dispatched to workers and not yet answered; parsing
    /// pauses while nonzero to preserve response ordering.
    waiting: usize,
    /// The peer half-closed (EOF seen); drain, answer, flush, then drop.
    read_closed: bool,
    /// Unrecoverable I/O error; drop as soon as noticed.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, peer: SocketAddr) -> Conn {
        Conn {
            stream,
            peer,
            buf: Vec::new(),
            scanned: 0,
            out: Vec::new(),
            out_pos: 0,
            waiting: 0,
            read_closed: false,
            dead: false,
        }
    }

    fn flushed(&self) -> bool {
        self.out_pos == self.out.len()
    }

    fn push_response(&mut self, response: &str) {
        self.out.extend_from_slice(response.as_bytes());
        self.out.push(b'\n');
    }

    /// Writes as much of `out` as the socket accepts right now.
    fn flush(&mut self) {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.out.clear();
        self.out_pos = 0;
    }

    /// Reads whatever the socket has ready (bounded per call; the
    /// level-triggered backend reports again if more remains).
    fn fill(&mut self) {
        let mut chunk = [0u8; 64 * 1024];
        for _ in 0..16 {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.read_closed = true;
                    return;
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }
}

/// Ops worth running on a dispatch worker instead of the loop thread:
/// everything that reads the filesystem or rebuilds state, plus
/// estimation batches big enough to stall the shard.
fn is_heavy(request: &Request) -> bool {
    match request {
        Request::Rebuild { .. } | Request::Load { .. } | Request::Delta { .. } => true,
        Request::Maintenance { action, .. } => !matches!(action, MaintenanceAction::Status),
        Request::Estimate { paths, .. } => paths.len() > INLINE_MAX_PATHS,
        Request::EstimateExpr { exprs, explain, .. } => *explain || exprs.len() > INLINE_MAX_EXPRS,
        Request::Ping | Request::List | Request::Metrics { .. } => false,
    }
}

/// Ops the shedder may refuse under pressure: the expensive ones.
/// `ping`, `list`, `metrics`, and maintenance status stay answerable so
/// operators can observe an overloaded server.
fn is_sheddable(request: &Request) -> bool {
    match request {
        Request::Estimate { .. }
        | Request::EstimateExpr { .. }
        | Request::Rebuild { .. }
        | Request::Load { .. }
        | Request::Delta { .. } => true,
        Request::Maintenance { action, .. } => !matches!(action, MaintenanceAction::Status),
        Request::Ping | Request::List | Request::Metrics { .. } => false,
    }
}

// ------------------------------------------------------------ the server

/// A running event-loop server; dropping it does **not** stop the
/// threads — call [`EventLoopServer::shutdown`].
pub struct EventLoopServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor_wake: Arc<WakePipe>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    ports: Arc<Vec<ShardPort>>,
    shards: Vec<std::thread::JoinHandle<()>>,
    dispatchers: Vec<std::thread::JoinHandle<()>>,
}

impl EventLoopServer {
    /// Binds and starts the acceptor, shard, and dispatch threads.
    /// Returns once the listener is live, so `local_addr` is immediately
    /// connectable (ephemeral ports included).
    pub fn start_with(
        registry: Arc<EstimatorRegistry>,
        metrics: Arc<ServiceMetrics>,
        maintenance: Option<Arc<MaintenanceCoordinator>>,
        config: ServerConfig,
    ) -> std::io::Result<EventLoopServer> {
        // The whole point is thousands of sockets in one process; the
        // common 1024-descriptor soft default would wedge at ~1000.
        raise_nofile_limit(config.max_connections as u64 + 64);
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let admission = Arc::new(Admission::new(&config, Arc::clone(&metrics)));

        let shard_count = config.effective_shards();
        let worker_count = config.workers.max(1);
        // Bounded dispatch queue: a full queue is itself a shed signal,
        // so cap it just past the depth threshold.
        let queue_cap = (config.shed_queue_depth.max(1) + worker_count * 2).max(16);
        let (dispatch_tx, dispatch_rx) = mpsc::sync_channel::<Job>(queue_cap);
        let dispatch_rx = Arc::new(Mutex::new(dispatch_rx));

        let mut ports = Vec::with_capacity(shard_count);
        let mut inboxes = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let (inbox_tx, inbox_rx) = mpsc::channel::<ShardMsg>();
            let wake = Arc::new(WakePipe::new()?);
            ports.push(ShardPort {
                inbox: inbox_tx,
                wake: Arc::clone(&wake),
            });
            inboxes.push((inbox_rx, wake));
        }
        let ports = Arc::new(ports);

        let mut shards = Vec::with_capacity(shard_count);
        for (shard, (inbox, wake)) in inboxes.into_iter().enumerate() {
            let ctx = ShardCtx {
                shard,
                registry: Arc::clone(&registry),
                metrics: Arc::clone(&metrics),
                maintenance: maintenance.clone(),
                allow_load: config.allow_load,
                admission: Arc::clone(&admission),
                dispatch_tx: dispatch_tx.clone(),
                stop: Arc::clone(&stop),
            };
            shards.push(std::thread::spawn(move || run_shard(ctx, inbox, wake)));
        }
        // The shards hold the only senders now: when they exit at
        // shutdown, the queue disconnects and the workers drain out.
        drop(dispatch_tx);

        let mut dispatchers = Vec::with_capacity(worker_count);
        for _ in 0..worker_count {
            let dispatch_rx = Arc::clone(&dispatch_rx);
            let ports = Arc::clone(&ports);
            let registry = Arc::clone(&registry);
            let metrics = Arc::clone(&metrics);
            let maintenance = maintenance.clone();
            let admission = Arc::clone(&admission);
            let allow_load = config.allow_load;
            dispatchers.push(std::thread::spawn(move || loop {
                // Hold the receiver lock only to pull one job.
                let job = { dispatch_rx.lock().recv() };
                let Ok(job) = job else { return };
                let Job {
                    shard,
                    conn,
                    request,
                    ticket,
                    t0,
                } = job;
                let (response, paths, ok) = handle_request(
                    request,
                    &registry,
                    &metrics,
                    maintenance.as_ref(),
                    allow_load,
                );
                metrics.dispatch_dequeued();
                let elapsed = t0.elapsed();
                metrics.record_request(paths, elapsed, ok);
                admission.observe_latency(elapsed);
                drop(ticket);
                let port = &ports[shard];
                if port.inbox.send(ShardMsg::Done { conn, response }).is_ok() {
                    port.wake.wake();
                }
            }));
        }

        let acceptor_wake = Arc::new(WakePipe::new()?);
        let acceptor = {
            let stop = Arc::clone(&stop);
            let wake = Arc::clone(&acceptor_wake);
            let ports = Arc::clone(&ports);
            let metrics = Arc::clone(&metrics);
            let max_connections = config.max_connections.max(1);
            std::thread::spawn(move || {
                run_acceptor(listener, stop, wake, ports, metrics, max_connections)
            })
        };

        Ok(EventLoopServer {
            local_addr,
            stop,
            acceptor_wake,
            acceptor: Some(acceptor),
            ports,
            shards,
            dispatchers,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Signals shutdown and joins every thread. The wake pipes interrupt
    /// the acceptor and every shard immediately — idle connections add
    /// no latency — and the shards' exit disconnects the dispatch queue,
    /// draining the workers.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        self.acceptor_wake.wake();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for port in self.ports.iter() {
            port.wake.wake();
        }
        for shard in self.shards.drain(..) {
            let _ = shard.join();
        }
        for dispatcher in self.dispatchers.drain(..) {
            let _ = dispatcher.join();
        }
    }
}

// ------------------------------------------------------------- acceptor

fn run_acceptor(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    wake: Arc<WakePipe>,
    ports: Arc<Vec<ShardPort>>,
    metrics: Arc<ServiceMetrics>,
    max_connections: usize,
) {
    let mut backend = PollBackend::new();
    backend.register(wake.read_fd(), 0, READABLE);
    backend.register(listener.as_raw_fd(), 1, READABLE);
    let mut events = Vec::new();
    let mut backoff = Duration::from_millis(1);
    let mut next_shard = 0usize;
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                backoff = Duration::from_millis(1);
                if metrics.open_connections() >= max_connections as u64 {
                    metrics.record_refused();
                    refuse_at_capacity(stream, max_connections);
                    continue;
                }
                metrics.connection_opened();
                // Round-robin: connection counts stay balanced without
                // shared state, and any shard can host any connection.
                let port = &ports[next_shard];
                next_shard = (next_shard + 1) % ports.len();
                if port.inbox.send(ShardMsg::Conn(stream, peer)).is_ok() {
                    port.wake.wake();
                } else {
                    metrics.connection_closed();
                    return; // shard gone: shutting down
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Block until the listener has a connection or the wake
                // pipe interrupts for shutdown — no accept polling loop.
                let _ = backend.wait(&mut events, Some(Duration::from_millis(500)));
                if events.iter().any(|event| event.token == 0) {
                    wake.drain();
                }
            }
            Err(_) => {
                // Transient accept failures (EMFILE, aborted handshakes):
                // bounded exponential backoff, still interruptible by the
                // wake pipe. The listener is left out of this wait — it
                // may well still be "readable" with the same doomed
                // connection at the head of its queue.
                backend.deregister(listener.as_raw_fd());
                let _ = backend.wait(&mut events, Some(backoff));
                backend.register(listener.as_raw_fd(), 1, READABLE);
                if events.iter().any(|event| event.token == 0) {
                    wake.drain();
                }
                backoff = (backoff * 2).min(Duration::from_millis(250));
            }
        }
    }
}

/// Tells a refused peer why before hanging up: one structured
/// `overloaded` line (`reason = "capacity"`), then EOF.
fn refuse_at_capacity(mut stream: TcpStream, max_connections: usize) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = stream.set_nodelay(true);
    let line = overloaded_response(
        "capacity",
        &format!("server at its {max_connections}-connection capacity"),
    );
    let _ = stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"));
}

// ---------------------------------------------------------------- shards

fn run_shard(ctx: ShardCtx, inbox: Receiver<ShardMsg>, wake: Arc<WakePipe>) {
    let mut backend = PollBackend::new();
    backend.register(wake.read_fd(), WAKE_TOKEN, READABLE);
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_token = WAKE_TOKEN + 1;
    let mut events = Vec::new();
    loop {
        if ctx.stop.load(Ordering::Acquire) {
            break;
        }
        // 1. Adopt new connections and fold in finished dispatches.
        while let Ok(msg) = inbox.try_recv() {
            match msg {
                ShardMsg::Conn(stream, peer) => {
                    if stream.set_nonblocking(true).is_err() {
                        ctx.metrics.connection_closed();
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = next_token;
                    next_token += 1;
                    conns.insert(token, Conn::new(stream, peer));
                }
                ShardMsg::Done { conn, response } => {
                    // The connection may have died while the worker ran;
                    // its response is then undeliverable and dropped.
                    if let Some(c) = conns.get_mut(&conn) {
                        c.waiting -= 1;
                        c.push_response(&response);
                        // Parsing was paused on the in-flight request;
                        // resume on whatever is already buffered.
                        process_lines(&ctx, conn, c);
                    }
                }
            }
        }
        // 2. Flush, reap finished connections, refresh interest sets.
        conns.retain(|&token, c| {
            if !c.dead {
                c.flush();
            }
            let finished = c.read_closed && c.waiting == 0 && c.buf.is_empty() && c.flushed();
            if c.dead || finished {
                backend.deregister(c.stream.as_raw_fd());
                ctx.metrics.connection_closed();
                return false;
            }
            let mut interest = 0u8;
            if !c.read_closed && c.waiting == 0 && c.out.len() - c.out_pos < WRITE_HIGH_WATER {
                interest |= READABLE;
            }
            if !c.flushed() {
                interest |= WRITABLE;
            }
            backend.modify(c.stream.as_raw_fd(), token, interest);
            true
        });
        // 3. Sleep until something can make progress. The timeout is a
        // safety net only; shutdown and dispatch completion arrive
        // through the wake pipe immediately.
        if backend
            .wait(&mut events, Some(Duration::from_millis(500)))
            .is_err()
        {
            break;
        }
        // 4. Drive the ready connections' state machines.
        for event in &events {
            if event.token == WAKE_TOKEN {
                wake.drain();
                continue;
            }
            let Some(c) = conns.get_mut(&event.token) else {
                continue;
            };
            if event.readable {
                c.fill();
                process_lines(&ctx, event.token, c);
            }
            if event.writable {
                c.flush();
            }
            if event.hangup && !event.readable {
                c.dead = true;
            }
        }
    }
    // Shutdown: every surviving connection closes with the shard.
    for _ in conns.values() {
        ctx.metrics.connection_closed();
    }
}

/// Carves complete lines off `c.buf` and answers them, pausing whenever
/// a request goes to the dispatch workers (`waiting > 0`) so responses
/// keep arriving in request order.
fn process_lines(ctx: &ShardCtx, token: usize, c: &mut Conn) {
    while !c.dead && c.waiting == 0 {
        let newline = c.buf[c.scanned..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|i| c.scanned + i);
        let line: Vec<u8> = match newline {
            Some(end) => {
                c.scanned = 0;
                c.buf.drain(..=end).collect()
            }
            None => {
                c.scanned = c.buf.len();
                if c.buf.len() > MAX_REQUEST_BYTES {
                    // Same cap the thread pool enforced with `take`.
                    ctx.metrics.record_request(0, Duration::ZERO, false);
                    c.push_response(&error_response("request line too large"));
                    c.buf.clear();
                    c.scanned = 0;
                    c.read_closed = true;
                    return;
                }
                if c.read_closed && !c.buf.is_empty() {
                    // EOF with a trailing unterminated fragment: answer
                    // it, like the thread pool always has.
                    c.scanned = 0;
                    std::mem::take(&mut c.buf)
                } else {
                    return;
                }
            }
        };
        let text = String::from_utf8_lossy(&line);
        let trimmed = text.trim();
        if trimmed.is_empty() {
            continue;
        }
        handle_one(ctx, token, c, trimmed);
    }
}

/// Admission-checks and answers (or dispatches) one request line.
fn handle_one(ctx: &ShardCtx, token: usize, c: &mut Conn, line: &str) {
    let t0 = Instant::now();
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(e) => {
            ctx.metrics.record_request(0, t0.elapsed(), false);
            c.push_response(&error_response(&e.to_string()));
            return;
        }
    };
    if is_sheddable(&request) && ctx.admission.should_shed() {
        ctx.metrics.record_shed();
        ctx.metrics.record_request(0, t0.elapsed(), false);
        c.push_response(&overloaded_response(
            "shed",
            "server overloaded; retry after backing off",
        ));
        return;
    }
    let Some(ticket) = ctx.admission.try_admit(c.peer.ip()) else {
        ctx.metrics.record_refused();
        ctx.metrics.record_request(0, t0.elapsed(), false);
        c.push_response(&overloaded_response(
            "quota",
            "per-client in-flight request quota exceeded",
        ));
        return;
    };
    if is_heavy(&request) {
        ctx.metrics.dispatch_enqueued();
        match ctx.dispatch_tx.try_send(Job {
            shard: ctx.shard,
            conn: token,
            request,
            ticket,
            t0,
        }) {
            Ok(()) => {
                ctx.metrics.record_admitted();
                c.waiting += 1;
            }
            Err(TrySendError::Full(job)) => {
                // The queue itself is the overload signal here; the
                // ticket rides in the job and releases on this drop.
                drop(job);
                ctx.metrics.dispatch_dequeued();
                ctx.metrics.record_shed();
                ctx.metrics.record_request(0, t0.elapsed(), false);
                c.push_response(&overloaded_response(
                    "shed",
                    "dispatch queue full; retry after backing off",
                ));
            }
            Err(TrySendError::Disconnected(job)) => {
                drop(job);
                ctx.metrics.dispatch_dequeued();
            }
        }
    } else {
        ctx.metrics.record_admitted();
        let (response, paths, ok) = handle_request(
            request,
            &ctx.registry,
            &ctx.metrics,
            ctx.maintenance.as_ref(),
            ctx.allow_load,
        );
        let elapsed = t0.elapsed();
        ctx.metrics.record_request(paths, elapsed, ok);
        ctx.admission.observe_latency(elapsed);
        drop(ticket);
        c.push_response(&response);
    }
}
