//! A small blocking client for the NDJSON protocol — what `phe query
//! --remote` and the integration tests drive.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use serde_json::Value;

use crate::protocol::{PathStep, Request};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server answered, but not with valid protocol JSON.
    Malformed(String),
    /// The server answered `ok: false`.
    Server(String),
    /// The server refused the request under admission control or load
    /// shedding (`"overloaded": true` in the response); the payload is
    /// the structured reason (`capacity`, `quota`, or `shed`). Retry
    /// after backing off.
    Overloaded(String),
    /// The server refused to queue work at a backpressure cap
    /// (`"backpressure": true`); retry after the queue drains.
    Backpressure(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Malformed(m) => write!(f, "malformed response: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Overloaded(reason) => write!(f, "server overloaded ({reason})"),
            ClientError::Backpressure(m) => write!(f, "server backpressure: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A batched estimate answer.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchEstimates {
    /// The generation that served the whole batch.
    pub version: u64,
    /// One estimate per requested path, in order.
    pub estimates: Vec<f64>,
}

/// One expression's answer within a [`BatchExprEstimates`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExprResult {
    /// Total estimate across the expression's concrete branches.
    pub estimate: f64,
    /// Number of concrete branches (expansion width).
    pub paths: u64,
    /// Branches discarded by follow pruning.
    pub pruned: u64,
    /// Branches discarded for exceeding the statistics' `k`.
    pub truncated: u64,
    /// Whether the expression also denotes the empty path.
    pub matches_empty: bool,
    /// Whether the server answered from its expression cache.
    pub cached: bool,
    /// Per-branch `(path, estimate)` rows (explain requests only).
    pub branches: Option<Vec<(String, f64)>>,
    /// Per-stage timing breakdown `(depth, stage, seconds)` of the
    /// answer's span tree (explain requests only).
    pub stages: Option<Vec<(usize, String, f64)>>,
}

/// A batched expression-estimate answer.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchExprEstimates {
    /// The generation that served the whole batch.
    pub version: u64,
    /// One result per requested expression, in order.
    pub results: Vec<ExprResult>,
}

/// One connection to a serving process.
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServiceClient {
    /// Connects (10 s read timeout — estimation is microseconds; anything
    /// slower means the server is gone).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServiceClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(ServiceClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and reads its response object.
    pub fn roundtrip(&mut self, request: &Request) -> Result<Value, ClientError> {
        let line = request.to_line();
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let value: Value = serde_json::from_str(response.trim())
            .map_err(|e| ClientError::Malformed(e.to_string()))?;
        match value.get("ok") {
            Some(Value::Bool(true)) => Ok(value),
            Some(Value::Bool(false)) => {
                if matches!(value.get("overloaded"), Some(Value::Bool(true))) {
                    return Err(ClientError::Overloaded(
                        value
                            .get("reason")
                            .and_then(Value::as_str)
                            .unwrap_or("unknown")
                            .to_owned(),
                    ));
                }
                if matches!(value.get("backpressure"), Some(Value::Bool(true))) {
                    return Err(ClientError::Backpressure(
                        value
                            .get("error")
                            .and_then(Value::as_str)
                            .unwrap_or("unknown error")
                            .to_owned(),
                    ));
                }
                Err(ClientError::Server(
                    value
                        .get("error")
                        .and_then(Value::as_str)
                        .unwrap_or("unknown error")
                        .to_owned(),
                ))
            }
            _ => Err(ClientError::Malformed(format!(
                "response without ok field: {value:?}"
            ))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.roundtrip(&Request::Ping).map(|_| ())
    }

    /// Batched estimation.
    pub fn estimate(
        &mut self,
        estimator: &str,
        paths: Vec<Vec<PathStep>>,
    ) -> Result<BatchEstimates, ClientError> {
        let response = self.roundtrip(&Request::Estimate {
            estimator: estimator.to_owned(),
            paths,
        })?;
        let version = response
            .get("version")
            .and_then(Value::as_u64)
            .ok_or_else(|| ClientError::Malformed("missing version".into()))?;
        let estimates = response
            .get("estimates")
            .and_then(Value::as_array)
            .ok_or_else(|| ClientError::Malformed("missing estimates".into()))?
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| ClientError::Malformed(format!("non-numeric estimate {v:?}")))
            })
            .collect::<Result<Vec<f64>, _>>()?;
        Ok(BatchEstimates { version, estimates })
    }

    /// Batched regular-path-expression estimation (`estimate_expr` op).
    pub fn estimate_expr(
        &mut self,
        estimator: &str,
        exprs: &[String],
        explain: bool,
    ) -> Result<BatchExprEstimates, ClientError> {
        let response = self.roundtrip(&Request::EstimateExpr {
            estimator: estimator.to_owned(),
            exprs: exprs.to_vec(),
            explain,
        })?;
        let version = response
            .get("version")
            .and_then(Value::as_u64)
            .ok_or_else(|| ClientError::Malformed("missing version".into()))?;
        let results = response
            .get("results")
            .and_then(Value::as_array)
            .ok_or_else(|| ClientError::Malformed("missing results".into()))?
            .iter()
            .map(|row| {
                let number = |field: &str| {
                    row.get(field)
                        .and_then(Value::as_u64)
                        .ok_or_else(|| ClientError::Malformed(format!("missing {field}")))
                };
                let branches = match row.get("branches") {
                    None => None,
                    Some(Value::Array(rows)) => Some(
                        rows.iter()
                            .map(|pair| {
                                let items =
                                    pair.as_array().filter(|a| a.len() == 2).ok_or_else(|| {
                                        ClientError::Malformed("bad branch row".into())
                                    })?;
                                Ok((
                                    items[0]
                                        .as_str()
                                        .ok_or_else(|| {
                                            ClientError::Malformed("bad branch path".into())
                                        })?
                                        .to_owned(),
                                    items[1].as_f64().ok_or_else(|| {
                                        ClientError::Malformed("bad branch estimate".into())
                                    })?,
                                ))
                            })
                            .collect::<Result<Vec<(String, f64)>, ClientError>>()?,
                    ),
                    Some(other) => {
                        return Err(ClientError::Malformed(format!("bad branches: {other:?}")))
                    }
                };
                let stages = match row.get("stages") {
                    None => None,
                    Some(Value::Array(rows)) => Some(
                        rows.iter()
                            .map(|stage| {
                                Ok((
                                    stage.get("depth").and_then(Value::as_u64).ok_or_else(|| {
                                        ClientError::Malformed("bad stage depth".into())
                                    })? as usize,
                                    stage
                                        .get("stage")
                                        .and_then(Value::as_str)
                                        .ok_or_else(|| {
                                            ClientError::Malformed("bad stage name".into())
                                        })?
                                        .to_owned(),
                                    stage.get("seconds").and_then(Value::as_f64).ok_or_else(
                                        || ClientError::Malformed("bad stage seconds".into()),
                                    )?,
                                ))
                            })
                            .collect::<Result<Vec<(usize, String, f64)>, ClientError>>()?,
                    ),
                    Some(other) => {
                        return Err(ClientError::Malformed(format!("bad stages: {other:?}")))
                    }
                };
                Ok(ExprResult {
                    estimate: row
                        .get("estimate")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| ClientError::Malformed("missing estimate".into()))?,
                    paths: number("paths")?,
                    pruned: number("pruned")?,
                    truncated: number("truncated")?,
                    matches_empty: matches!(row.get("matches_empty"), Some(Value::Bool(true))),
                    cached: matches!(row.get("cached"), Some(Value::Bool(true))),
                    branches,
                    stages,
                })
            })
            .collect::<Result<Vec<ExprResult>, ClientError>>()?;
        Ok(BatchExprEstimates { version, results })
    }

    /// Asks the server to load/hot-swap a snapshot file; returns the new
    /// version.
    pub fn load(&mut self, name: &str, snapshot_path: &str) -> Result<u64, ClientError> {
        let response = self.roundtrip(&Request::Load {
            name: name.to_owned(),
            snapshot: snapshot_path.to_owned(),
        })?;
        response
            .get("version")
            .and_then(Value::as_u64)
            .ok_or_else(|| ClientError::Malformed("missing version".into()))
    }

    /// Lists registered estimators as `(name, version, k, description)`.
    pub fn list(&mut self) -> Result<Vec<(String, u64, usize, String)>, ClientError> {
        let response = self.roundtrip(&Request::List)?;
        let entries = response
            .get("estimators")
            .and_then(Value::as_array)
            .ok_or_else(|| ClientError::Malformed("missing estimators".into()))?;
        entries
            .iter()
            .map(|e| {
                Ok((
                    e.get("name")
                        .and_then(Value::as_str)
                        .ok_or_else(|| ClientError::Malformed("entry without name".into()))?
                        .to_owned(),
                    e.get("version").and_then(Value::as_u64).unwrap_or(0),
                    e.get("k").and_then(Value::as_u64).unwrap_or(0) as usize,
                    e.get("description")
                        .and_then(Value::as_str)
                        .unwrap_or("")
                        .to_owned(),
                ))
            })
            .collect()
    }

    /// Fetches the server's metrics object.
    pub fn metrics(&mut self) -> Result<Value, ClientError> {
        let response = self.roundtrip(&Request::Metrics { prometheus: false })?;
        response
            .get("metrics")
            .cloned()
            .ok_or_else(|| ClientError::Malformed("missing metrics".into()))
    }

    /// Fetches the server's metrics in Prometheus text exposition format
    /// — the same surface the `--metrics-addr` scrape endpoint serves.
    pub fn metrics_prometheus(&mut self) -> Result<String, ClientError> {
        let response = self.roundtrip(&Request::Metrics { prometheus: true })?;
        match response.get("exposition") {
            Some(Value::String(text)) => Ok(text.clone()),
            _ => Err(ClientError::Malformed("missing exposition".into())),
        }
    }
}
