//! The servable estimator: a restored label-path histogram plus the
//! name → id resolution a remote caller needs, with panic-free
//! validation on every query path.

use std::collections::HashMap;

use phe_core::snapshot::{EstimatorSnapshot, SnapshotError};
use phe_core::{LabelPath, LabelPathHistogram, PathSelectivityEstimator};
use phe_graph::LabelId;

/// Why an estimate request was rejected. The core estimator panics on
/// contract violations (it trusts the optimizer driving it); a service
/// must instead refuse bad input and keep running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstimateError {
    /// The path had no steps.
    EmptyPath,
    /// The path exceeds the `k` the statistics were built for.
    TooLong {
        /// Requested path length.
        len: usize,
        /// Maximum supported length.
        k: usize,
    },
    /// A label name not present in the statistics.
    UnknownLabel(String),
    /// A numeric label id out of range.
    UnknownLabelId(u16),
}

impl std::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimateError::EmptyPath => write!(f, "empty label path"),
            EstimateError::TooLong { len, k } => {
                write!(f, "path has {len} steps but the statistics cover k <= {k}")
            }
            EstimateError::UnknownLabel(name) => write!(f, "unknown label {name:?}"),
            EstimateError::UnknownLabelId(id) => write!(f, "unknown label id {id}"),
        }
    }
}

impl std::error::Error for EstimateError {}

/// An immutable, thread-safe estimator ready to answer path-selectivity
/// queries: the retained histogram, plus label-name resolution.
///
/// Build one [`from_snapshot`](ServableEstimator::from_snapshot) (the
/// "ship statistics to the serving tier" workflow) or
/// [`from_estimator`](ServableEstimator::from_estimator) (serve straight
/// out of a build). All methods take `&self`; share it via `Arc` — the
/// registry does exactly that.
pub struct ServableEstimator {
    label_names: Vec<String>,
    by_name: HashMap<String, LabelId>,
    k: usize,
    histogram: LabelPathHistogram,
    /// Human-readable provenance, e.g. `"sum-based/v-optimal-greedy β=64"`.
    description: String,
    /// Delta lineage of the statistics being served: the originating full
    /// build's id and how many incremental deltas were folded in since.
    /// `None` for pre-v3 snapshots, which carry no lineage. Operators
    /// watch `applied_deltas` to spot slots drifting far from their last
    /// full build (candidates for a compacting rebuild).
    lineage: Option<(u64, u64)>,
}

impl ServableEstimator {
    /// Restores a servable estimator from a snapshot.
    ///
    /// # Errors
    /// Propagates [`SnapshotError`] for corrupt or unsupported snapshots.
    pub fn from_snapshot(snapshot: &EstimatorSnapshot) -> Result<ServableEstimator, SnapshotError> {
        let histogram = snapshot.restore()?;
        let lineage = snapshot.base_build_id.zip(snapshot.applied_deltas);
        Ok(Self::from_parts(
            snapshot.label_names.clone(),
            snapshot.k,
            histogram,
            format!(
                "{} β={} (restored snapshot)",
                snapshot.ordering.name(),
                snapshot.beta
            ),
            lineage,
        ))
    }

    /// Converts a freshly built estimator, dropping its catalog (the
    /// serving tier retains only the histogram-sized state).
    pub fn from_estimator(estimator: PathSelectivityEstimator) -> ServableEstimator {
        let lineage = Some((estimator.build_id(), estimator.applied_deltas()));
        let (config, label_names, histogram) = estimator.into_serving_parts();
        Self::from_parts(
            label_names,
            config.k,
            histogram,
            format!("{} β={}", config.ordering.name(), config.beta),
            lineage,
        )
    }

    fn from_parts(
        label_names: Vec<String>,
        k: usize,
        histogram: LabelPathHistogram,
        description: String,
        lineage: Option<(u64, u64)>,
    ) -> ServableEstimator {
        let by_name = label_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), LabelId(i as u16)))
            .collect();
        ServableEstimator {
            label_names,
            by_name,
            k,
            histogram,
            description,
            lineage,
        }
    }

    /// The served statistics' delta lineage: `(base_build_id,
    /// applied_deltas)`, or `None` when the source snapshot predates
    /// lineage tracking.
    pub fn lineage(&self) -> Option<(u64, u64)> {
        self.lineage
    }

    /// Maximum supported path length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of labels in the statistics' alphabet.
    pub fn label_count(&self) -> usize {
        self.label_names.len()
    }

    /// Provenance string for listings.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Approximate retained memory of this estimator: histogram buckets +
    /// label-name resolution state. A sparse-pipeline estimator retains no
    /// catalog, so this *is* the serve-time footprint — the number the
    /// `list` op and the shutdown metrics dump report.
    pub fn size_bytes(&self) -> usize {
        let names: usize = self.label_names.iter().map(String::len).sum();
        // Both name tables hold each label name once (by_name clones the
        // strings), plus the id payloads.
        self.histogram.size_bytes()
            + 2 * names
            + self.by_name.len() * std::mem::size_of::<LabelId>()
            + self.description.len()
    }

    /// Resolves a label name.
    pub fn resolve(&self, name: &str) -> Result<LabelId, EstimateError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| EstimateError::UnknownLabel(name.to_owned()))
    }

    /// Validates a raw id sequence into a [`LabelPath`].
    pub fn validate(&self, labels: &[LabelId]) -> Result<LabelPath, EstimateError> {
        if labels.is_empty() {
            return Err(EstimateError::EmptyPath);
        }
        if labels.len() > self.k {
            return Err(EstimateError::TooLong {
                len: labels.len(),
                k: self.k,
            });
        }
        for l in labels {
            if l.index() >= self.label_names.len() {
                return Err(EstimateError::UnknownLabelId(l.0));
            }
        }
        Ok(LabelPath::new(labels))
    }

    /// Estimated selectivity for an already-validated path.
    pub fn estimate(&self, path: &LabelPath) -> f64 {
        self.histogram.estimate(path)
    }

    /// Validates and estimates in one step.
    pub fn estimate_labels(&self, labels: &[LabelId]) -> Result<f64, EstimateError> {
        Ok(self.estimate(&self.validate(labels)?))
    }

    /// Renders a path as slash-joined label names (for explain output).
    pub fn render_path(&self, path: &LabelPath) -> String {
        phe_query::render_path(path, &|l| self.label_names.get(l.index()).cloned())
    }
}

/// The serving tier parses regular path expressions against the
/// statistics' own label table — no graph required.
impl phe_query::LabelResolver for ServableEstimator {
    fn resolve_label(&self, name: &str) -> Option<LabelId> {
        self.by_name.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phe_core::{EstimatorConfig, HistogramKind, OrderingKind};
    use phe_datasets::{erdos_renyi, LabelDistribution};

    fn servable() -> ServableEstimator {
        let g = erdos_renyi(50, 300, 3, LabelDistribution::Zipf { exponent: 1.0 }, 5);
        let est = PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                k: 3,
                beta: 16,
                ordering: OrderingKind::SumBased,
                histogram: HistogramKind::VOptimalGreedy,
                threads: 1,
                retain_catalog: false,
                retain_sparse: false,
            },
        )
        .unwrap();
        ServableEstimator::from_estimator(est)
    }

    #[test]
    fn estimates_match_across_construction_paths() {
        let g = erdos_renyi(50, 300, 3, LabelDistribution::Zipf { exponent: 1.0 }, 5);
        let config = EstimatorConfig {
            k: 3,
            beta: 16,
            ordering: OrderingKind::SumBased,
            histogram: HistogramKind::VOptimalGreedy,
            threads: 1,
            retain_catalog: false,
            retain_sparse: false,
        };
        let est = PathSelectivityEstimator::build(&g, config).unwrap();
        let snapshot = est.snapshot().unwrap();
        let from_snapshot = ServableEstimator::from_snapshot(&snapshot).unwrap();
        let from_est = ServableEstimator::from_estimator(est);
        for l1 in 0..3u16 {
            for l2 in 0..3u16 {
                let path = [LabelId(l1), LabelId(l2)];
                assert_eq!(
                    from_snapshot.estimate_labels(&path).unwrap(),
                    from_est.estimate_labels(&path).unwrap(),
                );
            }
        }
    }

    #[test]
    fn bad_input_is_refused_not_panicking() {
        let s = servable();
        assert_eq!(s.estimate_labels(&[]), Err(EstimateError::EmptyPath));
        assert_eq!(
            s.estimate_labels(&[LabelId(0); 4]),
            Err(EstimateError::TooLong { len: 4, k: 3 })
        );
        assert_eq!(
            s.estimate_labels(&[LabelId(200)]),
            Err(EstimateError::UnknownLabelId(200))
        );
        assert!(matches!(
            s.resolve("no-such-label"),
            Err(EstimateError::UnknownLabel(_))
        ));
    }

    #[test]
    fn resolves_names_to_ids() {
        let s = servable();
        for i in 0..s.label_count() {
            let name = s.label_names[i].clone();
            assert_eq!(s.resolve(&name).unwrap(), LabelId(i as u16));
        }
    }
}
