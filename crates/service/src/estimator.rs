//! The servable estimator: a restored label-path histogram plus the
//! name → id resolution a remote caller needs, with panic-free
//! validation on every query path.

use std::collections::HashMap;

use phe_core::snapshot::{EstimatorSnapshot, SnapshotError};
use phe_core::{LabelPath, LabelPathHistogram, PathSelectivityEstimator};
use phe_graph::{FollowMatrix, LabelId};
use phe_pathenum::SparseCatalog;

/// Why an estimate request was rejected. The core estimator panics on
/// contract violations (it trusts the optimizer driving it); a service
/// must instead refuse bad input and keep running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstimateError {
    /// The path had no steps.
    EmptyPath,
    /// The path exceeds the `k` the statistics were built for.
    TooLong {
        /// Requested path length.
        len: usize,
        /// Maximum supported length.
        k: usize,
    },
    /// A label name not present in the statistics.
    UnknownLabel(String),
    /// A numeric label id out of range.
    UnknownLabelId(u16),
}

impl std::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimateError::EmptyPath => write!(f, "empty label path"),
            EstimateError::TooLong { len, k } => {
                write!(f, "path has {len} steps but the statistics cover k <= {k}")
            }
            EstimateError::UnknownLabel(name) => write!(f, "unknown label {name:?}"),
            EstimateError::UnknownLabelId(id) => write!(f, "unknown label id {id}"),
        }
    }
}

impl std::error::Error for EstimateError {}

/// Where a slot's attached sparse catalog lives, reported by the `list`
/// op so operators can see which estimators serve with their catalog
/// payload disk-resident (mmap) versus heap-resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogResidency {
    /// Whether the block payload borrows a memory-mapped file instead of
    /// owning heap bytes.
    pub mapped: bool,
    /// **Heap** bytes the catalog pins (skip index + struct overhead;
    /// excludes the payload when it is mapped).
    pub heap_bytes: u64,
    /// Encoded payload bytes, wherever they live (disk for mapped
    /// catalogs, heap otherwise).
    pub payload_bytes: u64,
    /// Realized (non-zero) paths in the catalog.
    pub nonzero_paths: u64,
}

/// An immutable, thread-safe estimator ready to answer path-selectivity
/// queries: the retained histogram, plus label-name resolution.
///
/// Build one [`from_snapshot`](ServableEstimator::from_snapshot) (the
/// "ship statistics to the serving tier" workflow) or
/// [`from_estimator`](ServableEstimator::from_estimator) (serve straight
/// out of a build). All methods take `&self`; share it via `Arc` — the
/// registry does exactly that.
pub struct ServableEstimator {
    label_names: Vec<String>,
    by_name: HashMap<String, LabelId>,
    k: usize,
    histogram: LabelPathHistogram,
    /// Human-readable provenance, e.g. `"sum-based/v-optimal-greedy β=64"`.
    description: String,
    /// Delta lineage of the statistics being served: the originating full
    /// build's id and how many incremental deltas were folded in since.
    /// `None` for pre-v3 snapshots, which carry no lineage. Operators
    /// watch `applied_deltas` to spot slots drifting far from their last
    /// full build (candidates for a compacting rebuild).
    lineage: Option<(u64, u64)>,
    /// The label-follow matrix, when the source carried one (a live
    /// build, or a v5 snapshot): what [`ServingEstimator`] expansion
    /// pruning uses, so remote `estimate_expr` discards impossible
    /// branches instead of estimating them at zero.
    ///
    /// [`ServingEstimator`]: crate::registry::ServingEstimator
    follow: Option<FollowMatrix>,
    /// The sparse catalog backing these statistics, attached by
    /// [`crate::server::load_snapshot`] when the snapshot references an
    /// external `.phc` sidecar. For mmap-opened catalogs the block
    /// payload stays disk-resident; only the skip index is heap memory.
    catalog: Option<SparseCatalog>,
}

impl ServableEstimator {
    /// Restores a servable estimator from a snapshot.
    ///
    /// # Errors
    /// Propagates [`SnapshotError`] for corrupt or unsupported snapshots.
    pub fn from_snapshot(snapshot: &EstimatorSnapshot) -> Result<ServableEstimator, SnapshotError> {
        let histogram = snapshot.restore()?;
        let lineage = snapshot.base_build_id.zip(snapshot.applied_deltas);
        let follow = snapshot.restore_follow_matrix()?;
        Ok(Self::from_parts(
            snapshot.label_names.clone(),
            snapshot.k,
            histogram,
            format!(
                "{} β={} (restored snapshot)",
                snapshot.ordering.name(),
                snapshot.beta
            ),
            lineage,
            follow,
        ))
    }

    /// Converts a freshly built estimator, dropping its catalog (the
    /// serving tier retains only the histogram-sized state) but keeping
    /// its follow matrix for expansion pruning.
    pub fn from_estimator(estimator: PathSelectivityEstimator) -> ServableEstimator {
        let lineage = Some((estimator.build_id(), estimator.applied_deltas()));
        let follow = Some(estimator.follow_matrix().clone());
        let (config, label_names, histogram) = estimator.into_serving_parts();
        Self::from_parts(
            label_names,
            config.k,
            histogram,
            format!("{} β={}", config.ordering.name(), config.beta),
            lineage,
            follow,
        )
    }

    fn from_parts(
        label_names: Vec<String>,
        k: usize,
        histogram: LabelPathHistogram,
        description: String,
        lineage: Option<(u64, u64)>,
        follow: Option<FollowMatrix>,
    ) -> ServableEstimator {
        let by_name = label_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), LabelId(i as u16)))
            .collect();
        ServableEstimator {
            label_names,
            by_name,
            k,
            histogram,
            description,
            lineage,
            follow,
            catalog: None,
        }
    }

    /// Attaches a sparse catalog (builder style) — the loader calls this
    /// after memory-mapping a snapshot's external `.phc` sidecar, so the
    /// slot can report its residency. The estimates themselves come from
    /// the histogram either way; the attached catalog only pins the
    /// mapping alive and feeds the `list` op's residency columns.
    pub fn with_catalog(mut self, catalog: SparseCatalog) -> ServableEstimator {
        self.description.push_str(if catalog.runs().is_mapped() {
            ", catalog mmap-resident"
        } else {
            ", catalog heap-resident"
        });
        self.catalog = Some(catalog);
        self
    }

    /// The label-follow matrix these statistics shipped with, when the
    /// source carried one (`None` for pre-v5 snapshots).
    pub fn follow(&self) -> Option<&FollowMatrix> {
        self.follow.as_ref()
    }

    /// Residency of the attached sparse catalog, or `None` when the slot
    /// serves histogram-only (the common case).
    pub fn catalog_residency(&self) -> Option<CatalogResidency> {
        self.catalog.as_ref().map(|catalog| CatalogResidency {
            mapped: catalog.runs().is_mapped(),
            heap_bytes: catalog.runs().size_bytes() as u64,
            payload_bytes: catalog.runs().payload_bytes() as u64,
            nonzero_paths: catalog.nonzero_count() as u64,
        })
    }

    /// The served statistics' delta lineage: `(base_build_id,
    /// applied_deltas)`, or `None` when the source snapshot predates
    /// lineage tracking.
    pub fn lineage(&self) -> Option<(u64, u64)> {
        self.lineage
    }

    /// Maximum supported path length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of labels in the statistics' alphabet.
    pub fn label_count(&self) -> usize {
        self.label_names.len()
    }

    /// Provenance string for listings.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Approximate retained **heap** memory of this estimator: histogram
    /// buckets + label-name resolution state + follow bits + whatever of
    /// an attached catalog is heap-resident (for an mmap-opened catalog
    /// that is just the skip index — the payload stays on disk). This is
    /// the serve-time footprint the `list` op and the shutdown metrics
    /// dump report.
    pub fn size_bytes(&self) -> usize {
        let names: usize = self.label_names.iter().map(String::len).sum();
        // Both name tables hold each label name once (by_name clones the
        // strings), plus the id payloads.
        self.histogram.size_bytes()
            + 2 * names
            + self.by_name.len() * std::mem::size_of::<LabelId>()
            + self.description.len()
            + self.follow.as_ref().map_or(0, |f| f.as_bits().len())
            + self.catalog.as_ref().map_or(0, |c| c.runs().size_bytes())
    }

    /// Resolves a label name.
    pub fn resolve(&self, name: &str) -> Result<LabelId, EstimateError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| EstimateError::UnknownLabel(name.to_owned()))
    }

    /// Validates a raw id sequence into a [`LabelPath`].
    pub fn validate(&self, labels: &[LabelId]) -> Result<LabelPath, EstimateError> {
        if labels.is_empty() {
            return Err(EstimateError::EmptyPath);
        }
        if labels.len() > self.k {
            return Err(EstimateError::TooLong {
                len: labels.len(),
                k: self.k,
            });
        }
        for l in labels {
            if l.index() >= self.label_names.len() {
                return Err(EstimateError::UnknownLabelId(l.0));
            }
        }
        Ok(LabelPath::new(labels))
    }

    /// Estimated selectivity for an already-validated path.
    pub fn estimate(&self, path: &LabelPath) -> f64 {
        self.histogram.estimate(path)
    }

    /// Validates and estimates in one step.
    pub fn estimate_labels(&self, labels: &[LabelId]) -> Result<f64, EstimateError> {
        Ok(self.estimate(&self.validate(labels)?))
    }

    /// Renders a path as slash-joined label names (for explain output).
    pub fn render_path(&self, path: &LabelPath) -> String {
        phe_query::render_path(path, &|l| self.label_names.get(l.index()).cloned())
    }
}

/// The serving tier parses regular path expressions against the
/// statistics' own label table — no graph required.
impl phe_query::LabelResolver for ServableEstimator {
    fn resolve_label(&self, name: &str) -> Option<LabelId> {
        self.by_name.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phe_core::{EstimatorConfig, HistogramKind, OrderingKind};
    use phe_datasets::{erdos_renyi, LabelDistribution};

    fn servable() -> ServableEstimator {
        let g = erdos_renyi(50, 300, 3, LabelDistribution::Zipf { exponent: 1.0 }, 5);
        let est = PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                k: 3,
                beta: 16,
                ordering: OrderingKind::SumBased,
                histogram: HistogramKind::VOptimalGreedy,
                threads: 1,
                retain_catalog: false,
                retain_sparse: false,
            },
        )
        .unwrap();
        ServableEstimator::from_estimator(est)
    }

    #[test]
    fn estimates_match_across_construction_paths() {
        let g = erdos_renyi(50, 300, 3, LabelDistribution::Zipf { exponent: 1.0 }, 5);
        let config = EstimatorConfig {
            k: 3,
            beta: 16,
            ordering: OrderingKind::SumBased,
            histogram: HistogramKind::VOptimalGreedy,
            threads: 1,
            retain_catalog: false,
            retain_sparse: false,
        };
        let est = PathSelectivityEstimator::build(&g, config).unwrap();
        let snapshot = est.snapshot().unwrap();
        let from_snapshot = ServableEstimator::from_snapshot(&snapshot).unwrap();
        let from_est = ServableEstimator::from_estimator(est);
        for l1 in 0..3u16 {
            for l2 in 0..3u16 {
                let path = [LabelId(l1), LabelId(l2)];
                assert_eq!(
                    from_snapshot.estimate_labels(&path).unwrap(),
                    from_est.estimate_labels(&path).unwrap(),
                );
            }
        }
    }

    #[test]
    fn bad_input_is_refused_not_panicking() {
        let s = servable();
        assert_eq!(s.estimate_labels(&[]), Err(EstimateError::EmptyPath));
        assert_eq!(
            s.estimate_labels(&[LabelId(0); 4]),
            Err(EstimateError::TooLong { len: 4, k: 3 })
        );
        assert_eq!(
            s.estimate_labels(&[LabelId(200)]),
            Err(EstimateError::UnknownLabelId(200))
        );
        assert!(matches!(
            s.resolve("no-such-label"),
            Err(EstimateError::UnknownLabel(_))
        ));
    }

    #[test]
    fn resolves_names_to_ids() {
        let s = servable();
        for i in 0..s.label_count() {
            let name = s.label_names[i].clone();
            assert_eq!(s.resolve(&name).unwrap(), LabelId(i as u16));
        }
    }

    #[test]
    fn follow_matrix_survives_both_construction_paths() {
        let g = erdos_renyi(50, 300, 3, LabelDistribution::Zipf { exponent: 1.0 }, 5);
        let expected = phe_graph::FollowMatrix::from_graph(&g);
        let est = PathSelectivityEstimator::build(
            &g,
            phe_core::EstimatorConfig {
                k: 3,
                beta: 16,
                threads: 1,
                ..phe_core::EstimatorConfig::default()
            },
        )
        .unwrap();
        let snapshot = est.snapshot().unwrap();
        let from_snapshot = ServableEstimator::from_snapshot(&snapshot).unwrap();
        let from_est = ServableEstimator::from_estimator(est);
        assert_eq!(from_est.follow(), Some(&expected));
        assert_eq!(from_snapshot.follow(), Some(&expected));

        // A pre-v5 snapshot carries no follow bits: no pruning, no error.
        let mut v4 = snapshot;
        v4.follow_bits_base64 = None;
        let legacy = ServableEstimator::from_snapshot(&v4).unwrap();
        assert!(legacy.follow().is_none());
    }

    #[test]
    fn attached_catalog_reports_residency() {
        let g = erdos_renyi(50, 300, 3, LabelDistribution::Zipf { exponent: 1.0 }, 5);
        let catalog = phe_pathenum::SparseCatalog::compute(&g, 3).unwrap();
        let dir = std::env::temp_dir().join(format!("phe-residency-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.phc");
        phe_pathenum::file::write_catalog_file(&path, &catalog).unwrap();
        let mapped = phe_pathenum::file::open_catalog_file(&path).unwrap();

        let plain = servable();
        assert!(plain.catalog_residency().is_none());
        let base_bytes = plain.size_bytes();
        let attached = plain.with_catalog(mapped);
        let residency = attached.catalog_residency().expect("catalog attached");
        assert_eq!(residency.nonzero_paths, catalog.nonzero_count() as u64);
        assert_eq!(
            residency.payload_bytes,
            catalog.runs().payload_bytes() as u64
        );
        if residency.mapped {
            // The payload stays disk-resident: the heap delta is just the
            // skip index + struct overhead, strictly below the payload
            // for any real catalog.
            assert!(attached.description().ends_with("catalog mmap-resident"));
            assert_eq!(
                attached.size_bytes() - base_bytes,
                residency.heap_bytes as usize + ", catalog mmap-resident".len()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
