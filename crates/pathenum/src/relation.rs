//! Binary relations over vertices and their composition with edge labels.

use phe_graph::{FixedBitSet, Graph, LabelId};

/// The result of evaluating a label path: the set of `(source, target)`
/// vertex pairs, stored CSR-style.
///
/// Invariants: `sources` is strictly ascending; every source has at least
/// one target; each target list is strictly ascending (hence
/// duplicate-free). `offsets.len() == sources.len() + 1`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathRelation {
    sources: Vec<u32>,
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl PathRelation {
    /// The empty relation.
    pub fn empty() -> PathRelation {
        PathRelation {
            sources: Vec::new(),
            offsets: vec![0],
            targets: Vec::new(),
        }
    }

    /// The relation of a single edge label: exactly the label's edge set.
    pub fn from_label(graph: &Graph, label: LabelId) -> PathRelation {
        let csr = graph.forward_csr(label);
        let mut rel = PathRelation::empty();
        for src in csr.non_empty_rows() {
            rel.sources.push(src);
            rel.targets.extend_from_slice(csr.neighbors(src));
            rel.offsets.push(rel.targets.len() as u32);
        }
        rel
    }

    /// The relation of a single edge label restricted to sources in
    /// `[src_lo, src_hi)` — the unit of work of the parallel catalog.
    pub fn from_label_source_range(
        graph: &Graph,
        label: LabelId,
        src_lo: u32,
        src_hi: u32,
    ) -> PathRelation {
        let csr = graph.forward_csr(label);
        let mut rel = PathRelation::empty();
        for src in src_lo..src_hi.min(csr.row_count() as u32) {
            let ns = csr.neighbors(src);
            if ns.is_empty() {
                continue;
            }
            rel.sources.push(src);
            rel.targets.extend_from_slice(ns);
            rel.offsets.push(rel.targets.len() as u32);
        }
        rel
    }

    /// Number of distinct `(source, target)` pairs — the selectivity of the
    /// path this relation evaluates.
    #[inline]
    pub fn pair_count(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Number of distinct sources.
    #[inline]
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Whether the relation holds no pairs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// The sorted target list of the `i`-th source.
    #[inline]
    pub fn targets_of_nth(&self, i: usize) -> &[u32] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.targets[lo..hi]
    }

    /// The sorted source list.
    #[inline]
    pub fn sources(&self) -> &[u32] {
        &self.sources
    }

    /// Looks up the targets of a given source vertex (binary search).
    pub fn targets_of(&self, src: u32) -> &[u32] {
        match self.sources.binary_search(&src) {
            Ok(i) => self.targets_of_nth(i),
            Err(_) => &[],
        }
    }

    /// Whether the pair `(src, dst)` is in the relation.
    pub fn contains(&self, src: u32, dst: u32) -> bool {
        self.targets_of(src).binary_search(&dst).is_ok()
    }

    /// Iterates all pairs in `(source, target)` lexicographic order.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.sources.len()).flat_map(move |i| {
            self.targets_of_nth(i)
                .iter()
                .map(move |&t| (self.sources[i], t))
        })
    }

    /// Composes `self` with the edge relation of `label`:
    /// `result = { (s, w) | ∃t: (s, t) ∈ self ∧ (t, label, w) ∈ E }`.
    ///
    /// `scratch` must have capacity ≥ `graph.vertex_count()`; it is used to
    /// de-duplicate targets per source and is left cleared.
    pub fn compose(
        &self,
        graph: &Graph,
        label: LabelId,
        scratch: &mut FixedBitSet,
    ) -> PathRelation {
        debug_assert!(scratch.is_empty(), "scratch bitset must start cleared");
        debug_assert!(scratch.capacity() >= graph.vertex_count());
        let csr = graph.forward_csr(label);
        let mut out = PathRelation::empty();
        for (i, &src) in self.sources.iter().enumerate() {
            for &t in self.targets_of_nth(i) {
                for &w in csr.neighbors(t) {
                    scratch.insert(w);
                }
            }
            if scratch.is_empty() {
                continue;
            }
            out.sources.push(src);
            scratch.drain_sorted_into(&mut out.targets);
            out.offsets.push(out.targets.len() as u32);
        }
        out
    }

    /// Composes two path relations: `{ (s, w) | ∃t: (s,t) ∈ self ∧ (t,w) ∈ rhs }`.
    ///
    /// Used by the query executor to join arbitrary sub-path results (not
    /// just single labels).
    pub fn join(&self, rhs: &PathRelation, scratch: &mut FixedBitSet) -> PathRelation {
        debug_assert!(scratch.is_empty(), "scratch bitset must start cleared");
        let mut out = PathRelation::empty();
        for (i, &src) in self.sources.iter().enumerate() {
            for &t in self.targets_of_nth(i) {
                for &w in rhs.targets_of(t) {
                    scratch.insert(w);
                }
            }
            if scratch.is_empty() {
                continue;
            }
            out.sources.push(src);
            scratch.drain_sorted_into(&mut out.targets);
            out.offsets.push(out.targets.len() as u32);
        }
        out
    }

    /// Evaluates a whole label path by left-to-right composition.
    /// Returns the empty relation for an empty path.
    pub fn evaluate(graph: &Graph, path: &[LabelId]) -> PathRelation {
        let Some((&first, rest)) = path.split_first() else {
            return PathRelation::empty();
        };
        let mut scratch = FixedBitSet::new(graph.vertex_count());
        let mut rel = PathRelation::from_label(graph, first);
        for &l in rest {
            if rel.is_empty() {
                return PathRelation::empty();
            }
            rel = rel.compose(graph, l, &mut scratch);
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phe_graph::GraphBuilder;

    /// 0 -a-> 1, 0 -a-> 2, 1 -b-> 3, 2 -b-> 3, 3 -a-> 0.
    fn diamond_cycle() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edge_named(0, "a", 1);
        b.add_edge_named(0, "a", 2);
        b.add_edge_named(1, "b", 3);
        b.add_edge_named(2, "b", 3);
        b.add_edge_named(3, "a", 0);
        b.build()
    }

    fn a() -> LabelId {
        LabelId(0)
    }
    fn bb() -> LabelId {
        LabelId(1)
    }

    #[test]
    fn from_label_is_edge_set() {
        let g = diamond_cycle();
        let r = PathRelation::from_label(&g, a());
        assert_eq!(r.pair_count(), 3);
        assert_eq!(r.sources(), &[0, 3]);
        assert_eq!(r.targets_of(0), &[1, 2]);
        assert_eq!(r.targets_of(3), &[0]);
        assert_eq!(r.targets_of(1), &[] as &[u32]);
    }

    #[test]
    fn compose_deduplicates() {
        let g = diamond_cycle();
        let mut scratch = FixedBitSet::new(g.vertex_count());
        let r = PathRelation::from_label(&g, a());
        // a/b: 0 reaches 3 via both 1 and 2 — must count once.
        let ab = r.compose(&g, bb(), &mut scratch);
        assert_eq!(ab.pair_count(), 1);
        assert!(ab.contains(0, 3));
    }

    #[test]
    fn evaluate_multi_step() {
        let g = diamond_cycle();
        // a/b/a: 0 -> 3 -> 0.
        let r = PathRelation::evaluate(&g, &[a(), bb(), a()]);
        assert_eq!(r.pair_count(), 1);
        assert!(r.contains(0, 0));
        // b/b: none (3 has no b-successor).
        let r = PathRelation::evaluate(&g, &[bb(), bb()]);
        assert!(r.is_empty());
    }

    #[test]
    fn evaluate_empty_path_is_empty() {
        let g = diamond_cycle();
        assert!(PathRelation::evaluate(&g, &[]).is_empty());
    }

    #[test]
    fn join_matches_compose() {
        let g = diamond_cycle();
        let mut scratch = FixedBitSet::new(g.vertex_count());
        let ra = PathRelation::from_label(&g, a());
        let rb = PathRelation::from_label(&g, bb());
        let joined = ra.join(&rb, &mut scratch);
        let composed = ra.compose(&g, bb(), &mut scratch);
        let jp: Vec<(u32, u32)> = joined.iter_pairs().collect();
        let cp: Vec<(u32, u32)> = composed.iter_pairs().collect();
        assert_eq!(jp, cp);
    }

    #[test]
    fn iter_pairs_sorted() {
        let g = diamond_cycle();
        let r = PathRelation::from_label(&g, a());
        let pairs: Vec<(u32, u32)> = r.iter_pairs().collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (3, 0)]);
    }

    #[test]
    fn source_range_restriction() {
        let g = diamond_cycle();
        let r = PathRelation::from_label_source_range(&g, a(), 0, 1);
        assert_eq!(r.pair_count(), 2);
        assert_eq!(r.sources(), &[0]);
        let r = PathRelation::from_label_source_range(&g, a(), 1, 4);
        assert_eq!(r.pair_count(), 1);
        assert_eq!(r.sources(), &[3]);
    }

    #[test]
    fn scratch_left_clean() {
        let g = diamond_cycle();
        let mut scratch = FixedBitSet::new(g.vertex_count());
        let r = PathRelation::from_label(&g, a());
        let _ = r.compose(&g, bb(), &mut scratch);
        assert!(scratch.is_empty());
    }
}
