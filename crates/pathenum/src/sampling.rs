//! Sampling-based selectivity estimation — the main *non-histogram*
//! alternative in the cardinality-estimation literature.
//!
//! Instead of precomputing statistics, sample `s` source vertices, count
//! exactly how many targets each reaches via the path (a per-source
//! frontier expansion), and scale by `|V| / s` (Horvitz–Thompson over a
//! uniform source sample). Unbiased, no build cost, no storage — but
//! per-query latency is a graph traversal rather than a histogram lookup,
//! and the variance on skewed graphs is substantial. Including it lets the
//! experiments place the paper's histograms against the other point in
//! the design space (see `downstream_plans`).

use phe_graph::{FixedBitSet, Graph, LabelId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`SamplingEstimator`].
#[derive(Debug, Clone, Copy)]
pub struct SamplingConfig {
    /// Number of source vertices sampled per estimate.
    pub sample_size: usize,
    /// RNG seed (estimates are deterministic per seed).
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            sample_size: 128,
            seed: 42,
        }
    }
}

/// A sampling-based path selectivity estimator over a borrowed graph.
#[derive(Debug)]
pub struct SamplingEstimator<'g> {
    graph: &'g Graph,
    config: SamplingConfig,
}

impl<'g> SamplingEstimator<'g> {
    /// Creates an estimator over `graph`.
    pub fn new(graph: &'g Graph, config: SamplingConfig) -> SamplingEstimator<'g> {
        assert!(config.sample_size > 0, "sample size must be positive");
        SamplingEstimator { graph, config }
    }

    /// The graph being sampled.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Estimates `f(path)` by uniform source sampling.
    ///
    /// If the sample covers every vertex (`sample_size ≥ |V|`), the result
    /// is exact.
    pub fn estimate(&self, path: &[LabelId]) -> f64 {
        let n = self.graph.vertex_count();
        if n == 0 || path.is_empty() {
            return 0.0;
        }
        let s = self.config.sample_size.min(n);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut frontier = FixedBitSet::new(n);
        let mut next = FixedBitSet::new(n);
        let mut total = 0u64;
        let exhaustive = s == n;
        for i in 0..s {
            let source = if exhaustive {
                i as u32
            } else {
                rng.gen_range(0..n as u32)
            };
            total += targets_from(self.graph, source, path, &mut frontier, &mut next);
        }
        total as f64 * (n as f64 / s as f64)
    }
}

/// Exact number of distinct targets reachable from `source` via `path`.
fn targets_from(
    graph: &Graph,
    source: u32,
    path: &[LabelId],
    frontier: &mut FixedBitSet,
    next: &mut FixedBitSet,
) -> u64 {
    let first = graph.out_neighbors_raw(source, path[0]);
    if first.is_empty() {
        return 0;
    }
    frontier.clear();
    for &t in first {
        frontier.insert(t);
    }
    for &label in &path[1..] {
        next.clear();
        for v in frontier.iter() {
            for &w in graph.out_neighbors_raw(v, label) {
                next.insert(w);
            }
        }
        std::mem::swap(frontier, next);
        if frontier.is_empty() {
            return 0;
        }
    }
    frontier.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use phe_graph::GraphBuilder;

    fn l(x: u16) -> LabelId {
        LabelId(x)
    }

    fn chain_graph() -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..50u32 {
            b.add_edge_named(i, "a", i + 1);
            if i % 2 == 0 {
                b.add_edge_named(i + 1, "b", i);
            }
        }
        b.build()
    }

    #[test]
    fn full_sample_is_exact() {
        let g = chain_graph();
        let est = SamplingEstimator::new(
            &g,
            SamplingConfig {
                sample_size: usize::MAX,
                seed: 1,
            },
        );
        for path in [
            vec![l(0)],
            vec![l(1)],
            vec![l(0), l(1)],
            vec![l(0), l(0), l(1)],
        ] {
            let exact = crate::naive::selectivity(&g, &path);
            assert_eq!(est.estimate(&path), exact as f64, "path {path:?}");
        }
    }

    #[test]
    fn estimates_are_deterministic_per_seed() {
        let g = chain_graph();
        let config = SamplingConfig {
            sample_size: 10,
            seed: 9,
        };
        let a = SamplingEstimator::new(&g, config).estimate(&[l(0), l(0)]);
        let b = SamplingEstimator::new(&g, config).estimate(&[l(0), l(0)]);
        assert_eq!(a, b);
    }

    #[test]
    fn sampling_converges_with_sample_size() {
        // On a uniform-ish graph the relative error should shrink as the
        // sample grows; check the largest sample is closest to truth.
        let g = chain_graph();
        let path = [l(0), l(0)];
        let exact = crate::naive::selectivity(&g, &path) as f64;
        let err = |s: usize| {
            let est = SamplingEstimator::new(
                &g,
                SamplingConfig {
                    sample_size: s,
                    seed: 5,
                },
            )
            .estimate(&path);
            (est - exact).abs()
        };
        assert!(
            err(51) <= err(4) + 1e-9,
            "51-sample not better: {} vs {}",
            err(51),
            err(4)
        );
        assert_eq!(err(51), 0.0, "covering sample must be exact");
    }

    #[test]
    fn zero_for_impossible_paths() {
        let g = chain_graph();
        let est = SamplingEstimator::new(&g, SamplingConfig::default());
        assert_eq!(est.estimate(&[l(1), l(1)]), 0.0);
        assert_eq!(est.estimate(&[]), 0.0);
    }

    #[test]
    fn mean_over_seeds_is_unbiased_ish() {
        // Average of many small-sample estimates approaches the truth
        // (law of large numbers; tolerance generous to stay robust).
        let g = chain_graph();
        let path = [l(0)];
        let exact = crate::naive::selectivity(&g, &path) as f64;
        let mean: f64 = (0..200)
            .map(|seed| {
                SamplingEstimator::new(
                    &g,
                    SamplingConfig {
                        sample_size: 8,
                        seed,
                    },
                )
                .estimate(&path)
            })
            .sum::<f64>()
            / 200.0;
        assert!(
            (mean - exact).abs() < exact * 0.2,
            "mean {mean} too far from exact {exact}"
        );
    }
}
