//! Read-only memory mapping with a read-to-heap fallback.
//!
//! The build environment has no `libc` or `memmap` crate, but `std`
//! already links the platform C library, so on 64-bit Unix we declare
//! the two symbols we need (`mmap`/`munmap`) directly — the same
//! technique `phe-service` uses for `signal(2)`. Everywhere else (or
//! when the kernel refuses the mapping) the file is read into an
//! ordinary heap buffer, so callers never observe a platform
//! difference beyond [`MappedRegion::is_mapped`].
//!
//! # Safety rules
//!
//! A mapped file must stay unmodified for the lifetime of the mapping:
//! truncating it delivers `SIGBUS` on the next touched page. Catalog
//! files uphold this by being **immutable once written** — writers emit
//! to a temporary path and `rename(2)` into place, and readers validate
//! a checksum at open, so a region handed out by this module is backed
//! by a file nobody rewrites in place.

use std::fs::File;
use std::io::{self, Read};

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;

    // Prototypes for the C library symbols `std` already links; values
    // below are the Linux/macOS ABI constants for the flags we pass.
    extern "C" {
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// A live read-only `mmap(2)` region; unmapped on drop.
    pub(super) struct Map {
        ptr: *mut u8,
        len: usize,
    }

    // SAFETY: the region is read-only (PROT_READ, never remapped) and
    // owned until drop: moving the pointer to another thread is no
    // different from moving a `Vec<u8>`.
    unsafe impl Send for Map {}
    // SAFETY: all access goes through `&self -> &[u8]`; concurrent reads
    // of an immutable MAP_PRIVATE region are race-free.
    unsafe impl Sync for Map {}

    impl Map {
        pub(super) fn new(file: &File, len: usize) -> io::Result<Map> {
            debug_assert!(len > 0, "zero-length mappings are refused by the kernel");
            // SAFETY: plain FFI call with a null hint address; `fd` is a
            // live descriptor borrowed from `file` and the kernel
            // validates `len`/`offset`, reporting failure as MAP_FAILED
            // (checked below) rather than UB.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Map { ptr, len })
        }

        pub(super) fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr` maps exactly `len` readable bytes until drop,
            // and the backing file is immutable (module safety rules).
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` came from a successful `mmap` and are
            // unmapped exactly once.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

enum Region {
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped(sys::Map),
    Heap(Vec<u8>),
}

/// The contents of one file, memory-mapped when the platform allows it
/// and read into a heap buffer otherwise. Either way [`as_slice`] is
/// the whole file.
///
/// [`as_slice`]: MappedRegion::as_slice
pub struct MappedRegion(Region);

impl MappedRegion {
    /// Maps `file` read-only, falling back to reading it into memory
    /// (empty files, unsupported platforms, or a kernel that refuses
    /// the mapping). Errors only if the fallback read itself fails.
    pub fn map_file(file: &mut File) -> io::Result<MappedRegion> {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            let len = file.metadata()?.len();
            if len > 0 {
                if let Ok(map) = sys::Map::new(file, len as usize) {
                    return Ok(MappedRegion(Region::Mapped(map)));
                }
            }
        }
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        Ok(MappedRegion(Region::Heap(buf)))
    }

    /// The file's bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Region::Mapped(map) => map.as_slice(),
            Region::Heap(buf) => buf,
        }
    }

    /// Whether the bytes are disk-resident (a real mapping) rather than
    /// a heap copy.
    pub fn is_mapped(&self) -> bool {
        match &self.0 {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Region::Mapped(_) => true,
            Region::Heap(_) => false,
        }
    }

    /// Length of the file in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for MappedRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedRegion")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("phe-mmap-test-{}-{name}", std::process::id()));
        path
    }

    #[test]
    fn maps_a_file_and_reads_it_back() {
        let path = temp_path("basic");
        let payload: Vec<u8> = (0..10_000u32).flat_map(|v| v.to_le_bytes()).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let mut file = File::open(&path).unwrap();
        let region = MappedRegion::map_file(&mut file).unwrap();
        assert_eq!(region.as_slice(), &payload[..]);
        assert_eq!(region.len(), payload.len());
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(region.is_mapped(), "64-bit unix should really map");
        drop(region); // must unmap cleanly
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_falls_back_to_heap() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let mut file = File::open(&path).unwrap();
        let region = MappedRegion::map_file(&mut file).unwrap();
        assert!(region.is_empty());
        assert!(!region.is_mapped());
        std::fs::remove_file(&path).unwrap();
    }
}
