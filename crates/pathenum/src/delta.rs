//! Incremental path counting: the signed sparse delta of a graph change.
//!
//! Given a base graph `G`, the changed graph `G' = G + Δ`, and the edge
//! delta `Δ` itself, [`compute_delta`] produces a [`SparseDeltaRun`]: the
//! sorted `(canonical_index, f_G'(ℓ) − f_G(ℓ))` entries for exactly the
//! label paths whose selectivity changed. Merging that run into the
//! previous [`SparseCatalog`](crate::SparseCatalog) with
//! [`SparseCatalog::merge_delta`](crate::SparseCatalog::merge_delta)
//! reproduces the from-scratch catalog of `G'` **bit-identically**
//! (property-tested in `tests/sparse_equivalence.rs`) at a cost
//! proportional to the *change*, not the graph.
//!
//! ## Why only touched paths need visiting
//!
//! A path relation `ℓ(G)` is a function of the CSRs of the labels in `ℓ`
//! alone, built by left-to-right composition. Two facts bound where
//! old/new relations can differ:
//!
//! 1. **Divergence is created only at changed rows.** Composing a
//!    relation `R` (equal in both graphs) with label `m` reads `m`'s CSR
//!    only at `targets(R)`. Unless `targets(R)` meets the source of some
//!    changed `m`-edge, `R ∘ E_m` is equal in both graphs too.
//! 2. **Realized paths are walks of the label-follow graph.** A
//!    composition chain stays non-empty only while consecutive labels
//!    `a, b` satisfy `targets(E_a) ∩ sources(E_b) ≠ ∅` (in the old or new
//!    graph). So a path whose count *changed* must reach a dirty label
//!    within its remaining length along that |L|-node follow graph.
//!
//! The traversal mirrors the full build's shared-prefix trie DFS but runs
//! in two modes:
//!
//! * **Clean** nodes hold one shared relation (old ≡ new) and emit
//!   nothing. Descent is pruned twice over: a child label must have a
//!   dirty label follow-reachable within the remaining path budget
//!   (label-level, fact 2), and some relation target must have a
//!   `child`-edge into a vertex within walk distance of a changed source
//!   (vertex-level bitmask test, fact 1 — checked *before* paying the
//!   composition). The untouched bulk of the trie is never visited.
//! * **Tainted** nodes (entered when a composition reads changed rows
//!   and some row's result differs) carry only the **changed rows** —
//!   each source's old and new target sets. The unchanged bulk of the
//!   relation composes identically on both sides and cancels out of the
//!   count difference, so a tainted child's signed diff is the row-wise
//!   difference over the carried rows alone, and the work is
//!   proportional to the *changed rows*, not the relation. Rows that
//!   re-converge are dropped; a child whose rows all re-converge falls
//!   back to a clean node (the subtree may still meet deeper dirt). The
//!   one composition the row delta cannot answer locally — a **dirty**
//!   label deeper in a tainted subtree, where an *unchanged* row may
//!   newly meet a changed source — re-evaluates that node exactly from
//!   both graphs (gated by the follow matrix, so it never fires unless
//!   the label sequence is realizable).

use phe_graph::delta::GraphDelta;
use phe_graph::{FixedBitSet, FollowMatrix, Graph, LabelId};

use crate::catalog::CatalogError;
use crate::encoding::PathEncoding;
use crate::relation::PathRelation;

/// The signed sparse outcome of a graph delta: sorted, duplicate-free
/// `(canonical_index, f_new − f_old)` entries, differences non-zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseDeltaRun {
    encoding: PathEncoding,
    entries: Vec<(u64, i64)>,
}

impl SparseDeltaRun {
    /// The canonical encoding both catalogs share.
    #[inline]
    pub fn encoding(&self) -> &PathEncoding {
        &self.encoding
    }

    /// The sorted `(canonical_index, signed_difference)` entries.
    #[inline]
    pub fn entries(&self) -> &[(u64, i64)] {
        &self.entries
    }

    /// Number of paths whose selectivity changed.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the delta changed no path's selectivity.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Counts the signed selectivity difference `f_new(ℓ) − f_old(ℓ)` for
/// every label path of length `≤ k`, visiting only the paths the delta
/// can have touched (see the module docs for the pruning argument).
///
/// `old` and `new` must be the delta's base graph and its
/// [`Graph::apply_delta`] result; the label alphabet must be unchanged
/// (a delta cannot introduce labels).
///
/// # Errors
/// [`CatalogError::AlphabetChanged`] when the two graphs disagree on
/// `|L|`, and [`CatalogError::DomainTooLarge`] when `Σ |L|^i` overflows
/// the canonical index space.
pub fn compute_delta(
    old: &Graph,
    new: &Graph,
    delta: &GraphDelta,
    k: usize,
) -> Result<SparseDeltaRun, CatalogError> {
    if old.label_count() != new.label_count() {
        return Err(CatalogError::AlphabetChanged {
            old: old.label_count(),
            new: new.label_count(),
        });
    }
    let encoding = PathEncoding::try_new(old.label_count().max(1), k)?;
    let label_count = old.label_count();
    let changed_sources = delta.changed_sources_by_label(label_count);
    let dirty: Vec<bool> = changed_sources.iter().map(|s| !s.is_empty()).collect();
    if !dirty.iter().any(|&d| d) || label_count == 0 {
        return Ok(SparseDeltaRun {
            encoding,
            entries: Vec::new(),
        });
    }

    let follows = FollowMatrix::from_graph_union(old, new);
    let dist = dirty_distances(&follows, &dirty, k);
    let vertex_count = old.vertex_count().max(new.vertex_count());
    let masks = ReachMasks::build(old, new, &changed_sources, k);
    let mut ctx = DeltaCtx {
        old,
        new,
        encoding: &encoding,
        dirty: &dirty,
        dist: &dist,
        follows: &follows,
        masks: &masks,
        k,
        scratch: FixedBitSet::new(vertex_count),
        path: Vec::with_capacity(k),
        entries: Vec::new(),
    };

    for label in old.label_ids() {
        // The whole subtree rooted at `label` can only contain a changed
        // path if a dirty label is follow-reachable within `k − 1` steps.
        if ctx.dist[label.index()] > k - 1 {
            continue;
        }
        if ctx.dirty[label.index()] {
            let ro = PathRelation::from_label(old, label);
            let rn = PathRelation::from_label(new, label);
            ctx.path.push(label);
            if ro == rn {
                if !ro.is_empty() {
                    ctx.clean_subtree(&ro);
                }
            } else {
                ctx.emit(rn.pair_count() as i64 - ro.pair_count() as i64);
                let rows = differing_rows(&ro, &rn);
                ctx.tainted_subtree(&rows);
            }
            ctx.path.pop();
        } else {
            // Clean label: identical edge set in both graphs.
            let rel = PathRelation::from_label(new, label);
            if !rel.is_empty() {
                ctx.path.push(label);
                ctx.clean_subtree(&rel);
                ctx.path.pop();
            }
        }
    }

    let mut entries = ctx.entries;
    entries.sort_unstable_by_key(|&(index, _)| index);
    debug_assert!(
        entries.windows(2).all(|w| w[0].0 < w[1].0),
        "each trie node is visited exactly once"
    );
    Ok(SparseDeltaRun { encoding, entries })
}

struct DeltaCtx<'a> {
    old: &'a Graph,
    new: &'a Graph,
    encoding: &'a PathEncoding,
    dirty: &'a [bool],
    /// Follow-graph distance from each label to the nearest dirty label
    /// (0 for dirty labels themselves; `usize::MAX` when unreachable).
    dist: &'a [usize],
    /// The label-follow matrix over old ∪ new: `!follows(a, b)` proves
    /// `… a/b …` relations empty on both sides.
    follows: &'a FollowMatrix,
    /// Vertex-level reachability masks (see [`ReachMasks`]).
    masks: &'a ReachMasks,
    k: usize,
    scratch: FixedBitSet,
    path: Vec<LabelId>,
    entries: Vec<(u64, i64)>,
}

/// Word-level bitmask over vertices.
type Mask = Vec<u64>;

#[inline]
fn masks_intersect(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).any(|(x, y)| x & y != 0)
}

/// Per-vertex reachability structure driving the clean-mode prunes, all
/// derived from one reverse BFS (`vertex_distances`) over the union of
/// the old and new edges:
///
/// * `changed[l]` — the changed `l`-edge sources (where composing `l`
///   reads a changed row and divergence can be *created*);
/// * `reach[d]` — vertices within `d` walk steps of any changed source;
/// * `pre[l][d]` — vertices with an `l`-edge into `reach[d]`: composing
///   `l` from a relation disjoint from `pre[l][d]` yields targets outside
///   `reach[d]`, so requiring `targets ∩ pre[l][r−2] ≠ ∅` before
///   composing a clean child prunes, per child and **before paying the
///   composition**, every subtree whose relations can no longer funnel
///   onto a changed row within the remaining budget.
struct ReachMasks {
    changed: Vec<Mask>,
    reach: Vec<Mask>,
    pre: Vec<Vec<Mask>>,
}

impl ReachMasks {
    fn build(old: &Graph, new: &Graph, changed_sources: &[Vec<u32>], k: usize) -> ReachMasks {
        let vertex_count = old.vertex_count().max(new.vertex_count());
        let words = vertex_count.div_ceil(64).max(1);
        let vdist = vertex_distances(old, new, changed_sources, k);

        let changed: Vec<Mask> = changed_sources
            .iter()
            .map(|sources| {
                let mut mask = vec![0u64; words];
                for &s in sources {
                    mask[s as usize / 64] |= 1 << (s % 64);
                }
                mask
            })
            .collect();

        let mut reach: Vec<Mask> = vec![vec![0u64; words]; k];
        for (v, &d) in vdist.iter().enumerate() {
            for mask in reach.iter_mut().skip(d as usize) {
                mask[v / 64] |= 1 << (v % 64);
            }
        }

        let label_count = old.label_count();
        let mut pre: Vec<Vec<Mask>> = vec![vec![vec![0u64; words]; k]; label_count];
        for graph in [old, new] {
            for l in graph.label_ids() {
                let csr = graph.forward_csr(l);
                for v in csr.non_empty_rows() {
                    let min_out = csr
                        .neighbors(v)
                        .iter()
                        .map(|&w| vdist[w as usize])
                        .min()
                        .unwrap_or(u32::MAX);
                    for mask in pre[l.index()].iter_mut().skip(min_out as usize) {
                        mask[v as usize / 64] |= 1 << (v % 64);
                    }
                }
            }
        }
        ReachMasks {
            changed,
            reach,
            pre,
        }
    }
}

/// Collects a relation's target set as a vertex bitmask.
fn target_mask(rel: &PathRelation, words: usize) -> Mask {
    let mut mask = vec![0u64; words];
    for i in 0..rel.source_count() {
        for &t in rel.targets_of_nth(i) {
            mask[t as usize / 64] |= 1 << (t % 64);
        }
    }
    mask
}

impl DeltaCtx<'_> {
    fn emit(&mut self, diff: i64) {
        if diff != 0 {
            self.entries
                .push((self.encoding.encode(&self.path) as u64, diff));
        }
    }

    /// Descends below a node whose relation is identical in both graphs.
    /// Emits nothing at this level (the counts agree); recurses only where
    /// a dirty label remains reachable within the budget.
    fn clean_subtree(&mut self, rel: &PathRelation) {
        if self.path.len() == self.k {
            return;
        }
        let remaining = self.k - self.path.len();
        // Vertex-level prune: a descendant diverges only if some walk of
        // ≤ remaining − 1 further compositions moves a target of this
        // relation onto a changed-edge source (where a dirty composition
        // can then read a changed row). Relation targets advance one walk
        // step per composition, so if no target is within `remaining − 1`
        // walk steps of any changed source, the entire subtree is clean.
        let tmask = target_mask(rel, self.masks.reach[0].len());
        if !masks_intersect(&tmask, &self.masks.reach[remaining - 1]) {
            return;
        }
        for label in self.old.label_ids() {
            let li = label.index();
            // After appending `label`, `remaining − 1` slots stay; the
            // subtree matters only if dirt is that close in follow steps.
            if self.dist[li] > remaining - 1 {
                continue;
            }
            if self.dirty[li] && masks_intersect(&tmask, &self.masks.changed[li]) {
                // The composition reads changed rows: old and new can part
                // ways here — but only in the rows whose targets meet a
                // changed source. Compose exactly those rows on both
                // sides; everything else is untouched by construction.
                let (old_g, new_g) = (self.old, self.new);
                let mut rows: Vec<RowDelta> = Vec::new();
                let mut diff = 0i64;
                for i in 0..rel.source_count() {
                    let targets = rel.targets_of_nth(i);
                    let hit = targets
                        .iter()
                        .any(|&t| mask_bit(&self.masks.changed[li], t));
                    if !hit {
                        continue;
                    }
                    let old_targets = self.compose_targets(targets, old_g, label);
                    let new_targets = self.compose_targets(targets, new_g, label);
                    if old_targets != new_targets {
                        diff += new_targets.len() as i64 - old_targets.len() as i64;
                        rows.push(RowDelta {
                            old_targets,
                            new_targets,
                        });
                    }
                }
                if rows.is_empty() {
                    // Every touched row composed to the same result: the
                    // child is still clean. Descend with the full relation
                    // if the subtree remains viable.
                    if remaining >= 2 && masks_intersect(&tmask, &self.masks.pre[li][remaining - 2])
                    {
                        let next = rel.compose(self.new, label, &mut self.scratch);
                        if !next.is_empty() {
                            self.path.push(label);
                            self.clean_subtree(&next);
                            self.path.pop();
                        }
                    }
                } else {
                    self.path.push(label);
                    self.emit(diff);
                    self.tainted_subtree(&rows);
                    self.path.pop();
                }
            } else if remaining >= 2 && masks_intersect(&tmask, &self.masks.pre[li][remaining - 2])
            {
                // A clean composition (identical in both graphs: the label
                // is clean, or no target is a changed source) — and one
                // worth paying for: some target has a `label`-edge into a
                // vertex that can still funnel onto a changed row within
                // the remaining budget. Children failing this test are
                // skipped without composing at all.
                let next = rel.compose(self.new, label, &mut self.scratch);
                if !next.is_empty() {
                    self.path.push(label);
                    self.clean_subtree(&next);
                    self.path.pop();
                }
            }
        }
    }

    /// Descends below a node whose old and new relations differ in
    /// exactly `rows` (every other row is identical in both graphs). The
    /// signed count difference of each child is the row-wise difference
    /// over these rows alone — the unchanged bulk cancels — so the work
    /// here is proportional to the *changed rows*, not the relation. A
    /// child whose changed rows all re-converge ends the recursion: the
    /// subtree below it is identical in both graphs.
    ///
    /// The one case the row delta cannot answer locally is composing a
    /// **dirty** label: an unchanged row may meet a changed source and
    /// newly diverge. That child (a path containing two dirty labels —
    /// rare under localized churn) falls back to exact full evaluation
    /// of both sides and re-derives the row delta from scratch.
    fn tainted_subtree(&mut self, rows: &[RowDelta]) {
        if self.path.len() == self.k {
            return;
        }
        let (old_g, new_g) = (self.old, self.new);
        let prev = self
            .path
            .last()
            .copied()
            .expect("tainted nodes sit below the root");
        for label in self.old.label_ids() {
            // If `prev` cannot be followed by `label` in either graph,
            // the child relation is empty on both sides and nothing below
            // it can differ — in particular, the dirty-label fallback's
            // full evaluations are skipped wholesale.
            if !self.follows.follows(prev, label) {
                continue;
            }
            if self.dirty[label.index()] {
                self.path.push(label);
                let ro = PathRelation::evaluate(old_g, &self.path);
                let rn = PathRelation::evaluate(new_g, &self.path);
                self.emit(rn.pair_count() as i64 - ro.pair_count() as i64);
                if ro == rn {
                    if !ro.is_empty() {
                        self.clean_subtree(&rn);
                    }
                } else {
                    let next = differing_rows(&ro, &rn);
                    self.tainted_subtree(&next);
                }
                self.path.pop();
                continue;
            }
            // Clean label: unchanged rows compose identically on both
            // sides, so only the carried rows can keep the sides apart.
            let mut next: Vec<RowDelta> = Vec::new();
            let mut diff = 0i64;
            for row in rows {
                let old_targets = self.compose_targets(&row.old_targets, old_g, label);
                let new_targets = self.compose_targets(&row.new_targets, new_g, label);
                if old_targets != new_targets {
                    diff += new_targets.len() as i64 - old_targets.len() as i64;
                    next.push(RowDelta {
                        old_targets,
                        new_targets,
                    });
                }
            }
            if next.is_empty() {
                // Re-converged: the child relation is identical in both
                // graphs. That is a *clean* child, not a dead one — a
                // deeper dirty composition could still diverge it — so if
                // dirt remains follow-reachable within the budget, drop
                // back to clean mode with the full (shared) relation.
                let remaining = self.k - self.path.len();
                if self.dist[label.index()] < remaining {
                    self.path.push(label);
                    let rel = PathRelation::evaluate(new_g, &self.path);
                    if !rel.is_empty() {
                        self.clean_subtree(&rel);
                    }
                    self.path.pop();
                }
                continue;
            }
            self.path.push(label);
            self.emit(diff);
            self.tainted_subtree(&next);
            self.path.pop();
        }
    }

    /// One row's targets pushed through `label`'s edges of `graph`,
    /// de-duplicated and sorted.
    fn compose_targets(&mut self, targets: &[u32], graph: &Graph, label: LabelId) -> Vec<u32> {
        for &t in targets {
            if (t as usize) < graph.vertex_count() {
                for &w in graph.out_neighbors_raw(t, label) {
                    self.scratch.insert(w);
                }
            }
        }
        let mut out = Vec::new();
        self.scratch.drain_sorted_into(&mut out);
        out
    }
}

/// One changed row of a tainted relation: the same source's target set
/// on the old and new side (differing by construction; either may be
/// empty). The source vertex itself is irrelevant to counting — only the
/// target-set sizes enter the difference — so it is not stored.
struct RowDelta {
    old_targets: Vec<u32>,
    new_targets: Vec<u32>,
}

/// The row deltas between two full relations: a merge-join over their
/// sorted source lists, keeping rows whose target sets differ.
fn differing_rows(old_rel: &PathRelation, new_rel: &PathRelation) -> Vec<RowDelta> {
    let mut rows = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    let (on, nn) = (old_rel.source_count(), new_rel.source_count());
    while i < on || j < nn {
        let os = old_rel.sources().get(i).copied();
        let ns = new_rel.sources().get(j).copied();
        match (os, ns) {
            (Some(o), Some(n)) if o == n => {
                let (ot, nt) = (old_rel.targets_of_nth(i), new_rel.targets_of_nth(j));
                if ot != nt {
                    rows.push(RowDelta {
                        old_targets: ot.to_vec(),
                        new_targets: nt.to_vec(),
                    });
                }
                i += 1;
                j += 1;
            }
            (Some(o), Some(n)) if o < n => {
                rows.push(RowDelta {
                    old_targets: old_rel.targets_of_nth(i).to_vec(),
                    new_targets: Vec::new(),
                });
                i += 1;
            }
            (Some(_), None) => {
                rows.push(RowDelta {
                    old_targets: old_rel.targets_of_nth(i).to_vec(),
                    new_targets: Vec::new(),
                });
                i += 1;
            }
            _ => {
                rows.push(RowDelta {
                    old_targets: Vec::new(),
                    new_targets: new_rel.targets_of_nth(j).to_vec(),
                });
                j += 1;
            }
        }
    }
    rows
}

/// Tests one vertex against a mask.
#[inline]
fn mask_bit(mask: &[u64], v: u32) -> bool {
    mask[v as usize / 64] & (1 << (v % 64)) != 0
}

/// Per-vertex walk distance to the nearest changed-edge source: a
/// multi-source reverse BFS over the union of the old and new graphs'
/// edges (all labels), capped at `k − 1` steps — deeper vertices can
/// never funnel a relation onto a changed row within one path's budget.
fn vertex_distances(old: &Graph, new: &Graph, changed_sources: &[Vec<u32>], k: usize) -> Vec<u32> {
    let vertex_count = old.vertex_count().max(new.vertex_count());
    let mut dist = vec![u32::MAX; vertex_count];
    let mut frontier: Vec<u32> = Vec::new();
    for sources in changed_sources {
        for &s in sources {
            if dist[s as usize] == u32::MAX {
                dist[s as usize] = 0;
                frontier.push(s);
            }
        }
    }
    for d in 1..k.max(1) as u32 {
        let mut next = Vec::new();
        for &u in &frontier {
            for graph in [old, new] {
                if u as usize >= graph.vertex_count() {
                    continue;
                }
                for label in graph.label_ids() {
                    for &v in graph.in_neighbors_raw(u, label) {
                        if dist[v as usize] == u32::MAX {
                            dist[v as usize] = d;
                            next.push(v);
                        }
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    dist
}

/// Multi-source BFS over the **reversed label-follow graph** (see
/// [`FollowMatrix`]): for each label, the minimum number of follow steps
/// to reach a dirty label (`usize::MAX` when unreachable).
fn dirty_distances(follows: &FollowMatrix, dirty: &[bool], k: usize) -> Vec<usize> {
    let label_count = dirty.len();
    let mut dist = vec![usize::MAX; label_count];
    let mut frontier: Vec<usize> = (0..label_count).filter(|&l| dirty[l]).collect();
    for &l in &frontier {
        dist[l] = 0;
    }
    // Distances beyond k − 1 never unlock a descent, so the BFS can stop.
    for d in 1..k.max(1) {
        let mut next = Vec::new();
        for (m, slot) in dist.iter_mut().enumerate() {
            if *slot == usize::MAX
                && frontier
                    .iter()
                    .any(|&f| follows.follows(LabelId(m as u16), LabelId(f as u16)))
            {
                *slot = d;
                next.push(m);
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    dist
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;

    /// Builds a run from raw entries — lets sibling modules' tests forge
    /// deltas (e.g. underflowing ones) that `compute_delta` never emits.
    pub(crate) fn run_from_entries(
        encoding: PathEncoding,
        entries: Vec<(u64, i64)>,
    ) -> SparseDeltaRun {
        SparseDeltaRun { encoding, entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::SelectivityCatalog;
    use crate::sparse::SparseCatalog;
    use phe_graph::{GraphBuilder, VertexId};

    fn l(x: u16) -> LabelId {
        LabelId(x)
    }
    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    /// Deterministic pseudo-random graph (LCG walk, no `rand`).
    fn lcg_graph(n: u32, labels: u16, edges: usize, seed: u64) -> Graph {
        let mut b = GraphBuilder::with_numeric_labels(n, labels);
        let mut x = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        let mut step = || {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (x >> 33) as u32
        };
        for _ in 0..edges {
            let s = step() % n;
            let t = step() % n;
            let lab = (step() as u16) % labels;
            b.add_edge(v(s), l(lab), v(t));
        }
        b.build()
    }

    /// Deterministic churn: removes every `stride`-th edge and inserts
    /// `inserts` fresh edges that exist in neither the base graph nor the
    /// delta so far.
    fn lcg_delta(graph: &Graph, stride: usize, inserts: usize, seed: u64) -> GraphDelta {
        let mut delta = GraphDelta::new();
        let mut removed = std::collections::HashSet::new();
        for (i, (s, lab, t)) in graph.iter_edges().enumerate() {
            if i % stride == 0 {
                delta.remove(s, lab, t);
                removed.insert((s.0, lab.0, t.0));
            }
        }
        let n = graph.vertex_count() as u32;
        let labels = graph.label_count() as u16;
        let mut x = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        let mut step = || {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (x >> 33) as u32
        };
        let mut added = std::collections::HashSet::new();
        let mut remaining = inserts;
        while remaining > 0 {
            let (s, t, lab) = (step() % n, step() % n, (step() as u16) % labels);
            let key = (s, lab, t);
            let present = graph.has_edge(v(s), l(lab), v(t)) && !removed.contains(&key);
            if present || !added.insert(key) {
                continue;
            }
            delta.insert(v(s), l(lab), v(t));
            remaining -= 1;
        }
        delta
    }

    /// The brute-force oracle: dense catalogs of both graphs, diffed.
    fn dense_diff(old: &Graph, new: &Graph, k: usize) -> Vec<(u64, i64)> {
        let co = SelectivityCatalog::compute(old, k);
        let cn = SelectivityCatalog::compute(new, k);
        co.counts()
            .iter()
            .zip(cn.counts())
            .enumerate()
            .filter(|(_, (&o, &n))| o != n)
            .map(|(i, (&o, &n))| (i as u64, n as i64 - o as i64))
            .collect()
    }

    #[test]
    fn delta_matches_dense_diff_on_random_churn() {
        for seed in [3u64, 11, 42] {
            let old = lcg_graph(40, 4, 220, seed);
            let delta = lcg_delta(&old, 7, 12, seed + 1);
            let new = old.apply_delta(&delta).unwrap();
            for k in 1..=4 {
                let run = compute_delta(&old, &new, &delta, k).unwrap();
                assert_eq!(
                    run.entries(),
                    dense_diff(&old, &new, k).as_slice(),
                    "seed {seed}, k {k}"
                );
            }
        }
    }

    #[test]
    fn merged_catalog_equals_full_recount() {
        let old = lcg_graph(50, 3, 280, 9);
        let delta = lcg_delta(&old, 5, 20, 10);
        let new = old.apply_delta(&delta).unwrap();
        for k in 1..=4 {
            let base = SparseCatalog::compute(&old, k).unwrap();
            let run = compute_delta(&old, &new, &delta, k).unwrap();
            let merged = base.merge_delta(&run).unwrap();
            let fresh = SparseCatalog::compute(&new, k).unwrap();
            assert_eq!(merged, fresh, "k = {k}");
        }
    }

    #[test]
    fn empty_delta_is_an_empty_run() {
        let g = lcg_graph(20, 2, 60, 5);
        let run = compute_delta(&g, &g, &GraphDelta::new(), 3).unwrap();
        assert!(run.is_empty());
        assert_eq!(run.encoding().max_len(), 3);
    }

    #[test]
    fn insertion_only_and_removal_only_deltas() {
        let mut b = GraphBuilder::new();
        b.add_edge_named(0, "a", 1);
        b.add_edge_named(1, "b", 2);
        let old = b.build();

        // Insert 2 -a-> 3: creates paths a (+1), b/a (+1).
        let mut ins = GraphDelta::new();
        ins.insert(v(2), l(0), v(3));
        let new = old.apply_delta(&ins).unwrap();
        let run = compute_delta(&old, &new, &ins, 3).unwrap();
        assert_eq!(run.entries(), dense_diff(&old, &new, 3).as_slice());
        assert!(run.entries().iter().all(|&(_, d)| d > 0));

        // Remove 0 -a-> 1: kills a (−1) and a/b (−1).
        let mut rem = GraphDelta::new();
        rem.remove(v(0), l(0), v(1));
        let new = old.apply_delta(&rem).unwrap();
        let run = compute_delta(&old, &new, &rem, 3).unwrap();
        assert_eq!(run.entries(), dense_diff(&old, &new, 3).as_slice());
        assert!(run.entries().iter().all(|&(_, d)| d < 0));
    }

    #[test]
    fn remove_reinsert_cancels_to_empty() {
        let old = lcg_graph(20, 2, 80, 7);
        let (s, lab, t) = old.iter_edges().next().unwrap();
        let mut delta = GraphDelta::new();
        delta.remove(s, lab, t);
        delta.insert(s, lab, t);
        let new = old.apply_delta(&delta).unwrap();
        let run = compute_delta(&old, &new, &delta, 3).unwrap();
        assert!(run.is_empty(), "{:?}", run.entries());
    }

    #[test]
    fn delta_touching_new_vertices() {
        let mut b = GraphBuilder::new();
        b.add_edge_named(0, "a", 1);
        let old = b.build();
        let mut delta = GraphDelta::new();
        delta.insert(v(1), l(0), v(5)); // grows the vertex set
        let new = old.apply_delta(&delta).unwrap();
        let run = compute_delta(&old, &new, &delta, 2).unwrap();
        assert_eq!(run.entries(), dense_diff(&old, &new, 2).as_slice());
    }

    #[test]
    fn alphabet_change_is_refused() {
        let old = lcg_graph(10, 2, 30, 1);
        let new = lcg_graph(10, 3, 30, 1);
        assert!(matches!(
            compute_delta(&old, &new, &GraphDelta::new(), 2),
            Err(CatalogError::AlphabetChanged { old: 2, new: 3 })
        ));
    }

    #[test]
    fn dirty_distance_prunes_far_labels() {
        // A 6-label chain 0→1→…→5 with a change on label 0 only: labels
        // beyond follow distance k−1 from the dirty label never reach it,
        // so dist must be MAX for them (the prune the bench relies on).
        let mut b = GraphBuilder::with_numeric_labels(7, 6);
        for i in 0..6u16 {
            b.add_edge(v(i as u32), l(i), v(i as u32 + 1));
        }
        let old = b.build();
        let mut delta = GraphDelta::new();
        delta.insert(v(0), l(0), v(2));
        let new = old.apply_delta(&delta).unwrap();
        let dirty: Vec<bool> = (0..6).map(|i| i == 0).collect();
        let dist = dirty_distances(&FollowMatrix::from_graph_union(&old, &new), &dirty, 6);
        assert_eq!(dist[0], 0);
        // No label follows into label 0 (vertex 0 has no incoming edges),
        // so everything else is unreachable-from.
        assert!(dist[1..].iter().all(|&d| d == usize::MAX), "{dist:?}");
        // And the run still matches the oracle.
        let run = compute_delta(&old, &new, &delta, 4).unwrap();
        assert_eq!(run.entries(), dense_diff(&old, &new, 4).as_slice());
    }
}
