//! Canonical dense indexing of the label-path domain.
//!
//! The catalog stores `f` values in a flat vector indexed by the *canonical*
//! encoding: paths grouped by length (shorter first), then base-`n`
//! positional value of the label-id digits. This is the "numerical ordering
//! with identity ranking" — a storage layout, not one of the paper's
//! candidate orderings; `phe-core` permutes it into each ordering under
//! study.

use phe_graph::LabelId;

/// Bijection between label paths (`&[LabelId]`, length `1..=k` over an
/// `n`-label alphabet) and dense indexes `[0, Σ n^i)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathEncoding {
    label_count: u16,
    max_len: usize,
}

/// The largest addressable path domain, `Σ n^i < 2^48` entries. Canonical
/// indexes beyond this no longer fit the catalog index space.
pub const MAX_DOMAIN_SIZE: u128 = 1 << 48;

impl PathEncoding {
    /// Creates an encoding for paths of length `1..=max_len` over
    /// `label_count` labels.
    ///
    /// # Panics
    /// Panics if the domain does not fit in memory-addressable space
    /// (`Σ n^i ≥ 2^48`), if `label_count == 0`, or if `max_len == 0`.
    /// Use [`PathEncoding::try_new`] for a checked error instead.
    pub fn new(label_count: usize, max_len: usize) -> PathEncoding {
        match Self::try_new(label_count, max_len) {
            Ok(encoding) => encoding,
            Err(e) => panic!("{e}"),
        }
    }

    /// Checked variant of [`PathEncoding::new`]: a degenerate alphabet or
    /// a domain `Σ n^i ≥ 2^48` is reported as an error instead of a panic,
    /// so callers probing large `(|L|, k)` configurations can refuse them
    /// gracefully.
    pub fn try_new(
        label_count: usize,
        max_len: usize,
    ) -> Result<PathEncoding, crate::catalog::CatalogError> {
        use crate::catalog::CatalogError;
        if label_count == 0 || label_count > u16::MAX as usize {
            return Err(CatalogError::BadAlphabet { label_count });
        }
        if max_len == 0 {
            return Err(CatalogError::ZeroLength);
        }
        let size = domain_size_u128(label_count as u128, max_len);
        if size >= MAX_DOMAIN_SIZE {
            return Err(CatalogError::DomainTooLarge {
                label_count,
                max_len,
                size,
                limit: MAX_DOMAIN_SIZE,
            });
        }
        Ok(PathEncoding {
            label_count: label_count as u16,
            max_len,
        })
    }

    /// Number of labels `n`.
    #[inline]
    pub fn label_count(&self) -> usize {
        self.label_count as usize
    }

    /// Maximum path length `k`.
    #[inline]
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Total number of label paths, `Σ_{i=1..k} n^i`.
    pub fn domain_size(&self) -> usize {
        domain_size_u128(self.label_count as u128, self.max_len) as usize
    }

    /// Number of paths strictly shorter than `len` — the offset of the
    /// length-`len` block.
    pub fn offset_of_length(&self, len: usize) -> usize {
        domain_size_u128(self.label_count as u128, len - 1) as usize
    }

    /// Encodes a path into its canonical index.
    ///
    /// # Panics
    /// Panics if the path is empty, longer than `max_len`, or mentions a
    /// label outside the alphabet.
    pub fn encode(&self, path: &[LabelId]) -> usize {
        let m = path.len();
        assert!(m >= 1 && m <= self.max_len, "path length {m} out of range");
        let n = self.label_count as usize;
        let mut value = 0usize;
        for &l in path {
            assert!(l.index() < n, "label {l} outside alphabet of {n}");
            value = value * n + l.index();
        }
        self.offset_of_length(m) + value
    }

    /// Decodes a canonical index back into a path.
    ///
    /// # Panics
    /// Panics if `index` is outside the domain.
    pub fn decode(&self, index: usize) -> Vec<LabelId> {
        let mut out = Vec::new();
        self.decode_into(index, &mut out);
        out
    }

    /// Decodes into a caller-provided buffer (cleared first), avoiding
    /// allocation in hot loops.
    pub fn decode_into(&self, index: usize, out: &mut Vec<LabelId>) {
        out.clear();
        let n = self.label_count as usize;
        let mut m = 1usize;
        let mut block = n;
        let mut rem = index;
        while rem >= block {
            rem -= block;
            m += 1;
            assert!(m <= self.max_len, "index {index} outside domain");
            block = block.checked_mul(n).expect("domain overflow");
        }
        out.resize(m, LabelId(0));
        let mut value = rem;
        for slot in out.iter_mut().rev() {
            *slot = LabelId((value % n) as u16);
            value /= n;
        }
    }

    /// Iterates all paths in canonical order.
    pub fn iter_paths(&self) -> impl Iterator<Item = Vec<LabelId>> + '_ {
        (0..self.domain_size()).map(move |i| self.decode(i))
    }
}

fn domain_size_u128(n: u128, k: usize) -> u128 {
    let mut total = 0u128;
    let mut power = 1u128;
    for _ in 0..k {
        power *= n;
        total += power;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(x: u16) -> LabelId {
        LabelId(x)
    }

    #[test]
    fn domain_sizes_match_formula() {
        assert_eq!(PathEncoding::new(3, 2).domain_size(), 3 + 9);
        assert_eq!(PathEncoding::new(6, 3).domain_size(), 6 + 36 + 216);
        // The paper's k=6 / 6-label domain (the text says 55996; Σ 6^i = 55986).
        assert_eq!(PathEncoding::new(6, 6).domain_size(), 55986);
    }

    #[test]
    fn encode_is_length_major() {
        let e = PathEncoding::new(3, 2);
        assert_eq!(e.encode(&[l(0)]), 0);
        assert_eq!(e.encode(&[l(1)]), 1);
        assert_eq!(e.encode(&[l(2)]), 2);
        assert_eq!(e.encode(&[l(0), l(0)]), 3);
        assert_eq!(e.encode(&[l(0), l(1)]), 4);
        assert_eq!(e.encode(&[l(2), l(2)]), 11);
    }

    #[test]
    fn decode_inverts_encode_exhaustively() {
        let e = PathEncoding::new(4, 3);
        for i in 0..e.domain_size() {
            let p = e.decode(i);
            assert_eq!(e.encode(&p), i, "round trip failed at {i} ({p:?})");
        }
    }

    #[test]
    fn iter_paths_is_ordered_and_complete() {
        let e = PathEncoding::new(2, 3);
        let all: Vec<Vec<LabelId>> = e.iter_paths().collect();
        assert_eq!(all.len(), 2 + 4 + 8);
        assert_eq!(all[0], vec![l(0)]);
        assert_eq!(all[2], vec![l(0), l(0)]);
        assert_eq!(all[13], vec![l(1), l(1), l(1)]);
    }

    #[test]
    fn offsets() {
        let e = PathEncoding::new(6, 3);
        assert_eq!(e.offset_of_length(1), 0);
        assert_eq!(e.offset_of_length(2), 6);
        assert_eq!(e.offset_of_length(3), 42);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn encode_rejects_long_path() {
        let e = PathEncoding::new(2, 2);
        e.encode(&[l(0), l(0), l(0)]);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn decode_rejects_out_of_domain() {
        let e = PathEncoding::new(2, 2);
        e.decode(6);
    }

    #[test]
    fn decode_into_reuses_buffer() {
        let e = PathEncoding::new(3, 3);
        let mut buf = Vec::new();
        e.decode_into(0, &mut buf);
        assert_eq!(buf, vec![l(0)]);
        e.decode_into(e.domain_size() - 1, &mut buf);
        assert_eq!(buf, vec![l(2), l(2), l(2)]);
    }
}
