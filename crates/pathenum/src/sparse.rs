//! Sparse selectivity catalogs: only the *realized* label paths.
//!
//! The dense [`SelectivityCatalog`] stores `f(ℓ)` for every path in the
//! domain `Σ |L|^i` — including the overwhelming majority that never occur
//! in the graph. Real graphs realize only the paths reachable by actual
//! edge chains, a set bounded by the trie of non-empty path relations, so
//! a catalog of sorted `(canonical_index, count)` runs scales with the
//! *graph*, not with the combinatorial domain. That is what lets the
//! build pipeline reach `(|L|, k)` configurations whose dense vector would
//! not even allocate (see [`crate::catalog::DENSE_DOMAIN_LIMIT`]).
//!
//! ## Storage: block-compressed runs
//!
//! The entries live in a [`CompressedRuns`]: ≤ 128-entry blocks of
//! `(index_gap, count)` pairs behind a per-block skip index, each block
//! encoded by whichever of the two codecs (per-entry varints, or
//! frame-of-reference bit-packed lanes) is smaller — see [`crate::runs`]
//! for the tagged format. Canonical indexes cluster by shared label
//! prefixes, so gaps are small and the flat 16 B/entry of a
//! `Vec<(u64, u64)>` compresses to a few bytes/entry. Consumers never see
//! the pair vector: [`SparseCatalog::iter`] hands out the zero-alloc
//! block cursor, [`SparseCatalog::selectivity_at`] binary-searches the
//! skip index and decodes one block, and the merges below operate at
//! block granularity (untouched blocks copy wholesale, without a
//! re-encode).
//!
//! Construction mirrors the dense builders:
//!
//! * [`SparseCatalog::compute`] — the shared-prefix trie DFS, emitting one
//!   entry per non-empty relation;
//! * [`SparseCatalog::compute_parallel`] — sharded per-thread counting
//!   over `(label, source-range)` tasks; each worker sorts, coalesces,
//!   and **compresses** its local entries into a run, and the runs are
//!   combined by [`CompressedRuns::merge_many`] (k-way heap merge with
//!   block-wise wholesale copies) that sums counts of equal indexes;
//! * [`SparseCatalog::compute_parallel_spilling`] — the same build under
//!   a memory budget: a worker whose local entry buffer exceeds its
//!   budget share compresses it and **spills it to a shard file**
//!   ([`crate::file`]); the final k-way merge streams the spilled shards
//!   back one block at a time, so peak memory tracks the budget plus one
//!   block per shard instead of the whole entry set;
//! * [`SparseCatalog::from_dense`] / [`SparseCatalog::to_dense`] — lossless
//!   conversions (the dense direction is guarded by the materialization
//!   limit), which make the dense catalog the test oracle for this one;
//! * [`SparseCatalog::merge_delta`] — incremental maintenance: folds a
//!   signed [`crate::delta::SparseDeltaRun`] (the outcome of
//!   [`crate::delta::compute_delta`] over a graph change) into this
//!   catalog via [`CompressedRuns::merge_signed`] — blocks the delta does
//!   not touch transfer raw — producing the catalog of the changed graph
//!   without a recount.
//!
//! ## The run invariants
//!
//! Every operation above relies on — and preserves — the same contract
//! over the compressed entry stream:
//!
//! 1. **Run ordering.** Entries are sorted by canonical index, *strictly*
//!    increasing: one entry per realized path, no duplicates. The skip
//!    index gives `O(log #blocks + B)` lookups, and any two runs (or a
//!    run and a delta) merge in one linear block-wise pass.
//! 2. **No explicit zeros.** Every stored count is `> 0`; an index absent
//!    from the run *is* the zero. This is what makes the representation
//!    size `O(realized paths)` and lets the histogram builders charge
//!    O(1) per zero gap.
//! 3. **Merge = index-wise sum.** Per-thread shards each count a disjoint
//!    source range, so equal indexes across runs *add* (the k-way merge
//!    does exactly that, yielding invariants 1–2 again).
//! 4. **Cancellation on delta merge.** A delta entry is a signed
//!    difference; summing it into the base count may produce 0, and the
//!    merged run must *drop* that entry (invariant 2), not store a zero —
//!    otherwise the merged catalog would not be bit-identical to a fresh
//!    recount of the changed graph. A sum below zero means the delta was
//!    computed against a different base and is refused
//!    ([`CatalogError::DeltaUnderflow`]).
//! 5. **Block boundaries are a storage artifact.** Wholesale copies keep
//!    the source's boundaries, re-encodes re-chunk at the block capacity;
//!    equality ([`PartialEq`]) and every consumer observe the *decoded
//!    stream* only, so differently-blocked runs with equal content are
//!    the same catalog.
//!
//! Entries are length-partitioned for free: the canonical encoding is
//! length-major, so a sort by index groups paths by length first.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use phe_graph::{FixedBitSet, Graph, LabelId};

use crate::catalog::{check_dense_domain, CatalogError, SelectivityCatalog};
use crate::encoding::PathEncoding;
use crate::file::{open_shard, write_runs_file, ShardReader};
use crate::parallel::build_tasks;
use crate::relation::PathRelation;
use crate::runs::{merge_streams, BlockMeta, CompressedRuns, MemStream, RunStream, RunsCursor};

/// Bytes one uncompressed `(u64, u64)` entry occupies in a worker's
/// local buffer — the unit the spill budget is accounted in.
const ENTRY_BYTES: usize = std::mem::size_of::<(u64, u64)>();

/// Distinguishes concurrent spilling builds sharing one temp dir.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Accounting from a budgeted build
/// ([`SparseCatalog::compute_parallel_spilling`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Shard files written to disk during counting.
    pub shards: usize,
    /// Total size of the spilled shard files in bytes.
    pub bytes: u64,
}

/// A merge source for the budgeted build: a worker's in-memory
/// remainder, or a spilled shard streamed back from disk.
enum BuildStream<'a> {
    Mem(MemStream<'a>),
    Disk(ShardReader),
}

impl RunStream for BuildStream<'_> {
    fn head_block(&self) -> Option<BlockMeta> {
        match self {
            BuildStream::Mem(s) => s.head_block(),
            BuildStream::Disk(s) => s.head_block(),
        }
    }

    fn next_entry(&mut self) -> Option<(u64, u64)> {
        match self {
            BuildStream::Mem(s) => s.next_entry(),
            BuildStream::Disk(s) => s.next_entry(),
        }
    }

    fn take_block(&mut self, meta: &BlockMeta) -> &[u8] {
        match self {
            BuildStream::Mem(s) => s.take_block(meta),
            BuildStream::Disk(s) => s.take_block(meta),
        }
    }
}

fn spill_err(e: impl std::fmt::Display) -> CatalogError {
    CatalogError::SpillIo {
        message: e.to_string(),
    }
}

/// The sparse table of path selectivities: block-compressed, sorted,
/// duplicate-free `(canonical_index, count)` entries with `count > 0`;
/// every index absent from the entries has selectivity 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseCatalog {
    encoding: PathEncoding,
    /// Sorted by canonical index, strictly increasing, counts non-zero.
    runs: CompressedRuns,
}

impl SparseCatalog {
    /// Computes the sparse catalog with the shared-prefix trie traversal
    /// (single-threaded).
    ///
    /// # Errors
    /// [`CatalogError::DomainTooLarge`] when `Σ |L|^i` overflows the
    /// canonical index space — the one limit the sparse representation
    /// still has.
    pub fn compute(graph: &Graph, k: usize) -> Result<SparseCatalog, CatalogError> {
        let encoding = PathEncoding::try_new(graph.label_count().max(1), k)?;
        let mut entries = Vec::new();
        {
            let _count = phe_obs::span::stage("build.count");
            if graph.label_count() > 0 {
                let mut scratch = FixedBitSet::new(graph.vertex_count());
                let mut path = Vec::with_capacity(k);
                for label in graph.label_ids() {
                    let rel = PathRelation::from_label(graph, label);
                    collect_subtree(
                        graph,
                        &encoding,
                        &mut entries,
                        &rel,
                        label,
                        &mut path,
                        &mut scratch,
                        k,
                    );
                }
            }
        }
        let _merge = phe_obs::span::stage("build.merge");
        entries.sort_unstable_by_key(|&(index, _)| index);
        Ok(SparseCatalog {
            encoding,
            runs: CompressedRuns::from_entries(&entries),
        })
    }

    /// Computes the sparse catalog with `threads` workers (0 ⇒ one per
    /// core): the label × source-range task grid is counted into
    /// per-thread shards, each shard is sorted, coalesced, and compressed
    /// into a run, and the runs are k-way merged at block granularity.
    /// Produces entries identical to [`SparseCatalog::compute`].
    ///
    /// # Errors
    /// [`CatalogError::DomainTooLarge`] as for [`SparseCatalog::compute`].
    pub fn compute_parallel(
        graph: &Graph,
        k: usize,
        threads: usize,
    ) -> Result<SparseCatalog, CatalogError> {
        Self::compute_parallel_spilling(graph, k, threads, None).map(|(catalog, _)| catalog)
    }

    /// [`SparseCatalog::compute_parallel`] under a memory budget: a
    /// worker whose uncompressed local entry buffer crosses its share of
    /// `memory_budget` bytes compresses it and spills it to a shard file
    /// in the system temp dir; the final k-way merge streams the spilled
    /// shards back one block at a time. Entries are identical to the
    /// unbudgeted build; the returned [`SpillStats`] say how much hit
    /// disk. `None` (or a budget nothing exceeds) never touches the
    /// filesystem.
    ///
    /// # Errors
    /// [`CatalogError::DomainTooLarge`] as for [`SparseCatalog::compute`];
    /// [`CatalogError::SpillIo`] when a shard file cannot be written or
    /// re-read (shards are cleaned up either way).
    pub fn compute_parallel_spilling(
        graph: &Graph,
        k: usize,
        threads: usize,
        memory_budget: Option<usize>,
    ) -> Result<(SparseCatalog, SpillStats), CatalogError> {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        if graph.label_count() == 0
            || graph.vertex_count() == 0
            || (threads <= 1 && memory_budget.is_none())
        {
            return Self::compute(graph, k).map(|c| (c, SpillStats::default()));
        }
        let encoding = PathEncoding::try_new(graph.label_count().max(1), k)?;

        // Each worker gets an equal share of the budget, measured
        // against its *uncompressed* local buffer (16 B/entry).
        let per_thread_budget = memory_budget.map(|b| (b / threads).max(ENTRY_BYTES));
        let spill_dir = match memory_budget {
            Some(_) => {
                // ORDERING: the sequence only needs uniqueness for the
                // directory name; the RMW provides that without ordering.
                let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
                let dir =
                    std::env::temp_dir().join(format!("phe-spill-{}-{seq}", std::process::id()));
                std::fs::create_dir_all(&dir).map_err(spill_err)?;
                Some(dir)
            }
            None => None,
        };

        let tasks = build_tasks(graph, threads);
        let next_task = AtomicUsize::new(0);
        let runs: Mutex<Vec<CompressedRuns>> = Mutex::new(Vec::with_capacity(threads));
        let shard_paths: Mutex<Vec<PathBuf>> = Mutex::new(Vec::new());
        let shard_seq = AtomicUsize::new(0);
        let spilled_bytes = AtomicU64::new(0);
        let spill_failure: Mutex<Option<String>> = Mutex::new(None);

        let count_span = phe_obs::span::stage("build.count");
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut local: Vec<(u64, u64)> = Vec::new();
                    let mut scratch = FixedBitSet::new(graph.vertex_count());
                    let mut path = Vec::with_capacity(k);
                    loop {
                        // ORDERING: work-stealing ticket — each worker
                        // only needs a unique index into the read-only
                        // task list, which the RMW alone guarantees.
                        let i = next_task.fetch_add(1, Ordering::Relaxed);
                        let Some(&(label, lo, hi)) = tasks.get(i) else {
                            break;
                        };
                        let rel = PathRelation::from_label_source_range(graph, label, lo, hi);
                        if !rel.is_empty() {
                            collect_subtree(
                                graph,
                                &encoding,
                                &mut local,
                                &rel,
                                label,
                                &mut path,
                                &mut scratch,
                                k,
                            );
                        }
                        // Past the budget: compress what we have and
                        // push it out to a shard file, freeing the
                        // buffer. Coalescing first can shrink the
                        // buffer back under budget without IO.
                        let Some(limit) = per_thread_budget else {
                            continue;
                        };
                        if local.len() * ENTRY_BYTES < limit {
                            continue;
                        }
                        coalesce_sorted(&mut local);
                        if local.len() * ENTRY_BYTES < limit {
                            continue;
                        }
                        let shard = CompressedRuns::from_entries(&local);
                        local = Vec::new();
                        let dir = spill_dir.as_ref().expect("budget implies a spill dir");
                        // ORDERING: unique shard file name; no ordering.
                        let n = shard_seq.fetch_add(1, Ordering::Relaxed);
                        let path = dir.join(format!("shard-{n}.phc"));
                        match write_runs_file(&path, &encoding, &shard) {
                            Ok(written) => {
                                // ORDERING: statistics counter read only
                                // after scope join (which synchronizes).
                                spilled_bytes.fetch_add(written, Ordering::Relaxed);
                                shard_paths.lock().expect("shard mutex poisoned").push(path);
                            }
                            Err(e) => {
                                *spill_failure.lock().expect("failure mutex poisoned") =
                                    Some(e.to_string());
                                break;
                            }
                        }
                    }
                    // Shard-local sort + coalesce: the same path appears
                    // once per source-range task it was counted under.
                    // Compressing here bounds the peak memory of the
                    // combine step to the compressed shards.
                    coalesce_sorted(&mut local);
                    let shard = CompressedRuns::from_entries(&local);
                    runs.lock().expect("run mutex poisoned").push(shard);
                });
            }
        });

        drop(count_span);

        let mem_runs = runs.into_inner().expect("run mutex poisoned");
        let shard_paths = shard_paths.into_inner().expect("shard mutex poisoned");
        let failure = spill_failure.into_inner().expect("failure mutex poisoned");
        let merged = (|| -> Result<CompressedRuns, CatalogError> {
            if let Some(message) = failure {
                return Err(CatalogError::SpillIo { message });
            }
            let _merge = phe_obs::span::stage("build.merge");
            if shard_paths.is_empty() {
                return Ok(CompressedRuns::merge_many(&mem_runs));
            }
            let mut streams: Vec<BuildStream<'_>> =
                Vec::with_capacity(mem_runs.len() + shard_paths.len());
            streams.extend(
                mem_runs
                    .iter()
                    .map(|run| BuildStream::Mem(MemStream::new(run))),
            );
            for path in &shard_paths {
                streams.push(BuildStream::Disk(open_shard(path).map_err(spill_err)?));
            }
            Ok(merge_streams(streams))
        })();
        if let Some(dir) = &spill_dir {
            let _ = std::fs::remove_dir_all(dir);
        }
        let stats = SpillStats {
            shards: shard_paths.len(),
            // ORDERING: thread::scope already joined every writer, so
            // this read is sequenced after all adds.
            bytes: spilled_bytes.load(Ordering::Relaxed),
        };
        Ok((
            SparseCatalog {
                encoding,
                runs: merged?,
            },
            stats,
        ))
    }

    /// Converts a dense catalog by dropping its zero entries. Lossless:
    /// [`SparseCatalog::to_dense`] restores the original exactly.
    pub fn from_dense(catalog: &SelectivityCatalog) -> SparseCatalog {
        let runs = CompressedRuns::from_sorted_iter(
            catalog
                .counts()
                .iter()
                .enumerate()
                .filter(|(_, &count)| count > 0)
                .map(|(index, &count)| (index as u64, count)),
        );
        SparseCatalog {
            encoding: *catalog.encoding(),
            runs,
        }
    }

    /// Wraps an already-validated compressed run (snapshot restore). The
    /// entries must uphold the module invariants and stay inside the
    /// encoding's domain.
    ///
    /// # Errors
    /// [`CatalogError::CountsLengthMismatch`] when an entry index falls
    /// outside `Σ |L|^i` — the run was encoded for a different domain.
    pub fn from_runs(
        encoding: PathEncoding,
        runs: CompressedRuns,
    ) -> Result<SparseCatalog, CatalogError> {
        let domain = encoding.domain_size() as u64;
        if let Some(meta) = runs.skip_index().last().filter(|m| m.last_index >= domain) {
            return Err(CatalogError::CountsLengthMismatch {
                expected: encoding.domain_size(),
                found: meta.last_index as usize,
            });
        }
        Ok(SparseCatalog { encoding, runs })
    }

    /// Whether [`SparseCatalog::to_dense`] would succeed — a
    /// microseconds-cheap precondition callers can test *before* spending
    /// a full build on a pipeline that will need the dense form.
    ///
    /// # Errors
    /// [`CatalogError::DenseTooLarge`] past
    /// [`crate::catalog::DENSE_DOMAIN_LIMIT`].
    pub fn check_dense_feasible(&self) -> Result<(), CatalogError> {
        check_dense_domain(&self.encoding)
    }

    /// Materializes the dense catalog (zeros included).
    ///
    /// # Errors
    /// [`CatalogError::DenseTooLarge`] when the domain exceeds
    /// [`crate::catalog::DENSE_DOMAIN_LIMIT`] — exactly the configurations
    /// the sparse catalog exists for.
    pub fn to_dense(&self) -> Result<SelectivityCatalog, CatalogError> {
        check_dense_domain(&self.encoding)?;
        let mut counts = vec![0u64; self.encoding.domain_size()];
        for (index, count) in self.runs.iter() {
            counts[index as usize] = count;
        }
        SelectivityCatalog::try_from_counts(self.encoding, counts)
    }

    /// Folds a signed delta run into this catalog, yielding the catalog of
    /// the changed graph: a block-wise merge that copies untouched blocks
    /// wholesale, sums matching indexes, admits new ones, and **cancels**
    /// entries whose count reaches zero (module invariant 4).
    /// Bit-identical to recounting the changed graph from scratch — the
    /// property `tests/sparse_equivalence.rs` exercises end-to-end.
    ///
    /// # Errors
    /// [`CatalogError::DeltaEncodingMismatch`] when the run's encoding
    /// differs from this catalog's, and [`CatalogError::DeltaUnderflow`]
    /// when a merged count would go negative (the run was computed against
    /// a different base graph).
    pub fn merge_delta(
        &self,
        delta: &crate::delta::SparseDeltaRun,
    ) -> Result<SparseCatalog, CatalogError> {
        if *delta.encoding() != self.encoding {
            return Err(CatalogError::DeltaEncodingMismatch {
                catalog: (self.encoding.label_count(), self.encoding.max_len()),
                delta: (delta.encoding().label_count(), delta.encoding().max_len()),
            });
        }
        let runs =
            self.runs
                .merge_signed(delta.entries())
                .map_err(|e| CatalogError::DeltaUnderflow {
                    canonical_index: e.index,
                    count: e.count,
                    delta: e.delta,
                })?;
        Ok(SparseCatalog {
            encoding: self.encoding,
            runs,
        })
    }

    /// The selectivity `f(ℓ)` of `path` (0 when unrealized).
    ///
    /// # Panics
    /// Panics if the path is empty, longer than `k`, or mentions an
    /// unknown label.
    pub fn selectivity(&self, path: &[LabelId]) -> u64 {
        self.selectivity_at(self.encoding.encode(path) as u64)
    }

    /// The selectivity at a canonical index: binary search over the skip
    /// index, then one block decode — `O(log #blocks + B)`.
    pub fn selectivity_at(&self, canonical_index: u64) -> u64 {
        self.runs.get(canonical_index).unwrap_or(0)
    }

    /// The canonical encoding (for permuting into domain orderings).
    #[inline]
    pub fn encoding(&self) -> &PathEncoding {
        &self.encoding
    }

    /// A zero-alloc streaming pass over the non-zero
    /// `(canonical_index, count)` entries, sorted by index — the single
    /// access path (there is no pair vector to borrow).
    #[inline]
    pub fn iter(&self) -> RunsCursor<'_> {
        self.runs.iter()
    }

    /// The underlying block-compressed run (block-granular consumers:
    /// snapshots, mergers, footprint reports).
    #[inline]
    pub fn runs(&self) -> &CompressedRuns {
        &self.runs
    }

    /// Number of realized (non-zero) paths.
    #[inline]
    pub fn nonzero_count(&self) -> usize {
        self.runs.len()
    }

    /// Domain size `Σ |L|^i` — the *logical* length, zeros included.
    #[inline]
    pub fn len(&self) -> usize {
        self.encoding.domain_size()
    }

    /// Whether the domain is empty (never: the encoding guarantees ≥ 1
    /// label), kept for `len`/`is_empty` pairing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of paths with zero selectivity.
    pub fn zero_count(&self) -> usize {
        self.len() - self.nonzero_count()
    }

    /// Sum of all selectivities.
    pub fn total_mass(&self) -> u64 {
        self.runs.total_mass()
    }

    /// Iterates `(path, f(path))` over the realized paths in canonical
    /// order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (Vec<LabelId>, u64)> + '_ {
        self.runs
            .iter()
            .map(move |(index, count)| (self.encoding.decode(index as usize), count))
    }

    /// Resident bytes of this representation: compressed entry stream +
    /// skip index + struct overhead — the honest footprint, not just the
    /// payload.
    pub fn size_bytes(&self) -> usize {
        self.runs.size_bytes() + std::mem::size_of::<PathEncoding>()
    }

    /// Bytes the flat `Vec<(u64, u64)>` pair representation would need —
    /// the baseline the compression ratio is reported against.
    pub fn plain_bytes(&self) -> usize {
        self.runs.plain_bytes()
    }

    /// Bytes the equivalent dense count vector would need, computed in
    /// `u128` so infeasible configurations report instead of wrapping.
    pub fn dense_bytes(&self) -> u128 {
        self.len() as u128 * std::mem::size_of::<u64>() as u128
    }
}

/// DFS over the label extensions of `rel` (the relation of `…/label`),
/// pushing one `(canonical_index, pair_count)` entry per non-empty
/// relation. Entries arrive in trie order, *not* canonical order.
#[allow(clippy::too_many_arguments)]
fn collect_subtree(
    graph: &Graph,
    encoding: &PathEncoding,
    entries: &mut Vec<(u64, u64)>,
    rel: &PathRelation,
    label: LabelId,
    path: &mut Vec<LabelId>,
    scratch: &mut FixedBitSet,
    k: usize,
) {
    path.push(label);
    let count = rel.pair_count();
    if count > 0 {
        entries.push((encoding.encode(path) as u64, count));
        if path.len() < k {
            for next_label in graph.label_ids() {
                let next = rel.compose(graph, next_label, scratch);
                collect_subtree(
                    graph, encoding, entries, &next, next_label, path, scratch, k,
                );
            }
        }
    }
    path.pop();
}

/// Sorts a shard and sums duplicate indexes in place.
fn coalesce_sorted(entries: &mut Vec<(u64, u64)>) {
    entries.sort_unstable_by_key(|&(index, _)| index);
    let mut write = 0usize;
    for read in 0..entries.len() {
        if write > 0 && entries[write - 1].0 == entries[read].0 {
            entries[write - 1].1 += entries[read].1;
        } else {
            entries[write] = entries[read];
            write += 1;
        }
    }
    entries.truncate(write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use phe_graph::GraphBuilder;

    fn dense_graph(n: u32, labels: u16, seed: u64) -> Graph {
        let mut b = GraphBuilder::with_numeric_labels(n, labels);
        let mut x = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        for _ in 0..(n as usize * 6) {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let s = (x >> 33) as u32 % n;
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let t = (x >> 33) as u32 % n;
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let l = ((x >> 33) as u16) % labels;
            b.add_edge(phe_graph::VertexId(s), LabelId(l), phe_graph::VertexId(t));
        }
        b.build()
    }

    #[test]
    fn sequential_matches_dense_oracle() {
        let g = dense_graph(50, 3, 7);
        let dense = SelectivityCatalog::compute(&g, 4);
        let sparse = SparseCatalog::compute(&g, 4).unwrap();
        assert_eq!(sparse, SparseCatalog::from_dense(&dense));
        assert_eq!(sparse.to_dense().unwrap().counts(), dense.counts());
        assert_eq!(sparse.total_mass(), dense.total_mass());
        assert_eq!(sparse.zero_count(), dense.zero_count());
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = dense_graph(60, 3, 42);
        let seq = SparseCatalog::compute(&g, 4).unwrap();
        for threads in [2, 3, 8] {
            let par = SparseCatalog::compute_parallel(&g, 4, threads).unwrap();
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn spilling_build_matches_in_memory() {
        let g = dense_graph(60, 3, 42);
        let (baseline, none) = SparseCatalog::compute_parallel_spilling(&g, 4, 3, None).unwrap();
        assert_eq!(none, SpillStats::default(), "no budget ⇒ no spill");

        // A budget far under the entry set (the k=4 domain here is 120
        // paths ≈ 2 KB uncompressed) forces repeated spills; the merged
        // catalog must be entry-identical to the in-memory build.
        let (spilled, stats) =
            SparseCatalog::compute_parallel_spilling(&g, 4, 3, Some(768)).unwrap();
        assert!(stats.shards > 0, "a 768 B budget must spill");
        assert!(stats.bytes > 0);
        assert_eq!(spilled, baseline, "spilled build ≡ in-memory build");
        assert_eq!(spilled.total_mass(), baseline.total_mass());
        assert_eq!(spilled.nonzero_count(), baseline.nonzero_count());

        // A generous budget never touches the filesystem.
        let (unspilled, stats) =
            SparseCatalog::compute_parallel_spilling(&g, 4, 3, Some(1 << 30)).unwrap();
        assert_eq!(stats, SpillStats::default());
        assert_eq!(unspilled, baseline);

        // Single-threaded budgeted builds spill too.
        let (single, stats) =
            SparseCatalog::compute_parallel_spilling(&g, 4, 1, Some(768)).unwrap();
        assert!(stats.shards > 0);
        assert_eq!(single, baseline);
    }

    #[test]
    fn selectivity_lookups_match_dense() {
        let g = dense_graph(40, 4, 9);
        let dense = SelectivityCatalog::compute(&g, 3);
        let sparse = SparseCatalog::compute(&g, 3).unwrap();
        for index in 0..dense.len() {
            assert_eq!(
                sparse.selectivity_at(index as u64),
                dense.selectivity_at(index),
                "index {index}"
            );
        }
        assert_eq!(
            sparse.selectivity(&[LabelId(0), LabelId(1)]),
            dense.selectivity(&[LabelId(0), LabelId(1)])
        );
    }

    #[test]
    fn iter_is_sorted_and_positive() {
        let g = dense_graph(30, 2, 3);
        let sparse = SparseCatalog::compute(&g, 3).unwrap();
        let entries: Vec<(u64, u64)> = sparse.iter().collect();
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(entries.iter().all(|&(_, c)| c > 0));
        assert_eq!(sparse.iter_nonzero().count(), sparse.nonzero_count());
    }

    #[test]
    fn compressed_footprint_beats_plain_pairs() {
        let g = dense_graph(60, 4, 21);
        let sparse = SparseCatalog::compute(&g, 4).unwrap();
        assert!(sparse.nonzero_count() > 100, "{}", sparse.nonzero_count());
        assert!(
            sparse.size_bytes() < sparse.plain_bytes(),
            "compressed {} must undercut plain {}",
            sparse.size_bytes(),
            sparse.plain_bytes()
        );
        // The skip index and struct overhead are part of the report.
        assert!(
            sparse.size_bytes()
                > sparse.runs().bytes().len() + std::mem::size_of_val(sparse.runs().skip_index())
                    - 1
        );
    }

    #[test]
    fn handles_infeasible_dense_domains() {
        // |L| = 64, k = 6: the dense vector would be ~550 GB; sparse build
        // succeeds and conversion back is refused with a checked error.
        let g = dense_graph(30, 64, 5);
        let sparse = SparseCatalog::compute(&g, 6).unwrap();
        assert!(sparse.nonzero_count() > 0);
        assert!(sparse.dense_bytes() > 1 << 39);
        assert!((sparse.size_bytes() as u128) < sparse.dense_bytes() / 10);
        assert!(matches!(
            sparse.to_dense(),
            Err(CatalogError::DenseTooLarge { .. })
        ));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let c = SparseCatalog::compute_parallel(&g, 3, 4).unwrap();
        assert_eq!(c.len(), 3); // one pseudo-label alphabet
        assert_eq!(c.nonzero_count(), 0);
        assert_eq!(c.total_mass(), 0);
    }

    #[test]
    fn from_runs_validates_the_domain() {
        let encoding = PathEncoding::new(2, 2); // domain = 2 + 4 = 6
        let ok = CompressedRuns::from_entries(&[(0, 3), (5, 1)]);
        let catalog = SparseCatalog::from_runs(encoding, ok).unwrap();
        assert_eq!(catalog.selectivity_at(5), 1);
        let outside = CompressedRuns::from_entries(&[(0, 3), (6, 1)]);
        assert!(matches!(
            SparseCatalog::from_runs(encoding, outside),
            Err(CatalogError::CountsLengthMismatch { .. })
        ));
    }

    #[test]
    fn merge_delta_sums_cancels_and_admits() {
        // A chain leaves most of the domain unrealized, so cancellation,
        // admission, and untouched entries are all exercised.
        let mut b = GraphBuilder::new();
        b.add_edge_named(0, "a", 1);
        b.add_edge_named(1, "b", 2);
        b.add_edge_named(2, "a", 3);
        let g = b.build();
        let base = SparseCatalog::compute(&g, 3).unwrap();
        let (i0, c0) = base.iter().next().unwrap();
        let (i1, c1) = base.iter().nth(1).unwrap();
        let absent = (0..base.len() as u64)
            .find(|&i| base.selectivity_at(i) == 0)
            .expect("some path is unrealized");
        let delta = crate::delta::tests_support::run_from_entries(
            *base.encoding(),
            vec![(i0, 5), (i1, -(c1 as i64)), (absent, 7)],
        );
        let merged = base.merge_delta(&delta).unwrap();
        assert_eq!(merged.selectivity_at(i0), c0 + 5);
        assert_eq!(merged.selectivity_at(i1), 0, "cancelled entry dropped");
        assert_eq!(merged.selectivity_at(absent), 7, "new entry admitted");
        assert_eq!(
            merged.nonzero_count(),
            base.nonzero_count(), // one dropped, one added
        );
        assert_eq!(
            merged.total_mass() as i64,
            base.total_mass() as i64 + 5 - c1 as i64 + 7
        );

        // Underflow: a run computed against some other graph is refused.
        let bad = crate::delta::tests_support::run_from_entries(
            *base.encoding(),
            vec![(i0, -(c0 as i64) - 1)],
        );
        assert!(matches!(
            base.merge_delta(&bad),
            Err(CatalogError::DeltaUnderflow { .. })
        ));

        // Encoding mismatch is refused.
        let other = crate::delta::tests_support::run_from_entries(
            crate::encoding::PathEncoding::new(2, 2),
            vec![],
        );
        assert!(matches!(
            base.merge_delta(&other),
            Err(CatalogError::DeltaEncodingMismatch { .. })
        ));
    }
}
