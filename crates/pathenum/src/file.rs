//! The on-disk catalog file format (`.phc`) and its readers.
//!
//! One flat, checksummed file holds everything needed to serve a
//! [`SparseCatalog`] without re-deriving state:
//!
//! ```text
//! offset  size  field
//! 0       8     magic "PHECAT1\0"
//! 8       8     label_count (u64 LE)
//! 16      8     max_len
//! 24      8     entry count (nnz)
//! 32      8     total mass
//! 40      8     block count B
//! 48      8     payload length in bytes
//! 56      40·B  skip rows: (first_index, last_index, byte_offset,
//!               len, mass) per block, all u64 LE
//! …       …     payload: the tagged block stream (see [`crate::runs`])
//! end−8   8     FNV-1a 64 checksum of every preceding byte
//! ```
//!
//! Two readers share the format:
//!
//! * [`open_catalog_file`] — the **serving** path: maps the file
//!   ([`crate::mmap`]), verifies the checksum, validates the tagged
//!   payload, and hands back a catalog whose byte stream *borrows the
//!   mapping* — the skip index (~0.3 B/entry) is the only per-entry heap
//!   cost, so a serving node's catalog capacity is bounded by disk;
//! * `ShardReader` (crate-private) — the **spill-to-disk build** path:
//!   streams blocks sequentially through a small buffer, one block
//!   resident at a time, so the k-way merge of spilled shards runs in
//!   bounded memory.
//!
//! Files are written to a temporary sibling and renamed into place, and
//! never modified afterwards — the immutability the mmap safety rules
//! ([`crate::mmap`]) require. Spill shards reuse the same writer; being
//! process-private temp files, the shard reader trusts them (a torn
//! shard is a bug, not an input).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use phe_encoding::{fnv1a64, read_u64_le, write_u64_le, Fnv64};

use crate::encoding::PathEncoding;
use crate::mmap::MappedRegion;
use crate::runs::{
    decode_block_head, decode_block_tail, validate_tagged, BlockMeta, CompressedRuns, RunStream,
    BLOCK_ENTRIES,
};
use crate::sparse::SparseCatalog;

/// File magic: format name + version. Bumping the layout bumps the
/// trailing digit.
const MAGIC: &[u8; 8] = b"PHECAT1\0";
/// Fixed-width header length (through the payload-length field).
const HEADER_LEN: usize = 56;
/// Bytes per serialized skip row.
const ROW_LEN: usize = 40;

/// Why a catalog file could not be opened.
#[derive(Debug)]
pub enum CatalogFileError {
    /// Filesystem-level failure (open, map, read).
    Io(io::Error),
    /// The file failed structural validation or its checksum.
    Corrupt(String),
}

impl std::fmt::Display for CatalogFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogFileError::Io(e) => write!(f, "catalog file io error: {e}"),
            CatalogFileError::Corrupt(what) => write!(f, "corrupt catalog file: {what}"),
        }
    }
}

impl std::error::Error for CatalogFileError {}

impl From<io::Error> for CatalogFileError {
    fn from(e: io::Error) -> CatalogFileError {
        CatalogFileError::Io(e)
    }
}

fn corrupt(what: impl Into<String>) -> CatalogFileError {
    CatalogFileError::Corrupt(what.into())
}

/// Writes `catalog` to `path` in the `.phc` format (temp file + rename,
/// so a reader never sees a torn file). Returns the file size in bytes.
pub fn write_catalog_file(path: &Path, catalog: &SparseCatalog) -> io::Result<u64> {
    write_runs_file(path, catalog.encoding(), catalog.runs())
}

/// Writes an encoding-tagged compressed run to `path` — the shared
/// writer behind [`write_catalog_file`] and the build's spill shards.
pub fn write_runs_file(
    path: &Path,
    encoding: &PathEncoding,
    runs: &CompressedRuns,
) -> io::Result<u64> {
    let mut head = Vec::with_capacity(HEADER_LEN + runs.skip_index().len() * ROW_LEN);
    head.extend_from_slice(MAGIC);
    write_u64_le(&mut head, encoding.label_count() as u64);
    write_u64_le(&mut head, encoding.max_len() as u64);
    write_u64_le(&mut head, runs.len() as u64);
    write_u64_le(&mut head, runs.total_mass());
    write_u64_le(&mut head, runs.skip_index().len() as u64);
    write_u64_le(&mut head, runs.payload_bytes() as u64);
    for meta in runs.skip_index() {
        write_u64_le(&mut head, meta.first_index);
        write_u64_le(&mut head, meta.last_index);
        write_u64_le(&mut head, meta.byte_offset as u64);
        write_u64_le(&mut head, meta.len as u64);
        write_u64_le(&mut head, meta.mass);
    }
    let mut hasher = Fnv64::new();
    hasher.update(&head);
    hasher.update(runs.bytes());

    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut file = BufWriter::new(File::create(&tmp)?);
    file.write_all(&head)?;
    file.write_all(runs.bytes())?;
    file.write_all(&hasher.finish().to_le_bytes())?;
    file.into_inner().map_err(io::Error::from)?;
    std::fs::rename(&tmp, path)?;
    Ok((head.len() + runs.payload_bytes() + 8) as u64)
}

/// Opens a `.phc` catalog file for serving: maps it (read-to-heap
/// fallback on platforms without mmap), verifies the checksum, validates
/// the tagged payload, and returns a catalog whose byte stream borrows
/// the mapping — check [`CompressedRuns::is_mapped`] on
/// [`SparseCatalog::runs`] for the residency that was achieved.
///
/// # Errors
/// [`CatalogFileError::Io`] on filesystem failures;
/// [`CatalogFileError::Corrupt`] on a bad magic, checksum mismatch,
/// inconsistent header fields, or an invalid payload stream.
pub fn open_catalog_file(path: &Path) -> Result<SparseCatalog, CatalogFileError> {
    let mut file = File::open(path)?;
    let region = Arc::new(MappedRegion::map_file(&mut file)?);
    let bytes = region.as_slice();
    if bytes.len() < HEADER_LEN + 8 {
        return Err(corrupt(format!("{} bytes is too short", bytes.len())));
    }
    if &bytes[..8] != MAGIC {
        return Err(corrupt("bad magic (not a PHECAT1 file)"));
    }
    let stored_sum = read_u64_le(bytes, bytes.len() - 8).expect("length checked");
    let actual_sum = fnv1a64(&bytes[..bytes.len() - 8]);
    if stored_sum != actual_sum {
        return Err(corrupt(format!(
            "checksum mismatch: stored {stored_sum:#018x}, computed {actual_sum:#018x}"
        )));
    }
    let field = |offset: usize| read_u64_le(bytes, offset).expect("header length checked");
    let label_count = field(8);
    let max_len = field(16);
    let nnz = field(24);
    let total_mass = field(32);
    let block_count = field(40) as usize;
    let payload_len = field(48) as usize;
    let encoding = PathEncoding::try_new(label_count as usize, max_len as usize)
        .map_err(|e| corrupt(e.to_string()))?;
    let rows_len = block_count
        .checked_mul(ROW_LEN)
        .ok_or_else(|| corrupt("block count overflows"))?;
    let payload_off = HEADER_LEN + rows_len;
    let expected_len = payload_off
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(8))
        .ok_or_else(|| corrupt("payload length overflows"))?;
    if bytes.len() != expected_len {
        return Err(corrupt(format!(
            "file is {} bytes, header declares {expected_len}",
            bytes.len()
        )));
    }
    let mut stored_rows = Vec::with_capacity(block_count);
    let mut lens = Vec::with_capacity(block_count);
    for block in 0..block_count {
        let off = HEADER_LEN + block * ROW_LEN;
        let len = field(off + 24);
        if len == 0 || len > BLOCK_ENTRIES as u64 {
            return Err(corrupt(format!("block {block} declares {len} entries")));
        }
        lens.push(len as u32);
        stored_rows.push(BlockMeta {
            first_index: field(off),
            last_index: field(off + 8),
            byte_offset: field(off + 16) as usize,
            len: len as u32,
            mass: field(off + 32),
        });
    }
    let payload = &bytes[payload_off..payload_off + payload_len];
    let (skip, derived_nnz, derived_mass) =
        validate_tagged(payload, &lens).map_err(|e| corrupt(e.to_string()))?;
    if skip != stored_rows {
        return Err(corrupt("skip rows disagree with the decoded payload"));
    }
    if derived_nnz as u64 != nnz || derived_mass != total_mass {
        return Err(corrupt(format!(
            "header declares {nnz} entries / mass {total_mass}, payload decodes to {derived_nnz} / {derived_mass}"
        )));
    }
    let runs = CompressedRuns::from_mapped_parts(
        region,
        payload_off,
        payload_len,
        skip,
        derived_nnz,
        derived_mass,
    );
    SparseCatalog::from_runs(encoding, runs).map_err(|e| corrupt(e.to_string()))
}

/// Sequentially streams a spill shard written by [`write_runs_file`]:
/// the skip index is loaded to the heap at open (~0.3 B/entry) and block
/// bytes are read one block at a time through a buffered reader — peak
/// memory per shard is one block, regardless of shard size.
///
/// Shards are process-private temp files written moments earlier, so IO
/// or format failures mid-stream are bugs, not inputs, and panic.
pub(crate) struct ShardReader {
    reader: BufReader<File>,
    skip: Vec<BlockMeta>,
    payload_len: usize,
    /// Current block id.
    block: usize,
    /// Entries already yielded from the current block.
    in_block: u32,
    /// The current block's raw bytes (read on block entry).
    buf: Vec<u8>,
    tail_idx: [u64; BLOCK_ENTRIES],
    tail_cnt: [u64; BLOCK_ENTRIES],
}

/// Opens a spill shard for streaming. Header and skip rows land on the
/// heap; the payload stays on disk until blocks are pulled.
pub(crate) fn open_shard(path: &Path) -> io::Result<ShardReader> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut head = [0u8; HEADER_LEN];
    reader.read_exact(&mut head)?;
    if &head[..8] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad spill shard magic",
        ));
    }
    let block_count = read_u64_le(&head, 40).expect("fixed header") as usize;
    let payload_len = read_u64_le(&head, 48).expect("fixed header") as usize;
    let mut rows = vec![0u8; block_count * ROW_LEN];
    reader.read_exact(&mut rows)?;
    let mut skip = Vec::with_capacity(block_count);
    for block in 0..block_count {
        let off = block * ROW_LEN;
        let field = |at: usize| read_u64_le(&rows, off + at).expect("row length checked");
        skip.push(BlockMeta {
            first_index: field(0),
            last_index: field(8),
            byte_offset: field(16) as usize,
            len: field(24) as u32,
            mass: field(32),
        });
    }
    Ok(ShardReader {
        reader,
        skip,
        payload_len,
        block: 0,
        in_block: 0,
        buf: Vec::new(),
        tail_idx: [0; BLOCK_ENTRIES],
        tail_cnt: [0; BLOCK_ENTRIES],
    })
}

impl ShardReader {
    /// Reads the bytes of block `block` (the one `meta` describes) into
    /// `buf`. Blocks are consumed strictly in order, so this is a pure
    /// sequential read.
    fn load_block(&mut self, meta: &BlockMeta) {
        let end = self
            .skip
            .get(self.block + 1)
            .map_or(self.payload_len, |m| m.byte_offset);
        let len = end - meta.byte_offset;
        self.buf.resize(len, 0);
        self.reader
            .read_exact(&mut self.buf)
            .expect("spill shard truncated mid-block");
    }
}

impl RunStream for ShardReader {
    fn head_block(&self) -> Option<BlockMeta> {
        (self.in_block == 0).then(|| self.skip.get(self.block).copied())?
    }

    fn next_entry(&mut self) -> Option<(u64, u64)> {
        let meta = *self.skip.get(self.block)?;
        if self.in_block == 0 {
            self.load_block(&meta);
            let head = decode_block_head(&self.buf);
            if meta.len == 1 {
                self.block += 1;
            } else {
                self.in_block = 1;
            }
            return Some(head);
        }
        if self.in_block == 1 {
            decode_block_tail(
                &self.buf,
                meta.len as usize,
                meta.first_index,
                &mut self.tail_idx,
                &mut self.tail_cnt,
            );
        }
        let at = (self.in_block - 1) as usize;
        let entry = (self.tail_idx[at], self.tail_cnt[at]);
        self.in_block += 1;
        if self.in_block == meta.len {
            self.block += 1;
            self.in_block = 0;
        }
        Some(entry)
    }

    fn take_block(&mut self, meta: &BlockMeta) -> &[u8] {
        if self.in_block != 0 {
            debug_assert_eq!(self.in_block, 1, "only the head entry was decoded");
            debug_assert!(meta.len > 1);
            self.block += 1;
            self.in_block = 0;
        } else {
            debug_assert_eq!(meta.len, 1, "only a spent block leaves the head at 0");
        }
        // `buf` still holds exactly this block's bytes: it was filled
        // when the head entry was decoded.
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runs::merge_streams;

    fn temp_path(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("phe-file-test-{}-{name}.phc", std::process::id()));
        path
    }

    fn sample_catalog() -> SparseCatalog {
        let encoding = PathEncoding::new(8, 5); // domain 37448
        let entries: Vec<(u64, u64)> = (0..3000u64)
            .map(|i| (i * 12 + i % 7, 1 + i % 300))
            .collect();
        SparseCatalog::from_runs(encoding, CompressedRuns::from_entries(&entries)).unwrap()
    }

    #[test]
    fn catalog_file_round_trips_through_mmap() {
        let path = temp_path("roundtrip");
        let catalog = sample_catalog();
        let written = write_catalog_file(&path, &catalog).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());

        let opened = open_catalog_file(&path).unwrap();
        assert_eq!(opened, catalog, "decoded content must match");
        assert_eq!(opened.runs().skip_index(), catalog.runs().skip_index());
        assert_eq!(opened.encoding(), catalog.encoding());
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            assert!(opened.runs().is_mapped(), "payload should be disk-resident");
            // Mapped payload is excluded from the heap footprint.
            assert!(opened.runs().size_bytes() < catalog.runs().size_bytes());
        }
        // Point lookups read straight through the mapping.
        for (index, count) in catalog.iter().take(50) {
            assert_eq!(opened.selectivity_at(index), count);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_catalog_file_round_trips() {
        let path = temp_path("empty");
        let encoding = PathEncoding::new(2, 2);
        let catalog = SparseCatalog::from_runs(encoding, CompressedRuns::new()).unwrap();
        write_catalog_file(&path, &catalog).unwrap();
        let opened = open_catalog_file(&path).unwrap();
        assert_eq!(opened.nonzero_count(), 0);
        assert_eq!(opened, catalog);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_is_refused_at_open() {
        let path = temp_path("corrupt");
        write_catalog_file(&path, &sample_catalog()).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        // A flipped payload byte fails the checksum.
        let mut flipped = pristine.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            open_catalog_file(&path),
            Err(CatalogFileError::Corrupt(_))
        ));

        // Truncation fails (length check or checksum).
        std::fs::write(&path, &pristine[..pristine.len() - 9]).unwrap();
        assert!(matches!(
            open_catalog_file(&path),
            Err(CatalogFileError::Corrupt(_))
        ));

        // Wrong magic.
        let mut bad_magic = pristine.clone();
        bad_magic[0] = b'X';
        std::fs::write(&path, &bad_magic).unwrap();
        assert!(matches!(
            open_catalog_file(&path),
            Err(CatalogFileError::Corrupt(_))
        ));

        // Missing file is an Io error, not Corrupt.
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            open_catalog_file(&path),
            Err(CatalogFileError::Io(_))
        ));
    }

    #[test]
    fn shard_reader_streams_identically_to_memory() {
        let entries: Vec<(u64, u64)> = (0..2000u64).map(|i| (i * 5 + i % 3, 1 + i % 50)).collect();
        let runs = CompressedRuns::from_entries(&entries);
        let encoding = PathEncoding::new(4, 8);

        let path = temp_path("shard");
        write_runs_file(&path, &encoding, &runs).unwrap();
        let shard = open_shard(&path).unwrap();
        let from_disk = merge_streams(vec![shard]);
        assert_eq!(from_disk, runs, "single-shard merge is the identity");
        // The wholesale path kept the exact block boundaries.
        assert_eq!(from_disk.skip_index(), runs.skip_index());

        // Two disjoint shards merge like their in-memory counterparts.
        let low = CompressedRuns::from_entries(&entries[..1000]);
        let high = CompressedRuns::from_entries(&entries[1000..]);
        let low_path = temp_path("shard-low");
        let high_path = temp_path("shard-high");
        write_runs_file(&low_path, &encoding, &low).unwrap();
        write_runs_file(&high_path, &encoding, &high).unwrap();
        let merged = merge_streams(vec![
            open_shard(&low_path).unwrap(),
            open_shard(&high_path).unwrap(),
        ]);
        assert_eq!(merged, CompressedRuns::merge_many(&[low, high]));
        assert_eq!(merged.to_vec(), entries);

        for p in [&path, &low_path, &high_path] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn interleaved_shards_merge_with_summing() {
        let a: Vec<(u64, u64)> = (0..900u64).map(|i| (i * 2, 3)).collect();
        let b: Vec<(u64, u64)> = (0..900u64).map(|i| (i * 3, 5)).collect();
        let run_a = CompressedRuns::from_entries(&a);
        let run_b = CompressedRuns::from_entries(&b);
        let encoding = PathEncoding::new(4, 8);
        let path_a = temp_path("inter-a");
        let path_b = temp_path("inter-b");
        write_runs_file(&path_a, &encoding, &run_a).unwrap();
        write_runs_file(&path_b, &encoding, &run_b).unwrap();
        let from_disk = merge_streams(vec![
            open_shard(&path_a).unwrap(),
            open_shard(&path_b).unwrap(),
        ]);
        let in_memory = CompressedRuns::merge_many(&[run_a, run_b]);
        assert_eq!(from_disk, in_memory, "disk merge ≡ memory merge");
        std::fs::remove_file(&path_a).unwrap();
        std::fs::remove_file(&path_b).unwrap();
    }
}
