//! Block-compressed sparse runs: the catalog's storage representation.
//!
//! A sorted `(index, count)` run with strictly increasing `u64` indexes
//! and non-zero counts compresses extremely well: canonical path indexes
//! cluster by shared label prefixes, so consecutive gaps are small, and
//! realized-path counts are graph-local quantities — both fit in one or
//! two LEB128 bytes most of the time, against the flat 16 B a
//! `(u64, u64)` pair costs. [`CompressedRuns`] stores the run as
//! fixed-capacity **blocks** (≤ [`BLOCK_ENTRIES`] entries) of
//! delta-varint pairs behind a per-block skip index:
//!
//! ```text
//! bytes:  [ block 0 ........ | block 1 ........ | ... ]
//! block:  varint(first_index) varint(count)            ← absolute head
//!         varint(index − prev) varint(count) …         ← delta tail
//! skip:   (first_index, last_index, byte_offset, len, mass) per block
//! ```
//!
//! Each block is **self-contained** (its head entry stores the absolute
//! index), which is what makes block-granular operations possible:
//!
//! * [`CompressedRuns::get`] binary-searches the skip index and decodes
//!   at most one block — `O(log #blocks + B)`;
//! * [`CompressedRuns::merge_signed`] copies blocks untouched by the
//!   change **wholesale** (raw bytes + skip row, no re-encode) and
//!   re-encodes only blocks overlapping a changed index;
//! * [`CompressedRuns::merge_many`] (the sharded build's k-way merge)
//!   raw-copies any block whose index range precedes every other run's
//!   next entry, falling back to entry-at-a-time decode only where runs
//!   interleave.
//!
//! The only access path for consumers is the zero-alloc [`RunsCursor`]
//! iterator: histogram builders, ordering remaps, and snapshot writers
//! all stream entries; nothing materializes the pair vector.
//!
//! Blocks may hold *fewer* than [`BLOCK_ENTRIES`] entries: wholesale
//! copies preserve the source block boundaries, and a re-encoded region
//! flushes its partial tail before an adjacent raw copy. Every operation
//! preserves the run invariants (strictly increasing indexes, counts
//! non-zero), and [`PartialEq`] compares the *decoded streams*, so two
//! runs with different block boundaries but equal content are equal.

/// Maximum entries per block. 128 keeps point lookups at ≤ 128 varint
/// decodes while amortizing the 40-byte skip row to ~0.3 B/entry.
pub const BLOCK_ENTRIES: usize = 128;

/// Worst-case LEB128 length of a `u64` (⌈64 / 7⌉ bytes).
const MAX_VARINT: usize = 10;

/// Per-block skip row: everything a consumer needs to route around (or
/// wholesale-copy) the block without decoding it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Index of the block's first entry (stored absolute in the bytes).
    pub first_index: u64,
    /// Index of the block's last entry.
    pub last_index: u64,
    /// Offset of the block's first byte in the run's byte stream.
    pub byte_offset: usize,
    /// Number of entries in the block (`1..=BLOCK_ENTRIES`).
    pub len: u32,
    /// Sum of the block's counts.
    pub mass: u64,
}

/// A decode/validation failure of an externally supplied byte stream
/// (snapshot restore).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunsCorrupt(pub String);

impl std::fmt::Display for RunsCorrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt compressed runs: {}", self.0)
    }
}

impl std::error::Error for RunsCorrupt {}

/// A signed merge drove a count below zero: the changes were computed
/// against a different base run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignedMergeUnderflow {
    /// The offending index.
    pub index: u64,
    /// The base count at that index (0 when absent).
    pub count: u64,
    /// The signed difference that was applied.
    pub delta: i64,
}

/// Block-compressed sorted `(index, count)` runs. See the module docs
/// for the layout and the operation complexity table.
#[derive(Debug, Clone, Default)]
pub struct CompressedRuns {
    bytes: Vec<u8>,
    skip: Vec<BlockMeta>,
    len: usize,
    total_mass: u64,
}

/// Content equality: two runs are equal iff they decode to the same
/// entry stream — block boundaries are a storage artifact (a merge that
/// wholesale-copied blocks must compare equal to a fresh re-encode).
impl PartialEq for CompressedRuns {
    fn eq(&self, other: &CompressedRuns) -> bool {
        self.len == other.len && self.total_mass == other.total_mass && self.iter().eq(other.iter())
    }
}

impl Eq for CompressedRuns {}

impl CompressedRuns {
    /// An empty run.
    pub fn new() -> CompressedRuns {
        CompressedRuns::default()
    }

    /// Compresses pre-sorted entries (strictly increasing indexes,
    /// non-zero counts — debug-asserted, as for every construction path).
    pub fn from_entries(entries: &[(u64, u64)]) -> CompressedRuns {
        Self::from_sorted_iter(entries.iter().copied())
    }

    /// Compresses a pre-sorted entry stream.
    pub fn from_sorted_iter(entries: impl IntoIterator<Item = (u64, u64)>) -> CompressedRuns {
        let mut builder = RunsBuilder::new();
        for (index, count) in entries {
            builder.push(index, count);
        }
        builder.finish()
    }

    /// Rebuilds a run from its serialized form: the raw byte stream plus
    /// the per-block entry counts (the skip index is re-derived by one
    /// decoding pass). This is the snapshot-restore entry point, so it
    /// **validates** everything a foreign file could get wrong.
    ///
    /// # Errors
    /// [`RunsCorrupt`] when the bytes truncate mid-varint, an index fails
    /// to increase strictly, a count is zero, a block is empty or
    /// over-full, or trailing bytes remain after the declared blocks.
    pub fn from_encoded(bytes: Vec<u8>, block_lens: &[u32]) -> Result<CompressedRuns, RunsCorrupt> {
        let mut skip = Vec::with_capacity(block_lens.len());
        let mut pos = 0usize;
        let mut len = 0usize;
        let mut total_mass = 0u64;
        let mut prev: Option<u64> = None;
        for (block_id, &block_len) in block_lens.iter().enumerate() {
            if block_len == 0 || block_len as usize > BLOCK_ENTRIES {
                return Err(RunsCorrupt(format!(
                    "block {block_id} declares {block_len} entries (1..={BLOCK_ENTRIES})"
                )));
            }
            let byte_offset = pos;
            let mut first_index = 0u64;
            let mut last_index = 0u64;
            let mut mass = 0u64;
            for entry in 0..block_len {
                let raw = decode_varint(&bytes, &mut pos)
                    .ok_or_else(|| RunsCorrupt(format!("block {block_id} truncated")))?;
                let index = if entry == 0 {
                    first_index = raw;
                    raw
                } else {
                    last_index.checked_add(raw).ok_or_else(|| {
                        RunsCorrupt(format!("block {block_id} index overflows u64"))
                    })?
                };
                if prev.is_some_and(|p| index <= p) {
                    return Err(RunsCorrupt(format!(
                        "index {index} does not increase strictly (block {block_id})"
                    )));
                }
                if entry > 0 && raw == 0 {
                    return Err(RunsCorrupt(format!("zero index delta in block {block_id}")));
                }
                let count = decode_varint(&bytes, &mut pos)
                    .ok_or_else(|| RunsCorrupt(format!("block {block_id} truncated")))?;
                if count == 0 {
                    return Err(RunsCorrupt(format!("explicit zero count at index {index}")));
                }
                prev = Some(index);
                last_index = index;
                mass = mass.wrapping_add(count);
            }
            total_mass = total_mass.wrapping_add(mass);
            len += block_len as usize;
            skip.push(BlockMeta {
                first_index,
                last_index,
                byte_offset,
                len: block_len,
                mass,
            });
        }
        if pos != bytes.len() {
            return Err(RunsCorrupt(format!(
                "{} trailing bytes after the declared blocks",
                bytes.len() - pos
            )));
        }
        Ok(CompressedRuns {
            bytes,
            skip,
            len,
            total_mass,
        })
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the run holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sum of all counts (wrapping, as the plain representation's sum
    /// would be).
    #[inline]
    pub fn total_mass(&self) -> u64 {
        self.total_mass
    }

    /// The encoded byte stream (blocks back to back).
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The skip index, one row per block.
    #[inline]
    pub fn skip_index(&self) -> &[BlockMeta] {
        &self.skip
    }

    /// Resident bytes of this representation: encoded stream plus skip
    /// index plus struct overhead. The plain equivalent is
    /// [`CompressedRuns::plain_bytes`].
    pub fn size_bytes(&self) -> usize {
        self.bytes.capacity()
            + self.skip.capacity() * std::mem::size_of::<BlockMeta>()
            + std::mem::size_of::<CompressedRuns>()
    }

    /// Bytes the flat `Vec<(u64, u64)>` representation would need.
    pub fn plain_bytes(&self) -> usize {
        self.len * std::mem::size_of::<(u64, u64)>()
    }

    /// The count at `index`, or `None` when absent: binary search over
    /// the skip index, then decode of at most one block.
    pub fn get(&self, index: u64) -> Option<u64> {
        let block = self.skip.partition_point(|meta| meta.last_index < index);
        let meta = self.skip.get(block)?;
        if index < meta.first_index {
            return None;
        }
        let mut pos = meta.byte_offset;
        let mut current = 0u64;
        for entry in 0..meta.len {
            let raw = decode_varint(&self.bytes, &mut pos).expect("skip index covers the bytes");
            current = if entry == 0 { raw } else { current + raw };
            let count = decode_varint(&self.bytes, &mut pos).expect("entry has a count");
            if current == index {
                return Some(count);
            }
            if current > index {
                return None;
            }
        }
        None
    }

    /// A zero-alloc streaming pass over the entries, in index order —
    /// the single access path every consumer shares.
    pub fn iter(&self) -> RunsCursor<'_> {
        RunsCursor {
            runs: self,
            block: 0,
            in_block: 0,
            pos: 0,
            prev: 0,
        }
    }

    /// Decodes into the plain pair vector (tests, small runs).
    pub fn to_vec(&self) -> Vec<(u64, u64)> {
        self.iter().collect()
    }

    /// Folds sorted signed `(index, diff)` changes into this run: sums
    /// matching indexes, admits new ones, and drops entries whose count
    /// cancels to zero. Blocks whose index range meets no change are
    /// copied **wholesale** (bytes + skip row); only overlapping blocks
    /// are decoded and re-encoded, so the cost is
    /// `O(|changes| + touched blocks + copied skip rows)`.
    ///
    /// # Errors
    /// [`SignedMergeUnderflow`] when a merged count would go negative —
    /// the changes were not computed against this base.
    pub fn merge_signed(
        &self,
        changes: &[(u64, i64)],
    ) -> Result<CompressedRuns, SignedMergeUnderflow> {
        debug_assert!(changes.windows(2).all(|w| w[0].0 < w[1].0));
        let mut builder = RunsBuilder::new();
        let mut change = 0usize;
        let apply = |index: u64, count: u64, diff: i64| -> Result<u64, SignedMergeUnderflow> {
            u64::try_from(count as i128 + diff as i128).map_err(|_| SignedMergeUnderflow {
                index,
                count,
                delta: diff,
            })
        };
        for meta in &self.skip {
            // Changes strictly below this block are insertions into the
            // gap before it.
            while let Some(&(index, diff)) =
                changes.get(change).filter(|&&(i, _)| i < meta.first_index)
            {
                let merged = apply(index, 0, diff)?;
                if merged > 0 {
                    builder.push(index, merged);
                }
                change += 1;
            }
            let overlaps = changes
                .get(change)
                .is_some_and(|&(i, _)| i <= meta.last_index);
            if !overlaps {
                // Untouched block: raw copy, no re-encode.
                builder.push_block_raw(meta, self.block_bytes(meta));
                continue;
            }
            // Overlapping block: decode and two-pointer merge.
            let mut pos = meta.byte_offset;
            let mut current = 0u64;
            for entry in 0..meta.len {
                let raw =
                    decode_varint(&self.bytes, &mut pos).expect("skip index covers the bytes");
                current = if entry == 0 { raw } else { current + raw };
                let count = decode_varint(&self.bytes, &mut pos).expect("entry has a count");
                while let Some(&(index, diff)) = changes.get(change).filter(|&&(i, _)| i < current)
                {
                    let merged = apply(index, 0, diff)?;
                    if merged > 0 {
                        builder.push(index, merged);
                    }
                    change += 1;
                }
                match changes.get(change) {
                    Some(&(index, diff)) if index == current => {
                        let merged = apply(index, count, diff)?;
                        if merged > 0 {
                            builder.push(index, merged);
                        }
                        change += 1;
                    }
                    _ => builder.push(current, count),
                }
            }
        }
        // Changes past the last block are trailing insertions.
        for &(index, diff) in &changes[change..] {
            let merged = apply(index, 0, diff)?;
            if merged > 0 {
                builder.push(index, merged);
            }
        }
        Ok(builder.finish())
    }

    /// K-way merges sorted runs, **summing** counts of equal indexes —
    /// the sharded build's combine step. A block whose whole index range
    /// precedes every other run's next entry is copied wholesale; the
    /// per-entry heap path runs only where the runs interleave.
    pub fn merge_many(runs: &[CompressedRuns]) -> CompressedRuns {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        /// One run's read head: the pre-decoded next entry, plus — when
        /// that entry opened a fresh block — the block's skip row, which
        /// is the wholesale-copy opportunity.
        struct Head<'a> {
            cursor: RunsCursor<'a>,
            next: Option<(u64, u64)>,
            head_block: Option<BlockMeta>,
        }

        impl Head<'_> {
            fn advance(&mut self) {
                self.head_block = self.cursor.block_at_head();
                self.next = self.cursor.next();
            }
        }

        let mut heads: Vec<Head<'_>> = runs
            .iter()
            .map(|r| {
                let mut head = Head {
                    cursor: r.iter(),
                    next: None,
                    head_block: None,
                };
                head.advance();
                head
            })
            .collect();
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = heads
            .iter()
            .enumerate()
            .filter_map(|(run, head)| head.next.map(|(index, _)| Reverse((index, run))))
            .collect();

        let mut builder = RunsBuilder::new();
        // The entry merged most recently but not yet pushed: equal
        // indexes from other runs still need summing into it.
        let mut acc: Option<(u64, u64)> = None;
        while let Some(Reverse((index, run))) = heap.pop() {
            let head = &mut heads[run];
            let (_, count) = head.next.expect("heap entries are pending");
            match acc {
                Some((i, ref mut c)) if i == index => *c += count,
                _ => {
                    if let Some(entry) = acc.take() {
                        builder.push(entry.0, entry.1);
                    }
                    // Wholesale fast path: the pending entry heads a fresh
                    // block whose entire range precedes every other run's
                    // next index — transfer the block raw (head entry
                    // included) and skip its decode.
                    let other_min = heap.peek().map_or(u64::MAX, |&Reverse((i, _))| i);
                    match head.head_block {
                        Some(meta) if meta.last_index < other_min => {
                            builder.push_block_raw(&meta, runs[run].block_bytes(&meta));
                            head.cursor.skip_rest_of_block(&meta);
                        }
                        _ => acc = Some((index, count)),
                    }
                }
            }
            head.advance();
            if let Some((next, _)) = head.next {
                heap.push(Reverse((next, run)));
            }
        }
        if let Some((index, count)) = acc {
            builder.push(index, count);
        }
        builder.finish()
    }

    /// The raw bytes of one block. Skip rows are sorted by byte offset,
    /// so the block's end is its successor's offset (binary-searched —
    /// merges call this once per wholesale-copied block).
    fn block_bytes(&self, meta: &BlockMeta) -> &[u8] {
        let block = self
            .skip
            .partition_point(|m| m.byte_offset <= meta.byte_offset);
        let end = self
            .skip
            .get(block)
            .map_or(self.bytes.len(), |m| m.byte_offset);
        &self.bytes[meta.byte_offset..end]
    }
}

impl<'a> IntoIterator for &'a CompressedRuns {
    type Item = (u64, u64);
    type IntoIter = RunsCursor<'a>;

    fn into_iter(self) -> RunsCursor<'a> {
        self.iter()
    }
}

/// The zero-alloc streaming decoder over a [`CompressedRuns`]: a plain
/// `Iterator<Item = (u64, u64)>` holding only a byte position and the
/// running index.
#[derive(Debug, Clone)]
pub struct RunsCursor<'a> {
    runs: &'a CompressedRuns,
    /// Current block id.
    block: usize,
    /// Entries already decoded from the current block.
    in_block: u32,
    /// Byte position of the next varint.
    pos: usize,
    /// Last decoded index (delta base within a block).
    prev: u64,
}

impl RunsCursor<'_> {
    /// When the cursor sits exactly at the head of an undecoded block,
    /// that block's skip row — the wholesale-copy precondition.
    fn block_at_head(&self) -> Option<BlockMeta> {
        (self.in_block == 0).then(|| self.runs.skip.get(self.block).copied())?
    }

    /// Jumps past the remaining entries of `meta`, whose head the cursor
    /// already decoded (the caller transferred the block raw instead of
    /// decoding the tail). No-op for single-entry blocks — the head
    /// decode already advanced past them.
    fn skip_rest_of_block(&mut self, meta: &BlockMeta) {
        if self.in_block == 0 {
            debug_assert_eq!(meta.len, 1, "only a spent block leaves the head at 0");
            return;
        }
        debug_assert_eq!(self.in_block, 1, "only the head entry was decoded");
        self.pos = self
            .runs
            .skip
            .get(self.block + 1)
            .map_or(self.runs.bytes.len(), |next| next.byte_offset);
        self.prev = meta.last_index;
        self.block += 1;
        self.in_block = 0;
    }
}

impl Iterator for RunsCursor<'_> {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        let meta = self.runs.skip.get(self.block)?;
        let raw = decode_varint(&self.runs.bytes, &mut self.pos)?;
        let index = if self.in_block == 0 {
            raw
        } else {
            self.prev + raw
        };
        let count = decode_varint(&self.runs.bytes, &mut self.pos)?;
        self.prev = index;
        self.in_block += 1;
        if self.in_block == meta.len {
            self.block += 1;
            self.in_block = 0;
        }
        Some((index, count))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let consumed: usize = self.runs.skip[..self.block]
            .iter()
            .map(|m| m.len as usize)
            .sum::<usize>()
            + self.in_block as usize;
        let left = self.runs.len - consumed;
        (left, Some(left))
    }
}

impl ExactSizeIterator for RunsCursor<'_> {}

/// Incremental writer of a [`CompressedRuns`]: entries stream in via
/// [`RunsBuilder::push`] (strictly increasing, non-zero counts), whole
/// untouched blocks via [`RunsBuilder::push_block_raw`].
#[derive(Debug, Default)]
pub struct RunsBuilder {
    bytes: Vec<u8>,
    skip: Vec<BlockMeta>,
    len: usize,
    total_mass: u64,
    /// The block being filled (absent between blocks).
    open: Option<BlockMeta>,
    last_index: Option<u64>,
}

impl RunsBuilder {
    /// An empty builder.
    pub fn new() -> RunsBuilder {
        RunsBuilder::default()
    }

    /// Appends one entry. Indexes must arrive strictly increasing and
    /// counts non-zero (debug-asserted — every producer in this crate
    /// upholds the run invariants by construction).
    pub fn push(&mut self, index: u64, count: u64) {
        debug_assert!(count > 0, "explicit zero count at {index}");
        debug_assert!(
            self.last_index.is_none_or(|last| last < index),
            "index {index} does not increase strictly"
        );
        match &mut self.open {
            Some(meta) => {
                encode_varint(&mut self.bytes, index - meta.last_index);
                encode_varint(&mut self.bytes, count);
                meta.last_index = index;
                meta.len += 1;
                meta.mass = meta.mass.wrapping_add(count);
                if meta.len as usize == BLOCK_ENTRIES {
                    self.flush();
                }
            }
            None => {
                let byte_offset = self.bytes.len();
                encode_varint(&mut self.bytes, index);
                encode_varint(&mut self.bytes, count);
                self.open = Some(BlockMeta {
                    first_index: index,
                    last_index: index,
                    byte_offset,
                    len: 1,
                    mass: count,
                });
            }
        }
        self.last_index = Some(index);
        self.len += 1;
        self.total_mass = self.total_mass.wrapping_add(count);
    }

    /// Appends a whole block verbatim: `bytes` are the block's encoded
    /// stream exactly as described by `meta`. Any partially filled block
    /// is flushed first (blocks are self-contained, so boundaries need
    /// not align). The block's indexes must all exceed the last pushed
    /// index.
    pub fn push_block_raw(&mut self, meta: &BlockMeta, bytes: &[u8]) {
        debug_assert!(
            self.last_index.is_none_or(|last| last < meta.first_index),
            "raw block starts at {} behind cursor {:?}",
            meta.first_index,
            self.last_index
        );
        self.flush();
        let byte_offset = self.bytes.len();
        self.bytes.extend_from_slice(bytes);
        self.skip.push(BlockMeta {
            byte_offset,
            ..*meta
        });
        self.last_index = Some(meta.last_index);
        self.len += meta.len as usize;
        self.total_mass = self.total_mass.wrapping_add(meta.mass);
    }

    /// Closes the open block, if any.
    fn flush(&mut self) {
        if let Some(meta) = self.open.take() {
            self.skip.push(meta);
        }
    }

    /// Finishes the run. The vectors are shrunk to fit: the run is
    /// long-lived (retained catalogs, maintenance state), so push-growth
    /// slack would be permanent resident memory — and would inflate
    /// [`CompressedRuns::size_bytes`], which reports capacity.
    pub fn finish(mut self) -> CompressedRuns {
        self.flush();
        self.bytes.shrink_to_fit();
        self.skip.shrink_to_fit();
        CompressedRuns {
            bytes: self.bytes,
            skip: self.skip,
            len: self.len,
            total_mass: self.total_mass,
        }
    }
}

/// LEB128 append.
fn encode_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// LEB128 read at `*pos`, advancing it. `None` on truncation or a varint
/// longer than [`MAX_VARINT`] bytes.
fn decode_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    for i in 0..MAX_VARINT {
        let byte = *bytes.get(*pos + i)?;
        value |= ((byte & 0x7f) as u64) << (7 * i);
        if byte & 0x80 == 0 {
            *pos += i + 1;
            return Some(value);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runs_of(entries: &[(u64, u64)]) -> CompressedRuns {
        CompressedRuns::from_entries(entries)
    }

    #[test]
    fn round_trips_and_looks_up() {
        let entries: Vec<(u64, u64)> = (0..1000u64).map(|i| (i * i + 7, i + 1)).collect();
        let runs = runs_of(&entries);
        assert_eq!(runs.to_vec(), entries);
        assert_eq!(runs.len(), entries.len());
        assert_eq!(
            runs.total_mass(),
            entries.iter().map(|&(_, c)| c).sum::<u64>()
        );
        for &(index, count) in &entries {
            assert_eq!(runs.get(index), Some(count), "index {index}");
        }
        assert_eq!(runs.get(0), None);
        assert_eq!(runs.get(8), Some(2));
        assert_eq!(runs.get(9), None);
        assert_eq!(runs.get(u64::MAX), None);
        // Blocks hold at most BLOCK_ENTRIES entries each.
        assert!(runs
            .skip_index()
            .iter()
            .all(|m| m.len as usize <= BLOCK_ENTRIES));
        assert_eq!(
            runs.skip_index()
                .iter()
                .map(|m| m.len as usize)
                .sum::<usize>(),
            entries.len()
        );
    }

    #[test]
    fn extreme_indexes_and_counts_round_trip() {
        let entries = vec![
            (0u64, 1u64),
            (1, u64::MAX),
            (1 << 35, 1 << 50),
            (u64::MAX - 1, 3),
            (u64::MAX, 9),
        ];
        let runs = runs_of(&entries);
        assert_eq!(runs.to_vec(), entries);
        assert_eq!(runs.get(u64::MAX), Some(9));
        assert_eq!(runs.get(u64::MAX - 1), Some(3));
        assert_eq!(runs.get(1), Some(u64::MAX));
    }

    #[test]
    fn compresses_clustered_indexes() {
        // Small gaps, small counts: the representative catalog shape.
        let entries: Vec<(u64, u64)> = (0..100_000u64).map(|i| (i * 3, 1 + i % 7)).collect();
        let runs = runs_of(&entries);
        assert!(
            runs.size_bytes() * 3 < runs.plain_bytes(),
            "{} vs {} plain",
            runs.size_bytes(),
            runs.plain_bytes()
        );
    }

    #[test]
    fn content_equality_ignores_block_boundaries() {
        let entries: Vec<(u64, u64)> = (0..500u64).map(|i| (i * 5 + 1, i + 1)).collect();
        let uniform = runs_of(&entries);
        // Same content, different boundaries: build in two raw chunks.
        let a = runs_of(&entries[..100]);
        let b = runs_of(&entries[100..]);
        let mut builder = RunsBuilder::new();
        for meta in a.skip_index() {
            builder.push_block_raw(meta, a.block_bytes(meta));
        }
        for meta in b.skip_index() {
            builder.push_block_raw(meta, b.block_bytes(meta));
        }
        let stitched = builder.finish();
        assert_ne!(stitched.skip_index().len(), uniform.skip_index().len());
        assert_eq!(stitched, uniform);
    }

    #[test]
    fn merge_signed_sums_admits_cancels_and_copies() {
        let entries: Vec<(u64, u64)> = (0..1000u64).map(|i| (i * 2, 10)).collect();
        let runs = runs_of(&entries);
        // One change in the middle block; everything else raw-copies.
        let merged = runs.merge_signed(&[(500 * 2, 5)]).unwrap();
        let mut expected = entries.clone();
        expected[500].1 = 15;
        assert_eq!(merged.to_vec(), expected);

        // Admission (gap + trailing), cancellation, and summation at once.
        let merged = runs
            .merge_signed(&[(0, -10), (1, 4), (998 * 2, 1), (5000, 7)])
            .unwrap();
        let mut expected: Vec<(u64, u64)> = entries.clone();
        expected[998].1 = 11;
        expected.remove(0);
        expected.insert(0, (1, 4));
        expected.push((5000, 7));
        assert_eq!(merged.to_vec(), expected);

        // Underflow refused with the offending coordinates.
        let err = runs.merge_signed(&[(4, -11)]).unwrap_err();
        assert_eq!(
            err,
            SignedMergeUnderflow {
                index: 4,
                count: 10,
                delta: -11
            }
        );
        // A negative diff on an absent index underflows from 0.
        assert!(runs.merge_signed(&[(3, -1)]).is_err());
    }

    #[test]
    fn merge_signed_on_empty_base() {
        let empty = CompressedRuns::new();
        let merged = empty.merge_signed(&[(3, 5), (9, 2)]).unwrap();
        assert_eq!(merged.to_vec(), vec![(3, 5), (9, 2)]);
        assert!(empty.merge_signed(&[]).unwrap().is_empty());
    }

    #[test]
    fn merge_many_sums_duplicates() {
        let merged = CompressedRuns::merge_many(&[
            runs_of(&[(0, 1), (5, 2), (9, 1)]),
            runs_of(&[(5, 3), (7, 1)]),
            runs_of(&[]),
            runs_of(&[(0, 4)]),
        ]);
        assert_eq!(merged.to_vec(), vec![(0, 5), (5, 5), (7, 1), (9, 1)]);
    }

    #[test]
    fn merge_many_wholesale_path_matches_interleaved() {
        // Disjoint index ranges: every block takes the raw-copy path.
        let a: Vec<(u64, u64)> = (0..400u64).map(|i| (i, i + 1)).collect();
        let b: Vec<(u64, u64)> = (0..400u64).map(|i| (1000 + i, i + 1)).collect();
        let merged = CompressedRuns::merge_many(&[runs_of(&a), runs_of(&b)]);
        let expected: Vec<(u64, u64)> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(merged.to_vec(), expected);

        // Heavily interleaved ranges: the per-entry path, same contract.
        let a: Vec<(u64, u64)> = (0..400u64).map(|i| (i * 2, 1)).collect();
        let b: Vec<(u64, u64)> = (0..400u64).map(|i| (i * 2 + 1, 2)).collect();
        let c: Vec<(u64, u64)> = (0..400u64).map(|i| (i * 2, 3)).collect();
        let merged = CompressedRuns::merge_many(&[runs_of(&a), runs_of(&b), runs_of(&c)]);
        let mut expected: Vec<(u64, u64)> = (0..400u64).map(|i| (i * 2, 4)).collect();
        expected.extend((0..400u64).map(|i| (i * 2 + 1, 2)));
        expected.sort_unstable_by_key(|&(i, _)| i);
        assert_eq!(merged.to_vec(), expected);
    }

    #[test]
    fn from_encoded_validates() {
        let entries: Vec<(u64, u64)> = (0..300u64).map(|i| (i * 7, i + 1)).collect();
        let runs = runs_of(&entries);
        let lens: Vec<u32> = runs.skip_index().iter().map(|m| m.len).collect();
        let restored = CompressedRuns::from_encoded(runs.bytes().to_vec(), &lens).unwrap();
        assert_eq!(restored, runs);
        assert_eq!(restored.skip_index(), runs.skip_index());

        // Truncated bytes.
        let mut short = runs.bytes().to_vec();
        short.pop();
        assert!(CompressedRuns::from_encoded(short, &lens).is_err());
        // Trailing garbage.
        let mut long = runs.bytes().to_vec();
        long.push(0);
        assert!(CompressedRuns::from_encoded(long, &lens).is_err());
        // Wrong block lens.
        assert!(CompressedRuns::from_encoded(runs.bytes().to_vec(), &lens[1..]).is_err());
        // Zero count.
        let mut bytes = Vec::new();
        encode_varint(&mut bytes, 5);
        encode_varint(&mut bytes, 0);
        assert!(CompressedRuns::from_encoded(bytes, &[1]).is_err());
        // Zero delta (duplicate index).
        let mut bytes = Vec::new();
        encode_varint(&mut bytes, 5);
        encode_varint(&mut bytes, 1);
        encode_varint(&mut bytes, 0);
        encode_varint(&mut bytes, 1);
        assert!(CompressedRuns::from_encoded(bytes, &[2]).is_err());
        // Oversized block declaration.
        assert!(CompressedRuns::from_encoded(Vec::new(), &[0]).is_err());
        assert!(CompressedRuns::from_encoded(Vec::new(), &[BLOCK_ENTRIES as u32 + 1]).is_err());
    }

    #[test]
    fn varints_cover_all_widths() {
        // 1-byte through 10-byte varints round-trip through the stream.
        let mut out = Vec::new();
        let values: Vec<u64> = (0..10)
            .map(|i| 1u64.checked_shl(7 * i).unwrap_or(u64::MAX))
            .collect();
        for &v in &values {
            encode_varint(&mut out, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(decode_varint(&out, &mut pos), Some(v));
        }
        assert_eq!(pos, out.len());
        assert_eq!(decode_varint(&out, &mut pos), None, "exhausted");
    }

    #[test]
    fn empty_run() {
        let runs = CompressedRuns::new();
        assert!(runs.is_empty());
        assert_eq!(runs.iter().count(), 0);
        assert_eq!(runs.get(0), None);
        assert_eq!(runs.to_vec(), vec![]);
        assert_eq!(runs, CompressedRuns::from_entries(&[]));
    }

    #[test]
    fn cursor_is_exact_size() {
        let entries: Vec<(u64, u64)> = (0..333u64).map(|i| (i, 1)).collect();
        let runs = runs_of(&entries);
        let mut cursor = runs.iter();
        assert_eq!(cursor.len(), 333);
        cursor.next();
        assert_eq!(cursor.len(), 332);
        assert_eq!(cursor.count(), 332);
    }
}
