//! Block-compressed sparse runs: the catalog's storage representation.
//!
//! A sorted `(index, count)` run with strictly increasing `u64` indexes
//! and non-zero counts compresses extremely well: canonical path indexes
//! cluster by shared label prefixes, so consecutive gaps are small, and
//! realized-path counts are graph-local quantities. [`CompressedRuns`]
//! stores the run as fixed-capacity **blocks** (≤ [`BLOCK_ENTRIES`]
//! entries) behind a per-block skip index, each block carrying a one-byte
//! **codec tag** so the encoder can pick the cheaper of two layouts per
//! block:
//!
//! ```text
//! bytes:   [ block 0 ........ | block 1 ........ | ... ]
//! block:   tag (1 byte)
//!          varint(first_index) varint(first_count)      ← absolute head
//!   tag 0  varint(gap) varint(count) …                  ← LEB128 tail
//!   tag 1  gap_width count_width (1 byte each)
//!          varint(gap_min) varint(count_min)
//!          gap lane | count lane                        ← bit-packed tail
//! skip:    (first_index, last_index, byte_offset, len, mass) per block
//! ```
//!
//! Tag 1 is a frame-of-reference + bit-packed layout: the tail's index
//! gaps and counts are stored as fixed-width residuals above a per-block
//! minimum, in LSB-first little-endian lanes padded to whole `u64`
//! words. A lane decodes with a branch-free shift/mask loop over 128
//! entries at a time — no per-byte continuation tests — which is where
//! the ≥2× decode throughput over the varint layout comes from. The
//! encoder sizes both layouts analytically and keeps the smaller, so a
//! pathological block (one huge outlier gap widening the whole lane)
//! falls back to tag 0 and the stream never exceeds the pure-varint
//! encoding by more than the tag byte per block.
//!
//! Each block is **self-contained** (its head entry stores the absolute
//! index), which is what makes block-granular operations possible:
//!
//! * [`CompressedRuns::get`] binary-searches the skip index and decodes
//!   at most one block — `O(log #blocks + B)`;
//! * [`CompressedRuns::merge_signed`] copies blocks untouched by the
//!   change **wholesale** (raw bytes + skip row, no re-encode) and
//!   re-encodes only blocks overlapping a changed index;
//! * [`CompressedRuns::merge_many`] (the sharded build's k-way merge)
//!   raw-copies any block whose index range precedes every other run's
//!   next entry, falling back to entry-at-a-time decode only where runs
//!   interleave. The same merge loop also drains disk-resident shards
//!   (spill-to-disk builds) through the crate-private stream trait.
//!
//! The only access path for consumers is the zero-alloc [`RunsCursor`]
//! iterator: histogram builders, ordering remaps, and snapshot writers
//! all stream entries; nothing materializes the pair vector. The cursor
//! decodes lazily — entering a block decodes only its head entry (all a
//! wholesale merge copy ever needs), and the tail is decoded into a
//! stack buffer the first time the second entry is demanded.
//!
//! The byte stream itself may live on the heap **or** borrow from a
//! memory-mapped catalog file ([`CompressedRuns::is_mapped`]); every
//! operation reads through the same slice either way.
//!
//! Blocks may hold *fewer* than [`BLOCK_ENTRIES`] entries: wholesale
//! copies preserve the source block boundaries, and a re-encoded region
//! flushes its partial tail before an adjacent raw copy. Every operation
//! preserves the run invariants (strictly increasing indexes, counts
//! non-zero), and [`PartialEq`] compares the *decoded streams*, so two
//! runs with different block boundaries but equal content are equal.

use crate::mmap::MappedRegion;
use std::sync::Arc;

/// Maximum entries per block. 128 keeps point lookups at ≤ one block
/// decode while amortizing the 40-byte skip row to ~0.3 B/entry.
pub const BLOCK_ENTRIES: usize = 128;

/// Worst-case LEB128 length of a `u64` (⌈64 / 7⌉ bytes).
const MAX_VARINT: usize = 10;

/// Codec tag: LEB128 delta-varint tail (the v4 layout, plus the tag).
pub(crate) const TAG_VARINT: u8 = 0;
/// Codec tag: frame-of-reference bit-packed tail.
pub(crate) const TAG_PACKED: u8 = 1;

/// Per-block skip row: everything a consumer needs to route around (or
/// wholesale-copy) the block without decoding it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Index of the block's first entry (stored absolute in the bytes).
    pub first_index: u64,
    /// Index of the block's last entry.
    pub last_index: u64,
    /// Offset of the block's first byte in the run's byte stream.
    pub byte_offset: usize,
    /// Number of entries in the block (`1..=BLOCK_ENTRIES`).
    pub len: u32,
    /// Sum of the block's counts.
    pub mass: u64,
}

/// A decode/validation failure of an externally supplied byte stream
/// (snapshot restore, catalog files).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunsCorrupt(pub String);

impl std::fmt::Display for RunsCorrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt compressed runs: {}", self.0)
    }
}

impl std::error::Error for RunsCorrupt {}

/// A signed merge drove a count below zero: the changes were computed
/// against a different base run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignedMergeUnderflow {
    /// The offending index.
    pub index: u64,
    /// The base count at that index (0 when absent).
    pub count: u64,
    /// The signed difference that was applied.
    pub delta: i64,
}

/// Where a run's encoded bytes live: owned on the heap, or borrowed
/// from a shared memory-mapped catalog file.
#[derive(Clone)]
enum RunBytes {
    Owned(Vec<u8>),
    Mapped {
        region: Arc<MappedRegion>,
        offset: usize,
        len: usize,
    },
}

impl RunBytes {
    #[inline]
    fn as_slice(&self) -> &[u8] {
        match self {
            RunBytes::Owned(bytes) => bytes,
            RunBytes::Mapped {
                region,
                offset,
                len,
            } => &region.as_slice()[*offset..offset + len],
        }
    }

    /// Heap bytes held by this payload (0 when disk-resident).
    fn heap_bytes(&self) -> usize {
        match self {
            RunBytes::Owned(bytes) => bytes.capacity(),
            RunBytes::Mapped { .. } => 0,
        }
    }
}

impl Default for RunBytes {
    fn default() -> RunBytes {
        RunBytes::Owned(Vec::new())
    }
}

impl std::fmt::Debug for RunBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunBytes::Owned(bytes) => f.debug_tuple("Owned").field(&bytes.len()).finish(),
            RunBytes::Mapped { offset, len, .. } => f
                .debug_struct("Mapped")
                .field("offset", offset)
                .field("len", len)
                .finish(),
        }
    }
}

/// Block-compressed sorted `(index, count)` runs. See the module docs
/// for the layout and the operation complexity table.
#[derive(Debug, Clone, Default)]
pub struct CompressedRuns {
    bytes: RunBytes,
    skip: Vec<BlockMeta>,
    len: usize,
    total_mass: u64,
}

/// Content equality: two runs are equal iff they decode to the same
/// entry stream — block boundaries and codec choices are a storage
/// artifact (a merge that wholesale-copied blocks must compare equal to
/// a fresh re-encode).
impl PartialEq for CompressedRuns {
    fn eq(&self, other: &CompressedRuns) -> bool {
        self.len == other.len && self.total_mass == other.total_mass && self.iter().eq(other.iter())
    }
}

impl Eq for CompressedRuns {}

impl CompressedRuns {
    /// An empty run.
    pub fn new() -> CompressedRuns {
        CompressedRuns::default()
    }

    /// Compresses pre-sorted entries (strictly increasing indexes,
    /// non-zero counts — debug-asserted, as for every construction path).
    pub fn from_entries(entries: &[(u64, u64)]) -> CompressedRuns {
        Self::from_sorted_iter(entries.iter().copied())
    }

    /// Compresses a pre-sorted entry stream.
    pub fn from_sorted_iter(entries: impl IntoIterator<Item = (u64, u64)>) -> CompressedRuns {
        let mut builder = RunsBuilder::new();
        for (index, count) in entries {
            builder.push(index, count);
        }
        builder.finish()
    }

    /// Rebuilds a run from the **legacy (pre-v5) untagged** serialized
    /// form: per-entry delta varints with no codec tag byte. The stream
    /// is validated entry by entry and re-encoded through the current
    /// tagged codec, so content round-trips but block boundaries and
    /// bytes do not. Current-format payloads restore through
    /// [`CompressedRuns::from_tagged_encoded`] instead.
    ///
    /// # Errors
    /// [`RunsCorrupt`] when the bytes truncate mid-varint, an index fails
    /// to increase strictly, a count is zero, a block is empty or
    /// over-full, or trailing bytes remain after the declared blocks.
    pub fn from_encoded(bytes: Vec<u8>, block_lens: &[u32]) -> Result<CompressedRuns, RunsCorrupt> {
        let mut builder = RunsBuilder::new();
        let mut pos = 0usize;
        let mut prev: Option<u64> = None;
        for (block_id, &block_len) in block_lens.iter().enumerate() {
            if block_len == 0 || block_len as usize > BLOCK_ENTRIES {
                return Err(RunsCorrupt(format!(
                    "block {block_id} declares {block_len} entries (1..={BLOCK_ENTRIES})"
                )));
            }
            let mut last_index = 0u64;
            for entry in 0..block_len {
                let raw = decode_varint(&bytes, &mut pos)
                    .ok_or_else(|| RunsCorrupt(format!("block {block_id} truncated")))?;
                let index = if entry == 0 {
                    raw
                } else {
                    last_index.checked_add(raw).ok_or_else(|| {
                        RunsCorrupt(format!("block {block_id} index overflows u64"))
                    })?
                };
                if prev.is_some_and(|p| index <= p) {
                    return Err(RunsCorrupt(format!(
                        "index {index} does not increase strictly (block {block_id})"
                    )));
                }
                if entry > 0 && raw == 0 {
                    return Err(RunsCorrupt(format!("zero index delta in block {block_id}")));
                }
                let count = decode_varint(&bytes, &mut pos)
                    .ok_or_else(|| RunsCorrupt(format!("block {block_id} truncated")))?;
                if count == 0 {
                    return Err(RunsCorrupt(format!("explicit zero count at index {index}")));
                }
                prev = Some(index);
                last_index = index;
                builder.push(index, count);
            }
        }
        if pos != bytes.len() {
            return Err(RunsCorrupt(format!(
                "{} trailing bytes after the declared blocks",
                bytes.len() - pos
            )));
        }
        Ok(builder.finish())
    }

    /// Rebuilds a run from its current (tagged) serialized form: the raw
    /// byte stream plus the per-block entry counts; the skip index is
    /// re-derived by one validating pass and the bytes are kept
    /// verbatim, so the stream (and every skip row) round-trips exactly.
    ///
    /// # Errors
    /// [`RunsCorrupt`] under the same conditions as
    /// [`CompressedRuns::from_encoded`], plus an unknown codec tag, a
    /// lane width above 64 bits, or a truncated bit lane.
    pub fn from_tagged_encoded(
        bytes: Vec<u8>,
        block_lens: &[u32],
    ) -> Result<CompressedRuns, RunsCorrupt> {
        let (skip, len, total_mass) = validate_tagged(&bytes, block_lens)?;
        Ok(CompressedRuns {
            bytes: RunBytes::Owned(bytes),
            skip,
            len,
            total_mass,
        })
    }

    /// Assembles a run whose payload borrows `region[offset..offset+len_bytes]`.
    /// The caller has already validated the stream (via
    /// [`validate_tagged`]) — this only wires the pieces together.
    pub(crate) fn from_mapped_parts(
        region: Arc<MappedRegion>,
        offset: usize,
        len_bytes: usize,
        skip: Vec<BlockMeta>,
        len: usize,
        total_mass: u64,
    ) -> CompressedRuns {
        debug_assert!(offset + len_bytes <= region.len());
        CompressedRuns {
            bytes: RunBytes::Mapped {
                region,
                offset,
                len: len_bytes,
            },
            skip,
            len,
            total_mass,
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the run holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sum of all counts (wrapping, as the plain representation's sum
    /// would be).
    #[inline]
    pub fn total_mass(&self) -> u64 {
        self.total_mass
    }

    /// The encoded byte stream (tagged blocks back to back).
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        self.bytes.as_slice()
    }

    /// The skip index, one row per block.
    #[inline]
    pub fn skip_index(&self) -> &[BlockMeta] {
        &self.skip
    }

    /// Whether the payload borrows from a memory-mapped file instead of
    /// owning heap bytes.
    #[inline]
    pub fn is_mapped(&self) -> bool {
        matches!(self.bytes, RunBytes::Mapped { .. })
    }

    /// Length of the encoded payload in bytes, wherever it lives.
    #[inline]
    pub fn payload_bytes(&self) -> usize {
        self.bytes.as_slice().len()
    }

    /// **Heap-resident** bytes of this representation: encoded stream
    /// (0 when it borrows a mapped file) plus skip index plus struct
    /// overhead. The plain equivalent is [`CompressedRuns::plain_bytes`].
    pub fn size_bytes(&self) -> usize {
        self.bytes.heap_bytes()
            + self.skip.capacity() * std::mem::size_of::<BlockMeta>()
            + std::mem::size_of::<CompressedRuns>()
    }

    /// Bytes the flat `Vec<(u64, u64)>` representation would need.
    pub fn plain_bytes(&self) -> usize {
        self.len * std::mem::size_of::<(u64, u64)>()
    }

    /// Blocks per codec, `(varint, packed)` — observability for benches
    /// and the `list` op's residency rows.
    pub fn block_codec_counts(&self) -> (usize, usize) {
        let bytes = self.bytes();
        let mut varint = 0usize;
        let mut packed = 0usize;
        for meta in &self.skip {
            if bytes[meta.byte_offset] == TAG_PACKED {
                packed += 1;
            } else {
                varint += 1;
            }
        }
        (varint, packed)
    }

    /// The count at `index`, or `None` when absent: binary search over
    /// the skip index, then decode of at most one block.
    pub fn get(&self, index: u64) -> Option<u64> {
        let block = self.skip.partition_point(|meta| meta.last_index < index);
        let meta = self.skip.get(block)?;
        if index < meta.first_index {
            return None;
        }
        let bytes = self.bytes();
        let end = self
            .skip
            .get(block + 1)
            .map_or(bytes.len(), |m| m.byte_offset);
        let blk = &bytes[meta.byte_offset..end];
        let (first_index, first_count) = decode_block_head(blk);
        if index == first_index {
            return Some(first_count);
        }
        let n = meta.len as usize;
        if n == 1 {
            return None;
        }
        let mut idx = [0u64; BLOCK_ENTRIES];
        let mut cnt = [0u64; BLOCK_ENTRIES];
        decode_block_tail(blk, n, first_index, &mut idx, &mut cnt);
        match idx[..n - 1].binary_search(&index) {
            Ok(i) => Some(cnt[i]),
            Err(_) => None,
        }
    }

    /// A zero-alloc streaming pass over the entries, in index order —
    /// the single access path every consumer shares.
    pub fn iter(&self) -> RunsCursor<'_> {
        RunsCursor {
            runs: self,
            block: 0,
            in_block: 0,
            tail: TailBuf::new(),
        }
    }

    /// Decodes into the plain pair vector (tests, small runs).
    pub fn to_vec(&self) -> Vec<(u64, u64)> {
        self.iter().collect()
    }

    /// Folds sorted signed `(index, diff)` changes into this run: sums
    /// matching indexes, admits new ones, and drops entries whose count
    /// cancels to zero. Blocks whose index range meets no change are
    /// copied **wholesale** (bytes + skip row); only overlapping blocks
    /// are decoded and re-encoded, so the cost is
    /// `O(|changes| + touched blocks + copied skip rows)`.
    ///
    /// # Errors
    /// [`SignedMergeUnderflow`] when a merged count would go negative —
    /// the changes were not computed against this base.
    pub fn merge_signed(
        &self,
        changes: &[(u64, i64)],
    ) -> Result<CompressedRuns, SignedMergeUnderflow> {
        debug_assert!(changes.windows(2).all(|w| w[0].0 < w[1].0));
        let mut builder = RunsBuilder::new();
        let mut change = 0usize;
        let apply = |index: u64, count: u64, diff: i64| -> Result<u64, SignedMergeUnderflow> {
            u64::try_from(count as i128 + diff as i128).map_err(|_| SignedMergeUnderflow {
                index,
                count,
                delta: diff,
            })
        };
        let mut idx = [0u64; BLOCK_ENTRIES];
        let mut cnt = [0u64; BLOCK_ENTRIES];
        for meta in &self.skip {
            // Changes strictly below this block are insertions into the
            // gap before it.
            while let Some(&(index, diff)) =
                changes.get(change).filter(|&&(i, _)| i < meta.first_index)
            {
                let merged = apply(index, 0, diff)?;
                if merged > 0 {
                    builder.push(index, merged);
                }
                change += 1;
            }
            let overlaps = changes
                .get(change)
                .is_some_and(|&(i, _)| i <= meta.last_index);
            if !overlaps {
                // Untouched block: raw copy, no re-encode.
                builder.push_block_raw(meta, self.block_bytes(meta));
                continue;
            }
            // Overlapping block: decode and two-pointer merge.
            let blk = self.block_bytes(meta);
            let (first_index, first_count) = decode_block_head(blk);
            let n = meta.len as usize;
            if n > 1 {
                decode_block_tail(blk, n, first_index, &mut idx, &mut cnt);
            }
            let entries = std::iter::once((first_index, first_count)).chain(
                idx[..n - 1]
                    .iter()
                    .copied()
                    .zip(cnt[..n - 1].iter().copied()),
            );
            for (current, count) in entries {
                while let Some(&(index, diff)) = changes.get(change).filter(|&&(i, _)| i < current)
                {
                    let merged = apply(index, 0, diff)?;
                    if merged > 0 {
                        builder.push(index, merged);
                    }
                    change += 1;
                }
                match changes.get(change) {
                    Some(&(index, diff)) if index == current => {
                        let merged = apply(index, count, diff)?;
                        if merged > 0 {
                            builder.push(index, merged);
                        }
                        change += 1;
                    }
                    _ => builder.push(current, count),
                }
            }
        }
        // Changes past the last block are trailing insertions.
        for &(index, diff) in &changes[change..] {
            let merged = apply(index, 0, diff)?;
            if merged > 0 {
                builder.push(index, merged);
            }
        }
        Ok(builder.finish())
    }

    /// K-way merges sorted runs, **summing** counts of equal indexes —
    /// the sharded build's combine step. A block whose whole index range
    /// precedes every other run's next entry is copied wholesale; the
    /// per-entry heap path runs only where the runs interleave.
    pub fn merge_many(runs: &[CompressedRuns]) -> CompressedRuns {
        merge_streams(runs.iter().map(MemStream::new).collect())
    }

    /// The raw bytes of one block. Skip rows are sorted by byte offset,
    /// so the block's end is its successor's offset (binary-searched —
    /// merges call this once per wholesale-copied block).
    fn block_bytes(&self, meta: &BlockMeta) -> &[u8] {
        let bytes = self.bytes();
        let block = self
            .skip
            .partition_point(|m| m.byte_offset <= meta.byte_offset);
        let end = self.skip.get(block).map_or(bytes.len(), |m| m.byte_offset);
        &bytes[meta.byte_offset..end]
    }
}

impl<'a> IntoIterator for &'a CompressedRuns {
    type Item = (u64, u64);
    type IntoIter = RunsCursor<'a>;

    fn into_iter(self) -> RunsCursor<'a> {
        self.iter()
    }
}

/// A sorted entry source the k-way merge can drain: either an in-memory
/// run ([`MemStream`]) or a disk-resident spill shard. The contract
/// mirrors [`RunsCursor`]'s lazy head decode so the wholesale-copy fast
/// path never decodes a block tail.
pub(crate) trait RunStream {
    /// Skip row of the block at the read head, when the stream sits
    /// exactly at an undecoded block boundary (the wholesale-copy
    /// precondition).
    fn head_block(&self) -> Option<BlockMeta>;

    /// Next `(index, count)` entry, in index order.
    fn next_entry(&mut self) -> Option<(u64, u64)>;

    /// Called right after [`RunStream::next_entry`] returned the head
    /// entry of `meta`: yields the block's raw bytes for a wholesale
    /// copy and advances the stream past the block's remaining entries.
    fn take_block(&mut self, meta: &BlockMeta) -> &[u8];
}

/// [`RunStream`] over an in-memory [`CompressedRuns`].
pub(crate) struct MemStream<'a> {
    runs: &'a CompressedRuns,
    cursor: RunsCursor<'a>,
}

impl<'a> MemStream<'a> {
    pub(crate) fn new(runs: &'a CompressedRuns) -> MemStream<'a> {
        MemStream {
            runs,
            cursor: runs.iter(),
        }
    }
}

impl RunStream for MemStream<'_> {
    fn head_block(&self) -> Option<BlockMeta> {
        self.cursor.block_at_head()
    }

    fn next_entry(&mut self) -> Option<(u64, u64)> {
        self.cursor.next()
    }

    fn take_block(&mut self, meta: &BlockMeta) -> &[u8] {
        self.cursor.skip_rest_of_block(meta);
        self.runs.block_bytes(meta)
    }
}

/// The k-way merge shared by [`CompressedRuns::merge_many`] and the
/// spill-to-disk build: sums counts of equal indexes and wholesale-copies
/// any block whose range precedes every other stream's next entry.
/// Because disk shards drain through the same loop as in-memory runs,
/// a spilled build is bit-identical to the in-memory one.
pub(crate) fn merge_streams<S: RunStream>(sources: Vec<S>) -> CompressedRuns {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// One stream's read head: the pre-decoded next entry, plus — when
    /// that entry opened a fresh block — the block's skip row, which is
    /// the wholesale-copy opportunity.
    struct Head<S> {
        source: S,
        next: Option<(u64, u64)>,
        head_block: Option<BlockMeta>,
    }

    impl<S: RunStream> Head<S> {
        fn advance(&mut self) {
            self.head_block = self.source.head_block();
            self.next = self.source.next_entry();
        }
    }

    let mut heads: Vec<Head<S>> = sources
        .into_iter()
        .map(|source| {
            let mut head = Head {
                source,
                next: None,
                head_block: None,
            };
            head.advance();
            head
        })
        .collect();
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = heads
        .iter()
        .enumerate()
        .filter_map(|(run, head)| head.next.map(|(index, _)| Reverse((index, run))))
        .collect();

    let mut builder = RunsBuilder::new();
    // The entry merged most recently but not yet pushed: equal
    // indexes from other streams still need summing into it.
    let mut acc: Option<(u64, u64)> = None;
    while let Some(Reverse((index, run))) = heap.pop() {
        let head = &mut heads[run];
        let (_, count) = head.next.expect("heap entries are pending");
        match acc {
            Some((i, ref mut c)) if i == index => *c += count,
            _ => {
                if let Some(entry) = acc.take() {
                    builder.push(entry.0, entry.1);
                }
                // Wholesale fast path: the pending entry heads a fresh
                // block whose entire range precedes every other stream's
                // next index — transfer the block raw (head entry
                // included) and skip its decode.
                let other_min = heap.peek().map_or(u64::MAX, |&Reverse((i, _))| i);
                match head.head_block {
                    Some(meta) if meta.last_index < other_min => {
                        let bytes = head.source.take_block(&meta);
                        builder.push_block_raw(&meta, bytes);
                    }
                    _ => acc = Some((index, count)),
                }
            }
        }
        head.advance();
        if let Some((next, _)) = head.next {
            heap.push(Reverse((next, run)));
        }
    }
    if let Some((index, count)) = acc {
        builder.push(index, count);
    }
    builder.finish()
}

/// The decoded tail of one block (entries after the head), staged in
/// fixed stack buffers so iteration serves from plain arrays.
#[derive(Clone)]
struct TailBuf {
    idx: [u64; BLOCK_ENTRIES],
    cnt: [u64; BLOCK_ENTRIES],
}

impl TailBuf {
    fn new() -> TailBuf {
        TailBuf {
            idx: [0; BLOCK_ENTRIES],
            cnt: [0; BLOCK_ENTRIES],
        }
    }
}

/// The zero-alloc streaming decoder over a [`CompressedRuns`]: a plain
/// `Iterator<Item = (u64, u64)>` that decodes one block at a time into
/// a stack buffer. Entering a block decodes only its head entry; the
/// tail is decoded lazily when (and only when) the second entry is
/// demanded — so a consumer that skips whole blocks (the merge's
/// wholesale path) never pays for tails.
#[derive(Clone)]
pub struct RunsCursor<'a> {
    runs: &'a CompressedRuns,
    /// Current block id.
    block: usize,
    /// Entries already yielded from the current block (0 = at a block
    /// boundary; ≥1 = head yielded, tail decoded from 2nd entry on).
    in_block: u32,
    /// Decoded tail of the current block (valid once `in_block ≥ 2`,
    /// or at `in_block == 1` after the lazy decode).
    tail: TailBuf,
}

impl std::fmt::Debug for RunsCursor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunsCursor")
            .field("block", &self.block)
            .field("in_block", &self.in_block)
            .finish()
    }
}

impl<'a> RunsCursor<'a> {
    /// The bytes of block `block` — O(1): a block ends where its
    /// successor begins.
    fn block_slice(&self, block: usize, meta: &BlockMeta) -> &'a [u8] {
        let bytes = self.runs.bytes();
        let end = self
            .runs
            .skip
            .get(block + 1)
            .map_or(bytes.len(), |m| m.byte_offset);
        &bytes[meta.byte_offset..end]
    }

    /// When the cursor sits exactly at the head of an undecoded block,
    /// that block's skip row — the wholesale-copy precondition.
    fn block_at_head(&self) -> Option<BlockMeta> {
        (self.in_block == 0).then(|| self.runs.skip.get(self.block).copied())?
    }

    /// Jumps past the remaining entries of `meta`, whose head the cursor
    /// already yielded (the caller transferred the block raw instead of
    /// decoding the tail). No-op for single-entry blocks — the head
    /// decode already advanced past them.
    fn skip_rest_of_block(&mut self, meta: &BlockMeta) {
        if self.in_block == 0 {
            debug_assert_eq!(meta.len, 1, "only a spent block leaves the head at 0");
            return;
        }
        debug_assert_eq!(self.in_block, 1, "only the head entry was decoded");
        debug_assert!(meta.len > 1);
        self.block += 1;
        self.in_block = 0;
    }
}

impl Iterator for RunsCursor<'_> {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        let meta = *self.runs.skip.get(self.block)?;
        if self.in_block == 0 {
            // Lazy head decode: the tag plus two varints, nothing more.
            let head = decode_block_head(self.block_slice(self.block, &meta));
            if meta.len == 1 {
                self.block += 1;
            } else {
                self.in_block = 1;
            }
            return Some(head);
        }
        if self.in_block == 1 {
            // Second entry demanded: decode the whole tail in one pass.
            decode_block_tail(
                self.block_slice(self.block, &meta),
                meta.len as usize,
                meta.first_index,
                &mut self.tail.idx,
                &mut self.tail.cnt,
            );
        }
        let at = (self.in_block - 1) as usize;
        let entry = (self.tail.idx[at], self.tail.cnt[at]);
        self.in_block += 1;
        if self.in_block == meta.len {
            self.block += 1;
            self.in_block = 0;
        }
        Some(entry)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let consumed: usize = self.runs.skip[..self.block]
            .iter()
            .map(|m| m.len as usize)
            .sum::<usize>()
            + self.in_block as usize;
        let left = self.runs.len - consumed;
        (left, Some(left))
    }

    /// Block-wise fold: full blocks are decoded once into the stack
    /// buffer and folded straight out of it, skipping the per-entry
    /// state machine — the bulk-decode path histogram builds and
    /// benchmarks hit.
    fn fold<B, F>(mut self, init: B, mut f: F) -> B
    where
        F: FnMut(B, (u64, u64)) -> B,
    {
        let mut acc = init;
        // Finish a partially consumed block entry-at-a-time first.
        while self.in_block != 0 {
            match self.next() {
                Some(entry) => acc = f(acc, entry),
                None => return acc,
            }
        }
        while let Some(&meta) = self.runs.skip.get(self.block) {
            let blk = self.block_slice(self.block, &meta);
            acc = f(acc, decode_block_head(blk));
            let n = meta.len as usize;
            if n > 1 {
                decode_block_tail(
                    blk,
                    n,
                    meta.first_index,
                    &mut self.tail.idx,
                    &mut self.tail.cnt,
                );
                for at in 0..n - 1 {
                    acc = f(acc, (self.tail.idx[at], self.tail.cnt[at]));
                }
            }
            self.block += 1;
        }
        acc
    }
}

impl ExactSizeIterator for RunsCursor<'_> {}

/// Incremental writer of a [`CompressedRuns`]: entries stream in via
/// [`RunsBuilder::push`] (strictly increasing, non-zero counts), whole
/// untouched blocks via [`RunsBuilder::push_block_raw`]. Entries are
/// staged in a block-sized buffer; each full (or final partial) block is
/// encoded with whichever codec is smaller for its contents.
pub struct RunsBuilder {
    bytes: Vec<u8>,
    skip: Vec<BlockMeta>,
    len: usize,
    total_mass: u64,
    /// Entries staged for the open block.
    pending: usize,
    pending_mass: u64,
    pend_idx: [u64; BLOCK_ENTRIES],
    pend_cnt: [u64; BLOCK_ENTRIES],
    last_index: Option<u64>,
    varint_only: bool,
}

impl std::fmt::Debug for RunsBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunsBuilder")
            .field("len", &self.len)
            .field("pending", &self.pending)
            .field("blocks", &self.skip.len())
            .finish()
    }
}

impl Default for RunsBuilder {
    fn default() -> RunsBuilder {
        RunsBuilder::new()
    }
}

impl RunsBuilder {
    /// An empty builder.
    pub fn new() -> RunsBuilder {
        RunsBuilder {
            bytes: Vec::new(),
            skip: Vec::new(),
            len: 0,
            total_mass: 0,
            pending: 0,
            pending_mass: 0,
            pend_idx: [0; BLOCK_ENTRIES],
            pend_cnt: [0; BLOCK_ENTRIES],
            last_index: None,
            varint_only: false,
        }
    }

    /// Forces every block onto the varint codec — the decode-throughput
    /// benchmark's baseline. Production builders always let the encoder
    /// choose per block.
    pub fn varint_only(mut self) -> RunsBuilder {
        self.varint_only = true;
        self
    }

    /// Appends one entry. Indexes must arrive strictly increasing and
    /// counts non-zero (debug-asserted — every producer in this crate
    /// upholds the run invariants by construction).
    pub fn push(&mut self, index: u64, count: u64) {
        debug_assert!(count > 0, "explicit zero count at {index}");
        debug_assert!(
            self.last_index.is_none_or(|last| last < index),
            "index {index} does not increase strictly"
        );
        self.pend_idx[self.pending] = index;
        self.pend_cnt[self.pending] = count;
        self.pending += 1;
        self.pending_mass = self.pending_mass.wrapping_add(count);
        self.last_index = Some(index);
        self.len += 1;
        self.total_mass = self.total_mass.wrapping_add(count);
        if self.pending == BLOCK_ENTRIES {
            self.flush();
        }
    }

    /// Appends a whole block verbatim: `bytes` are the block's encoded
    /// (tagged) stream exactly as described by `meta`. Any partially
    /// filled block is flushed first (blocks are self-contained, so
    /// boundaries need not align). The block's indexes must all exceed
    /// the last pushed index.
    pub fn push_block_raw(&mut self, meta: &BlockMeta, bytes: &[u8]) {
        debug_assert!(
            self.last_index.is_none_or(|last| last < meta.first_index),
            "raw block starts at {} behind cursor {:?}",
            meta.first_index,
            self.last_index
        );
        self.flush();
        let byte_offset = self.bytes.len();
        self.bytes.extend_from_slice(bytes);
        self.skip.push(BlockMeta {
            byte_offset,
            ..*meta
        });
        self.last_index = Some(meta.last_index);
        self.len += meta.len as usize;
        self.total_mass = self.total_mass.wrapping_add(meta.mass);
    }

    /// Encodes and closes the staged block, if any.
    fn flush(&mut self) {
        if self.pending == 0 {
            return;
        }
        let n = self.pending;
        let byte_offset = self.bytes.len();
        encode_block(
            &mut self.bytes,
            &self.pend_idx[..n],
            &self.pend_cnt[..n],
            self.varint_only,
        );
        self.skip.push(BlockMeta {
            first_index: self.pend_idx[0],
            last_index: self.pend_idx[n - 1],
            byte_offset,
            len: n as u32,
            mass: self.pending_mass,
        });
        self.pending = 0;
        self.pending_mass = 0;
    }

    /// Finishes the run. The vectors are shrunk to fit: the run is
    /// long-lived (retained catalogs, maintenance state), so push-growth
    /// slack would be permanent resident memory — and would inflate
    /// [`CompressedRuns::size_bytes`], which reports capacity.
    pub fn finish(mut self) -> CompressedRuns {
        self.flush();
        self.bytes.shrink_to_fit();
        self.skip.shrink_to_fit();
        CompressedRuns {
            bytes: RunBytes::Owned(self.bytes),
            skip: self.skip,
            len: self.len,
            total_mass: self.total_mass,
        }
    }
}

// ---------------------------------------------------------------------
// Block codec kernels.
// ---------------------------------------------------------------------

/// Encodes one block, choosing the cheaper codec (packed on ties) —
/// both layouts are sized analytically before a byte is written.
fn encode_block(out: &mut Vec<u8>, idx: &[u64], cnt: &[u64], varint_only: bool) {
    let n = idx.len();
    debug_assert!((1..=BLOCK_ENTRIES).contains(&n));
    if n == 1 || varint_only {
        encode_varint_block(out, idx, cnt);
        return;
    }
    // Tail statistics: index gaps and counts of entries 1..n.
    let mut gaps = [0u64; BLOCK_ENTRIES];
    let (mut gap_min, mut gap_max) = (u64::MAX, 0u64);
    let (mut cnt_min, mut cnt_max) = (u64::MAX, 0u64);
    let mut varint_tail = 0usize;
    for (slot, (pair, &count)) in gaps[..n - 1].iter_mut().zip(idx.windows(2).zip(&cnt[1..])) {
        let gap = pair[1] - pair[0];
        *slot = gap;
        gap_min = gap_min.min(gap);
        gap_max = gap_max.max(gap);
        cnt_min = cnt_min.min(count);
        cnt_max = cnt_max.max(count);
        varint_tail += varint_len(gap) + varint_len(count);
    }
    let gap_width = width_for(gap_max - gap_min);
    let cnt_width = width_for(cnt_max - cnt_min);
    let packed_tail = 2
        + varint_len(gap_min)
        + varint_len(cnt_min)
        + lane_bytes(n - 1, gap_width)
        + lane_bytes(n - 1, cnt_width);
    if packed_tail > varint_tail {
        // Pathological block (e.g. one outlier gap widening the whole
        // lane): keep the varint layout.
        encode_varint_block(out, idx, cnt);
        return;
    }
    out.push(TAG_PACKED);
    encode_varint(out, idx[0]);
    encode_varint(out, cnt[0]);
    out.push(gap_width);
    out.push(cnt_width);
    encode_varint(out, gap_min);
    encode_varint(out, cnt_min);
    pack_lane(out, &gaps[..n - 1], gap_min, gap_width);
    pack_lane(out, &cnt[1..], cnt_min, cnt_width);
}

/// The tag-0 layout: absolute head, then per-entry delta varints.
fn encode_varint_block(out: &mut Vec<u8>, idx: &[u64], cnt: &[u64]) {
    out.push(TAG_VARINT);
    encode_varint(out, idx[0]);
    encode_varint(out, cnt[0]);
    for (pair, &count) in idx.windows(2).zip(&cnt[1..]) {
        encode_varint(out, pair[1] - pair[0]);
        encode_varint(out, count);
    }
}

/// Decodes a block's head entry — the tag byte plus two varints; the
/// tail stays untouched (wholesale merges never need it).
pub(crate) fn decode_block_head(block: &[u8]) -> (u64, u64) {
    let mut pos = 1; // past the codec tag
    let index = decode_varint(block, &mut pos).expect("validated block head");
    let count = decode_varint(block, &mut pos).expect("validated block head");
    (index, count)
}

/// Decodes a block's tail (entries after the head) into `idx`/`cnt`
/// `[0..len-1]` as absolute indexes and counts. `block` is the block's
/// own byte slice (tag first); the stream was validated at construction,
/// so malformed bytes are a programming error (panic), not a result.
pub(crate) fn decode_block_tail(
    block: &[u8],
    len: usize,
    first_index: u64,
    idx: &mut [u64; BLOCK_ENTRIES],
    cnt: &mut [u64; BLOCK_ENTRIES],
) {
    debug_assert!(len > 1);
    let tag = block[0];
    let mut pos = 1;
    decode_varint(block, &mut pos).expect("validated head index");
    decode_varint(block, &mut pos).expect("validated head count");
    let n = len - 1;
    match tag {
        TAG_VARINT => {
            let mut prev = first_index;
            for (i_slot, c_slot) in idx[..n].iter_mut().zip(cnt[..n].iter_mut()) {
                let gap = decode_varint(block, &mut pos).expect("validated gap");
                prev += gap;
                *i_slot = prev;
                *c_slot = decode_varint(block, &mut pos).expect("validated count");
            }
        }
        TAG_PACKED => {
            let gap_width = block[pos];
            let cnt_width = block[pos + 1];
            pos += 2;
            let gap_min = decode_varint(block, &mut pos).expect("validated gap min");
            let cnt_min = decode_varint(block, &mut pos).expect("validated count min");
            let gap_lane = lane_bytes(n, gap_width);
            unpack_lane(&block[pos..pos + gap_lane], n, gap_min, gap_width, idx);
            pos += gap_lane;
            let cnt_lane = lane_bytes(n, cnt_width);
            unpack_lane(&block[pos..pos + cnt_lane], n, cnt_min, cnt_width, cnt);
            // Prefix-sum the gaps into absolute indexes.
            let mut prev = first_index;
            for slot in idx[..n].iter_mut() {
                prev = prev.wrapping_add(*slot);
                *slot = prev;
            }
        }
        other => unreachable!("validated codec tag, got {other}"),
    }
}

/// Bytes a lane of `n` values at `width` bits occupies: whole `u64`
/// words, LSB-first.
fn lane_bytes(n: usize, width: u8) -> usize {
    (n * width as usize).div_ceil(64) * 8
}

/// Minimal bit width holding `max_residual` (0..=64).
fn width_for(max_residual: u64) -> u8 {
    (64 - max_residual.leading_zeros()) as u8
}

/// LEB128 length of `value` in bytes.
fn varint_len(value: u64) -> usize {
    ((64 - value.leading_zeros()).max(1) as usize).div_ceil(7)
}

/// Packs `values - min` at `width` bits each into LSB-first `u64` words
/// (little-endian bytes), padded to a whole word.
fn pack_lane(out: &mut Vec<u8>, values: &[u64], min: u64, width: u8) {
    if width == 0 {
        return;
    }
    let mut acc: u128 = 0;
    let mut acc_bits: u32 = 0;
    for &value in values {
        acc |= ((value - min) as u128) << acc_bits;
        acc_bits += width as u32;
        while acc_bits >= 64 {
            out.extend_from_slice(&(acc as u64).to_le_bytes());
            acc >>= 64;
            acc_bits -= 64;
        }
    }
    if acc_bits > 0 {
        out.extend_from_slice(&(acc as u64).to_le_bytes());
    }
}

/// Unpacks `n` fixed-width residuals from `lane` into `out[..n]`, adding
/// `min` back. Branch-free per entry: each residual straddles at most
/// two `u64` words, read as one `u128` shift/mask.
fn unpack_lane(lane: &[u8], n: usize, min: u64, width: u8, out: &mut [u64; BLOCK_ENTRIES]) {
    if width == 0 {
        out[..n].fill(min);
        return;
    }
    debug_assert_eq!(lane.len(), lane_bytes(n, width));
    let mask = u64::MAX >> (64 - width as u32);
    let width = width as usize;
    if width > 57 {
        // A residual this wide can straddle a byte-aligned 8-byte window;
        // take the two-word u128 path. Rare: counts would need ≥ 2^57
        // spread within one block.
        let mut words = [0u64; BLOCK_ENTRIES + 1];
        for (word, chunk) in words.iter_mut().zip(lane.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        for (i, slot) in out[..n].iter_mut().enumerate() {
            let bit = i * width;
            let word = bit >> 6;
            let lo = words[word] as u128 | ((words[word + 1] as u128) << 64);
            *slot = min.wrapping_add(((lo >> (bit & 63)) as u64) & mask);
        }
        return;
    }
    // Fast path (width ≤ 57): every residual fits the 57+ bits an
    // unaligned 8-byte load reaches past its bit offset, so each entry
    // is one load + shift + mask straight off the lane — no staging
    // copy. Only entries whose window would read past the lane's end
    // (the last handful) are served from a small zero-padded copy of
    // the final bytes.
    let direct = (((lane.len() - 8) * 8 + 7) / width + 1).min(n);
    let mut start = 0;
    #[cfg(target_arch = "x86_64")]
    if width <= 14 && simd::avx2_available() {
        // Four residuals at width ≤ 14 span ≤ 56 bits plus a ≤ 7-bit
        // start shift, so each group of four decodes from one 8-byte
        // window with per-lane variable shifts.
        let groups = direct & !3;
        // SAFETY: AVX2 was detected; every entry `i < groups ≤ direct`
        // keeps its window inside the lane by `direct`'s construction.
        unsafe { simd::unpack_lane_x4(lane, groups, min, width, out) };
        start = groups;
    }
    let ptr = lane.as_ptr();
    for (i, slot) in out[start..direct].iter_mut().enumerate() {
        let bit = (start + i) * width;
        // SAFETY: the entry is below `direct`, which guarantees
        // `(bit >> 3) + 8 ≤ lane.len()` by construction, so the 8-byte
        // window is in bounds.
        let window = u64::from_le(unsafe { ptr.add(bit >> 3).cast::<u64>().read_unaligned() });
        *slot = min.wrapping_add((window >> (bit & 7)) & mask);
    }
    if direct < n {
        let copy = lane.len().min(16);
        let mut tail = [0u8; 24];
        tail[..copy].copy_from_slice(&lane[lane.len() - copy..]);
        let base_bit = (lane.len() - copy) * 8;
        for (i, slot) in out[direct..n].iter_mut().enumerate() {
            let bit = (direct + i) * width - base_bit;
            let byte = bit >> 3;
            let window =
                u64::from_le_bytes(tail[byte..byte + 8].try_into().expect("8-byte window"));
            *slot = min.wrapping_add((window >> (bit & 7)) & mask);
        }
    }
}

/// AVX2 specialization of the hot unpack loop — used when the CPU has
/// it, with [`unpack_lane`]'s scalar windows as the universal fallback.
#[cfg(target_arch = "x86_64")]
mod simd {
    use super::BLOCK_ENTRIES;
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_and_si256, _mm256_set1_epi64x, _mm256_set_epi64x,
        _mm256_srlv_epi64, _mm256_storeu_si256,
    };
    use std::sync::OnceLock;

    /// Whether the running CPU has AVX2 (detected once, cached).
    pub(super) fn avx2_available() -> bool {
        static AVX2: OnceLock<bool> = OnceLock::new();
        *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }

    /// Unpacks the first `groups` entries (a multiple of 4) of `width`
    /// ≤ 14 bits from `lane` into `out`, adding `min` — four residuals
    /// per iteration: one 8-byte window broadcast to four lanes, shifted
    /// by `base + {0, w, 2w, 3w}`, masked, and rebased in one store.
    ///
    /// # Safety
    /// Caller guarantees AVX2 is available, `1 ≤ width ≤ 14`,
    /// `groups % 4 == 0`, `groups ≤ BLOCK_ENTRIES`, and that every entry
    /// `i < groups` keeps `((i * width) >> 3) + 8 ≤ lane.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn unpack_lane_x4(
        lane: &[u8],
        groups: usize,
        min: u64,
        width: usize,
        out: &mut [u64; BLOCK_ENTRIES],
    ) {
        let mask = _mm256_set1_epi64x((u64::MAX >> (64 - width as u32)) as i64);
        let rebase = _mm256_set1_epi64x(min as i64);
        let offsets = _mm256_set_epi64x(3 * width as i64, 2 * width as i64, width as i64, 0);
        let ptr = lane.as_ptr();
        let mut i = 0;
        while i < groups {
            let bit = i * width;
            // SAFETY: the caller's bound keeps the window inside `lane`.
            let window = unsafe { ptr.add(bit >> 3).cast::<i64>().read_unaligned() };
            let lanes = _mm256_set1_epi64x(i64::from_le(window));
            let shifts = _mm256_add_epi64(_mm256_set1_epi64x((bit & 7) as i64), offsets);
            let values = _mm256_add_epi64(
                _mm256_and_si256(_mm256_srlv_epi64(lanes, shifts), mask),
                rebase,
            );
            // SAFETY: `i + 4 ≤ groups ≤ BLOCK_ENTRIES`, so the 4-wide
            // store stays inside `out`.
            unsafe { _mm256_storeu_si256(out.as_mut_ptr().add(i).cast::<__m256i>(), values) };
            i += 4;
        }
    }
}

/// Validates a tagged byte stream against its declared per-block entry
/// counts and derives the skip index — shared by
/// [`CompressedRuns::from_tagged_encoded`] and the catalog file reader
/// (which borrows the bytes from a mapped region instead of owning
/// them). Returns `(skip, len, total_mass)`.
pub(crate) fn validate_tagged(
    bytes: &[u8],
    block_lens: &[u32],
) -> Result<(Vec<BlockMeta>, usize, u64), RunsCorrupt> {
    let mut skip = Vec::with_capacity(block_lens.len());
    let mut pos = 0usize;
    let mut len = 0usize;
    let mut total_mass = 0u64;
    let mut prev: Option<u64> = None;
    for (block_id, &block_len) in block_lens.iter().enumerate() {
        let n = block_len as usize;
        if n == 0 || n > BLOCK_ENTRIES {
            return Err(RunsCorrupt(format!(
                "block {block_id} declares {block_len} entries (1..={BLOCK_ENTRIES})"
            )));
        }
        let err = |what: &str| RunsCorrupt(format!("block {block_id}: {what}"));
        let byte_offset = pos;
        let tag = *bytes.get(pos).ok_or_else(|| err("missing codec tag"))?;
        pos += 1;
        let first_index =
            decode_varint(bytes, &mut pos).ok_or_else(|| err("truncated head index"))?;
        let first_count =
            decode_varint(bytes, &mut pos).ok_or_else(|| err("truncated head count"))?;
        if first_count == 0 {
            return Err(err("explicit zero count"));
        }
        if prev.is_some_and(|p| first_index <= p) {
            return Err(err("index does not increase strictly"));
        }
        let mut last_index = first_index;
        let mut mass = first_count;
        match tag {
            TAG_VARINT => {
                for _ in 1..n {
                    let gap = decode_varint(bytes, &mut pos).ok_or_else(|| err("truncated gap"))?;
                    if gap == 0 {
                        return Err(err("zero index delta"));
                    }
                    last_index = last_index
                        .checked_add(gap)
                        .ok_or_else(|| err("index overflows u64"))?;
                    let count =
                        decode_varint(bytes, &mut pos).ok_or_else(|| err("truncated count"))?;
                    if count == 0 {
                        return Err(err("explicit zero count"));
                    }
                    mass = mass.wrapping_add(count);
                }
            }
            TAG_PACKED => {
                if n == 1 {
                    return Err(err("packed codec on a single-entry block"));
                }
                let widths = bytes
                    .get(pos..pos + 2)
                    .ok_or_else(|| err("truncated lane widths"))?;
                let (gap_width, cnt_width) = (widths[0], widths[1]);
                pos += 2;
                if gap_width > 64 || cnt_width > 64 {
                    return Err(err("lane width exceeds 64 bits"));
                }
                let gap_min =
                    decode_varint(bytes, &mut pos).ok_or_else(|| err("truncated gap min"))?;
                let cnt_min =
                    decode_varint(bytes, &mut pos).ok_or_else(|| err("truncated count min"))?;
                let tail = n - 1;
                let gap_lane = lane_bytes(tail, gap_width);
                let gap_bytes = bytes
                    .get(pos..pos + gap_lane)
                    .ok_or_else(|| err("truncated gap lane"))?;
                pos += gap_lane;
                let cnt_lane = lane_bytes(tail, cnt_width);
                let cnt_bytes = bytes
                    .get(pos..pos + cnt_lane)
                    .ok_or_else(|| err("truncated count lane"))?;
                pos += cnt_lane;
                // Unpack raw residuals (min = 0) so the min-add can be
                // overflow-checked against adversarial streams.
                let mut gaps = [0u64; BLOCK_ENTRIES];
                let mut counts = [0u64; BLOCK_ENTRIES];
                unpack_lane(gap_bytes, tail, 0, gap_width, &mut gaps);
                unpack_lane(cnt_bytes, tail, 0, cnt_width, &mut counts);
                for (&gap_resid, &cnt_resid) in gaps[..tail].iter().zip(&counts[..tail]) {
                    let gap = gap_min
                        .checked_add(gap_resid)
                        .ok_or_else(|| err("gap overflows u64"))?;
                    if gap == 0 {
                        return Err(err("zero index delta"));
                    }
                    last_index = last_index
                        .checked_add(gap)
                        .ok_or_else(|| err("index overflows u64"))?;
                    let count = cnt_min
                        .checked_add(cnt_resid)
                        .ok_or_else(|| err("count overflows u64"))?;
                    if count == 0 {
                        return Err(err("explicit zero count"));
                    }
                    mass = mass.wrapping_add(count);
                }
            }
            _ => return Err(err("unknown codec tag")),
        }
        prev = Some(last_index);
        total_mass = total_mass.wrapping_add(mass);
        len += n;
        skip.push(BlockMeta {
            first_index,
            last_index,
            byte_offset,
            len: block_len,
            mass,
        });
    }
    if pos != bytes.len() {
        return Err(RunsCorrupt(format!(
            "{} trailing bytes after the declared blocks",
            bytes.len() - pos
        )));
    }
    Ok((skip, len, total_mass))
}

/// LEB128 append.
fn encode_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// LEB128 read at `*pos`, advancing it. `None` on truncation or a varint
/// longer than [`MAX_VARINT`] bytes.
fn decode_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    for i in 0..MAX_VARINT {
        let byte = *bytes.get(*pos + i)?;
        value |= ((byte & 0x7f) as u64) << (7 * i);
        if byte & 0x80 == 0 {
            *pos += i + 1;
            return Some(value);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runs_of(entries: &[(u64, u64)]) -> CompressedRuns {
        CompressedRuns::from_entries(entries)
    }

    /// Encodes entries in the legacy (pre-v5) untagged delta-varint
    /// stream — the fixture format for `from_encoded` tests.
    fn legacy_encode(entries: &[(u64, u64)]) -> (Vec<u8>, Vec<u32>) {
        let mut bytes = Vec::new();
        let mut lens = Vec::new();
        for block in entries.chunks(BLOCK_ENTRIES) {
            let mut prev = 0u64;
            for (entry, &(index, count)) in block.iter().enumerate() {
                let raw = if entry == 0 { index } else { index - prev };
                encode_varint(&mut bytes, raw);
                encode_varint(&mut bytes, count);
                prev = index;
            }
            lens.push(block.len() as u32);
        }
        (bytes, lens)
    }

    #[test]
    fn round_trips_and_looks_up() {
        let entries: Vec<(u64, u64)> = (0..1000u64).map(|i| (i * i + 7, i + 1)).collect();
        let runs = runs_of(&entries);
        assert_eq!(runs.to_vec(), entries);
        assert_eq!(runs.len(), entries.len());
        assert_eq!(
            runs.total_mass(),
            entries.iter().map(|&(_, c)| c).sum::<u64>()
        );
        for &(index, count) in &entries {
            assert_eq!(runs.get(index), Some(count), "index {index}");
        }
        assert_eq!(runs.get(0), None);
        assert_eq!(runs.get(8), Some(2));
        assert_eq!(runs.get(9), None);
        assert_eq!(runs.get(u64::MAX), None);
        // Blocks hold at most BLOCK_ENTRIES entries each.
        assert!(runs
            .skip_index()
            .iter()
            .all(|m| m.len as usize <= BLOCK_ENTRIES));
        assert_eq!(
            runs.skip_index()
                .iter()
                .map(|m| m.len as usize)
                .sum::<usize>(),
            entries.len()
        );
    }

    #[test]
    fn extreme_indexes_and_counts_round_trip() {
        let entries = vec![
            (0u64, 1u64),
            (1, u64::MAX),
            (1 << 35, 1 << 50),
            (u64::MAX - 1, 3),
            (u64::MAX, 9),
        ];
        let runs = runs_of(&entries);
        assert_eq!(runs.to_vec(), entries);
        assert_eq!(runs.get(u64::MAX), Some(9));
        assert_eq!(runs.get(u64::MAX - 1), Some(3));
        assert_eq!(runs.get(1), Some(u64::MAX));
    }

    #[test]
    fn boundary_lane_widths_round_trip() {
        // Width 0: constant gap, constant count — the whole tail packs
        // into zero lane bytes.
        let constant: Vec<(u64, u64)> = (0..300u64).map(|i| (i * 4, 7)).collect();
        let runs = runs_of(&constant);
        assert_eq!(runs.to_vec(), constant);
        let (_, packed) = runs.block_codec_counts();
        assert!(packed > 0, "constant blocks should pack");

        // Width 1: gaps alternate between two adjacent values.
        let mut index = 0u64;
        let skewed: Vec<(u64, u64)> = (0..300u64)
            .map(|i| {
                index += 3 + (i & 1);
                (index, 10 + (i & 1))
            })
            .collect();
        let runs = runs_of(&skewed);
        assert_eq!(runs.to_vec(), skewed);

        // Width 64 in both lanes: residuals spanning the full u64 range.
        let extremes = vec![(0u64, 1u64), (1, u64::MAX), (u64::MAX, 2)];
        let runs = runs_of(&extremes);
        assert_eq!(runs.to_vec(), extremes);
        assert_eq!(runs.get(u64::MAX), Some(2));
    }

    #[test]
    fn packed_matches_varint_baseline() {
        // Representative catalog shape: mixed small gaps and counts.
        let entries: Vec<(u64, u64)> = (0..5000u64)
            .map(|i| (i * 13 + (i % 11), 1 + (i * i) % 900))
            .collect();
        let chosen = runs_of(&entries);
        let mut baseline = RunsBuilder::new().varint_only();
        for &(index, count) in &entries {
            baseline.push(index, count);
        }
        let baseline = baseline.finish();
        // Identical decoded content, identical lookups.
        assert_eq!(chosen, baseline);
        assert_eq!(chosen.to_vec(), baseline.to_vec());
        // The chooser never exceeds the varint encoding.
        assert!(
            chosen.payload_bytes() <= baseline.payload_bytes(),
            "{} packed vs {} varint",
            chosen.payload_bytes(),
            baseline.payload_bytes()
        );
        let (varint_blocks, packed_blocks) = chosen.block_codec_counts();
        assert!(
            packed_blocks > 0,
            "clustered data should pick the packed codec"
        );
        let (baseline_varint, baseline_packed) = baseline.block_codec_counts();
        assert_eq!(baseline_packed, 0, "baseline must stay varint");
        assert_eq!(baseline_varint, varint_blocks + packed_blocks);
    }

    #[test]
    fn compresses_clustered_indexes() {
        // Small gaps, small counts: the representative catalog shape.
        let entries: Vec<(u64, u64)> = (0..100_000u64).map(|i| (i * 3, 1 + i % 7)).collect();
        let runs = runs_of(&entries);
        assert!(
            runs.size_bytes() * 3 < runs.plain_bytes(),
            "{} vs {} plain",
            runs.size_bytes(),
            runs.plain_bytes()
        );
    }

    #[test]
    fn content_equality_ignores_block_boundaries() {
        let entries: Vec<(u64, u64)> = (0..500u64).map(|i| (i * 5 + 1, i + 1)).collect();
        let uniform = runs_of(&entries);
        // Same content, different boundaries: build in two raw chunks.
        let a = runs_of(&entries[..100]);
        let b = runs_of(&entries[100..]);
        let mut builder = RunsBuilder::new();
        for meta in a.skip_index() {
            builder.push_block_raw(meta, a.block_bytes(meta));
        }
        for meta in b.skip_index() {
            builder.push_block_raw(meta, b.block_bytes(meta));
        }
        let stitched = builder.finish();
        assert_ne!(stitched.skip_index().len(), uniform.skip_index().len());
        assert_eq!(stitched, uniform);
    }

    #[test]
    fn merge_signed_sums_admits_cancels_and_copies() {
        let entries: Vec<(u64, u64)> = (0..1000u64).map(|i| (i * 2, 10)).collect();
        let runs = runs_of(&entries);
        // One change in the middle block; everything else raw-copies.
        let merged = runs.merge_signed(&[(500 * 2, 5)]).unwrap();
        let mut expected = entries.clone();
        expected[500].1 = 15;
        assert_eq!(merged.to_vec(), expected);

        // Admission (gap + trailing), cancellation, and summation at once.
        let merged = runs
            .merge_signed(&[(0, -10), (1, 4), (998 * 2, 1), (5000, 7)])
            .unwrap();
        let mut expected: Vec<(u64, u64)> = entries.clone();
        expected[998].1 = 11;
        expected.remove(0);
        expected.insert(0, (1, 4));
        expected.push((5000, 7));
        assert_eq!(merged.to_vec(), expected);

        // Underflow refused with the offending coordinates.
        let err = runs.merge_signed(&[(4, -11)]).unwrap_err();
        assert_eq!(
            err,
            SignedMergeUnderflow {
                index: 4,
                count: 10,
                delta: -11
            }
        );
        // A negative diff on an absent index underflows from 0.
        assert!(runs.merge_signed(&[(3, -1)]).is_err());
    }

    #[test]
    fn merge_signed_on_empty_base() {
        let empty = CompressedRuns::new();
        let merged = empty.merge_signed(&[(3, 5), (9, 2)]).unwrap();
        assert_eq!(merged.to_vec(), vec![(3, 5), (9, 2)]);
        assert!(empty.merge_signed(&[]).unwrap().is_empty());
    }

    #[test]
    fn merge_many_sums_duplicates() {
        let merged = CompressedRuns::merge_many(&[
            runs_of(&[(0, 1), (5, 2), (9, 1)]),
            runs_of(&[(5, 3), (7, 1)]),
            runs_of(&[]),
            runs_of(&[(0, 4)]),
        ]);
        assert_eq!(merged.to_vec(), vec![(0, 5), (5, 5), (7, 1), (9, 1)]);
    }

    #[test]
    fn merge_many_wholesale_path_matches_interleaved() {
        // Disjoint index ranges: every block takes the raw-copy path.
        let a: Vec<(u64, u64)> = (0..400u64).map(|i| (i, i + 1)).collect();
        let b: Vec<(u64, u64)> = (0..400u64).map(|i| (1000 + i, i + 1)).collect();
        let merged = CompressedRuns::merge_many(&[runs_of(&a), runs_of(&b)]);
        let expected: Vec<(u64, u64)> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(merged.to_vec(), expected);

        // Heavily interleaved ranges: the per-entry path, same contract.
        let a: Vec<(u64, u64)> = (0..400u64).map(|i| (i * 2, 1)).collect();
        let b: Vec<(u64, u64)> = (0..400u64).map(|i| (i * 2 + 1, 2)).collect();
        let c: Vec<(u64, u64)> = (0..400u64).map(|i| (i * 2, 3)).collect();
        let merged = CompressedRuns::merge_many(&[runs_of(&a), runs_of(&b), runs_of(&c)]);
        let mut expected: Vec<(u64, u64)> = (0..400u64).map(|i| (i * 2, 4)).collect();
        expected.extend((0..400u64).map(|i| (i * 2 + 1, 2)));
        expected.sort_unstable_by_key(|&(i, _)| i);
        assert_eq!(merged.to_vec(), expected);
    }

    #[test]
    fn from_encoded_validates_legacy_streams() {
        let entries: Vec<(u64, u64)> = (0..300u64).map(|i| (i * 7, i + 1)).collect();
        let (bytes, lens) = legacy_encode(&entries);
        let restored = CompressedRuns::from_encoded(bytes.clone(), &lens).unwrap();
        // Content round-trips; the bytes are re-encoded into the tagged
        // format, so only the decoded stream is compared.
        assert_eq!(restored, runs_of(&entries));
        assert_eq!(restored.to_vec(), entries);

        // Truncated bytes.
        let mut short = bytes.clone();
        short.pop();
        assert!(CompressedRuns::from_encoded(short, &lens).is_err());
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(CompressedRuns::from_encoded(long, &lens).is_err());
        // Wrong block lens.
        assert!(CompressedRuns::from_encoded(bytes.clone(), &lens[1..]).is_err());
        // Zero count.
        let mut raw = Vec::new();
        encode_varint(&mut raw, 5);
        encode_varint(&mut raw, 0);
        assert!(CompressedRuns::from_encoded(raw, &[1]).is_err());
        // Zero delta (duplicate index).
        let mut raw = Vec::new();
        encode_varint(&mut raw, 5);
        encode_varint(&mut raw, 1);
        encode_varint(&mut raw, 0);
        encode_varint(&mut raw, 1);
        assert!(CompressedRuns::from_encoded(raw, &[2]).is_err());
        // Oversized block declaration.
        assert!(CompressedRuns::from_encoded(Vec::new(), &[0]).is_err());
        assert!(CompressedRuns::from_encoded(Vec::new(), &[BLOCK_ENTRIES as u32 + 1]).is_err());
    }

    #[test]
    fn from_tagged_encoded_round_trips_exactly() {
        let entries: Vec<(u64, u64)> = (0..700u64).map(|i| (i * 7 + (i % 5), 1 + i % 97)).collect();
        let runs = runs_of(&entries);
        let lens: Vec<u32> = runs.skip_index().iter().map(|m| m.len).collect();
        let restored = CompressedRuns::from_tagged_encoded(runs.bytes().to_vec(), &lens).unwrap();
        assert_eq!(restored, runs);
        // The tagged restore keeps the bytes verbatim: the skip index
        // (and therefore every block boundary and codec choice) matches.
        assert_eq!(restored.skip_index(), runs.skip_index());
        assert_eq!(restored.bytes(), runs.bytes());
        assert_eq!(restored.total_mass(), runs.total_mass());
    }

    #[test]
    fn from_tagged_encoded_rejects_corruption() {
        let entries: Vec<(u64, u64)> = (0..300u64).map(|i| (i * 3, 1 + i % 9)).collect();
        let runs = runs_of(&entries);
        let lens: Vec<u32> = runs.skip_index().iter().map(|m| m.len).collect();
        let bytes = runs.bytes().to_vec();

        // Truncation and trailing garbage.
        let mut short = bytes.clone();
        short.pop();
        assert!(CompressedRuns::from_tagged_encoded(short, &lens).is_err());
        let mut long = bytes.clone();
        long.push(0);
        assert!(CompressedRuns::from_tagged_encoded(long, &lens).is_err());
        // Wrong block lens.
        assert!(CompressedRuns::from_tagged_encoded(bytes.clone(), &lens[1..]).is_err());
        // Unknown codec tag on the first block.
        let mut bad_tag = bytes.clone();
        bad_tag[0] = 9;
        assert!(CompressedRuns::from_tagged_encoded(bad_tag, &lens).is_err());

        // Hand-built packed block with an oversized lane width.
        let mut raw = vec![TAG_PACKED];
        encode_varint(&mut raw, 5); // first index
        encode_varint(&mut raw, 1); // first count
        raw.push(65); // gap width > 64
        raw.push(0);
        encode_varint(&mut raw, 1); // gap min
        encode_varint(&mut raw, 1); // count min
        assert!(CompressedRuns::from_tagged_encoded(raw, &[2]).is_err());

        // Packed tag on a single-entry block.
        let mut raw = vec![TAG_PACKED];
        encode_varint(&mut raw, 5);
        encode_varint(&mut raw, 1);
        assert!(CompressedRuns::from_tagged_encoded(raw, &[1]).is_err());

        // Zero gap smuggled through a packed lane (gap_min = 0, width 0).
        let mut raw = vec![TAG_PACKED];
        encode_varint(&mut raw, 5);
        encode_varint(&mut raw, 1);
        raw.push(0); // gap width
        raw.push(0); // count width
        encode_varint(&mut raw, 0); // gap min = 0 → zero delta
        encode_varint(&mut raw, 1); // count min
        assert!(CompressedRuns::from_tagged_encoded(raw, &[2]).is_err());
    }

    #[test]
    fn cursor_fold_matches_streaming_next() {
        let entries: Vec<(u64, u64)> = (0..1000u64).map(|i| (i * 3 + 1, 1 + i % 13)).collect();
        let runs = runs_of(&entries);
        // Whole-run fold (the block-wise override).
        let folded = runs.iter().fold(Vec::new(), |mut acc, entry| {
            acc.push(entry);
            acc
        });
        assert_eq!(folded, entries);
        // Fold from a partially consumed cursor mid-block.
        let mut cursor = runs.iter();
        for _ in 0..5 {
            cursor.next();
        }
        let rest = cursor.fold(Vec::new(), |mut acc, entry| {
            acc.push(entry);
            acc
        });
        assert_eq!(rest, entries[5..]);
        // `count` routes through fold.
        assert_eq!(runs.iter().count(), entries.len());
    }

    #[test]
    fn varints_cover_all_widths() {
        // 1-byte through 10-byte varints round-trip through the stream.
        let mut out = Vec::new();
        let values: Vec<u64> = (0..10)
            .map(|i| 1u64.checked_shl(7 * i).unwrap_or(u64::MAX))
            .collect();
        for &v in &values {
            encode_varint(&mut out, v);
        }
        let mut pos = 0;
        for &v in &values {
            let before = pos;
            assert_eq!(decode_varint(&out, &mut pos), Some(v));
            assert_eq!(varint_len(v), pos - before, "value {v}");
        }
        assert_eq!(pos, out.len());
        assert_eq!(decode_varint(&out, &mut pos), None, "exhausted");
    }

    #[test]
    fn varint_len_matches_encoding() {
        for &v in &[0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut out = Vec::new();
            encode_varint(&mut out, v);
            assert_eq!(varint_len(v), out.len(), "value {v}");
        }
    }

    #[test]
    fn empty_run() {
        let runs = CompressedRuns::new();
        assert!(runs.is_empty());
        assert_eq!(runs.iter().count(), 0);
        assert_eq!(runs.get(0), None);
        assert_eq!(runs.to_vec(), vec![]);
        assert_eq!(runs, CompressedRuns::from_entries(&[]));
        assert!(!runs.is_mapped());
    }

    #[test]
    fn cursor_is_exact_size() {
        let entries: Vec<(u64, u64)> = (0..333u64).map(|i| (i, 1)).collect();
        let runs = runs_of(&entries);
        let mut cursor = runs.iter();
        assert_eq!(cursor.len(), 333);
        cursor.next();
        assert_eq!(cursor.len(), 332);
        assert_eq!(cursor.count(), 332);
    }
}
