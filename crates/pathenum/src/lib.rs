#![warn(missing_docs)]

//! # phe-pathenum — path-query evaluation and selectivity catalogs
//!
//! The selectivity `f(ℓ)` of a label path `ℓ = l1/l2/…/lk` on a graph `G`
//! is the number of **distinct** vertex pairs `(vs, vt)` connected by an
//! `ℓ`-labeled walk. Histogram construction needs `f(ℓ)` for *every* label
//! path of length up to `k` — a domain of `Σ_{i≤k} |L|^i` paths — so this
//! crate is organized around computing the complete **catalog** efficiently:
//!
//! * [`relation::PathRelation`] — a binary relation over vertices stored
//!   CSR-style (sorted, duplicate-free target lists per source);
//! * [`relation::PathRelation::compose`] — relation ∘ edge-label composition
//!   with bitset de-duplication;
//! * [`catalog::SelectivityCatalog`] — the full `f` table, computed by a
//!   depth-first traversal of the label-path trie that shares each prefix
//!   relation between all its extensions;
//! * [`naive`] — an independent per-path evaluator used as a correctness
//!   oracle and as the unshared baseline in benchmarks;
//! * [`parallel`] — a source-partitioned parallel catalog builder
//!   (scoped threads), exact because `f(ℓ) = Σ_s |targets(s, ℓ)|`
//!   decomposes over disjoint source sets;
//! * [`sparse`] — the [`sparse::SparseCatalog`]: sorted
//!   `(canonical_index, count)` runs over only the *realized* paths,
//!   built by sharded per-thread counting with a k-way merge. This is the
//!   representation that scales past the dense limit
//!   ([`catalog::DENSE_DOMAIN_LIMIT`]); oversized `(|L|, k)` requests are
//!   refused with a checked [`catalog::CatalogError`] rather than an
//!   allocation panic;
//! * [`delta`] — incremental maintenance: [`delta::compute_delta`] counts
//!   the signed selectivity difference of a graph change by visiting only
//!   the paths the changed edges can have touched, and
//!   [`sparse::SparseCatalog::merge_delta`] folds the resulting
//!   [`delta::SparseDeltaRun`] into the previous catalog — bit-identical
//!   to a full recount at a cost proportional to the change.
//!
//! ```
//! use phe_graph::GraphBuilder;
//! use phe_pathenum::SelectivityCatalog;
//! use phe_graph::LabelId;
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge_named(0, "a", 1);
//! b.add_edge_named(1, "b", 2);
//! b.add_edge_named(0, "a", 2);
//! let g = b.build();
//!
//! let catalog = SelectivityCatalog::compute(&g, 2);
//! assert_eq!(catalog.selectivity(&[LabelId(0)]), 2);             // a
//! assert_eq!(catalog.selectivity(&[LabelId(0), LabelId(1)]), 1); // a/b
//! ```

pub mod catalog;
pub mod delta;
pub mod encoding;
pub mod file;
pub mod mmap;
pub mod naive;
pub mod parallel;
pub mod relation;
pub mod runs;
pub mod sampling;
pub mod sparse;

pub use catalog::{CatalogError, SelectivityCatalog};
pub use delta::{compute_delta, SparseDeltaRun};
pub use encoding::PathEncoding;
pub use relation::PathRelation;
pub use runs::{CompressedRuns, RunsBuilder, RunsCursor};
pub use sampling::{SamplingConfig, SamplingEstimator};
pub use sparse::SparseCatalog;
