//! Source-partitioned parallel catalog computation.
//!
//! `f(ℓ) = Σ_s |{t : (s,t) ∈ ℓ(G)}|` decomposes exactly over disjoint
//! source sets, so the label-path trie can be traversed independently for
//! each `(first label, source range)` task and the per-task count vectors
//! summed. Tasks are pulled from a shared atomic counter, which
//! load-balances the (highly skewed) subtree costs without any estimation.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use phe_graph::{FixedBitSet, Graph, LabelId};

use crate::catalog::SelectivityCatalog;
use crate::encoding::PathEncoding;
use crate::relation::PathRelation;

/// Computes the catalog using `threads` worker threads (0 ⇒ one per
/// available core). Produces bit-identical results to
/// [`SelectivityCatalog::compute`].
pub fn compute_parallel(graph: &Graph, k: usize, threads: usize) -> SelectivityCatalog {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let encoding = PathEncoding::new(graph.label_count().max(1), k);
    let size = encoding.domain_size();
    if graph.label_count() == 0 || graph.vertex_count() == 0 {
        return SelectivityCatalog::from_counts(encoding, vec![0; size]);
    }
    if threads <= 1 {
        return SelectivityCatalog::compute(graph, k);
    }

    let tasks = build_tasks(graph, threads);
    let next_task = AtomicUsize::new(0);
    let global: Mutex<Vec<u64>> = Mutex::new(vec![0u64; size]);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = vec![0u64; size];
                let mut scratch = FixedBitSet::new(graph.vertex_count());
                let mut path = Vec::with_capacity(k);
                loop {
                    // ORDERING: work-stealing ticket — the worker only
                    // needs a unique index into the read-only task list,
                    // which the atomic RMW alone guarantees.
                    let i = next_task.fetch_add(1, Ordering::Relaxed);
                    let Some(&(label, lo, hi)) = tasks.get(i) else {
                        break;
                    };
                    let rel = PathRelation::from_label_source_range(graph, label, lo, hi);
                    if rel.is_empty() {
                        continue;
                    }
                    path.clear();
                    path.push(label);
                    local[encoding.encode(&path)] += rel.pair_count();
                    if k > 1 {
                        extend(
                            graph,
                            &encoding,
                            &mut local,
                            &rel,
                            &mut path,
                            &mut scratch,
                            k,
                        );
                    }
                }
                let mut g = global.lock().expect("count mutex poisoned");
                for (dst, src) in g.iter_mut().zip(&local) {
                    *dst += src;
                }
            });
        }
    });

    SelectivityCatalog::from_counts(encoding, global.into_inner().expect("count mutex poisoned"))
}

/// Splits every label's source space into ranges sized for ~4 tasks per
/// thread per label, so the atomic queue can rebalance skewed subtrees.
/// Shared with the sparse builder ([`crate::sparse::SparseCatalog`]).
pub(crate) fn build_tasks(graph: &Graph, threads: usize) -> Vec<(LabelId, u32, u32)> {
    let n = graph.vertex_count() as u32;
    let chunks = (threads * 4).max(1) as u32;
    let chunk = n.div_ceil(chunks).max(1);
    let mut tasks = Vec::new();
    for label in graph.label_ids() {
        let mut lo = 0u32;
        while lo < n {
            let hi = (lo + chunk).min(n);
            tasks.push((label, lo, hi));
            lo = hi;
        }
    }
    tasks
}

fn extend(
    graph: &Graph,
    encoding: &PathEncoding,
    counts: &mut [u64],
    rel: &PathRelation,
    path: &mut Vec<LabelId>,
    scratch: &mut FixedBitSet,
    k: usize,
) {
    for label in graph.label_ids() {
        let next = rel.compose(graph, label, scratch);
        path.push(label);
        counts[encoding.encode(path)] += next.pair_count();
        if !next.is_empty() && path.len() < k {
            extend(graph, encoding, counts, &next, path, scratch, k);
        }
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phe_graph::GraphBuilder;

    fn dense_graph(n: u32, labels: u16, seed: u64) -> Graph {
        // Small deterministic pseudo-random graph without pulling in `rand`:
        // a linear congruential walk.
        let mut b = GraphBuilder::with_numeric_labels(n, labels);
        let mut x = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        for _ in 0..(n as usize * 6) {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let s = (x >> 33) as u32 % n;
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let t = (x >> 33) as u32 % n;
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let l = ((x >> 33) as u16) % labels;
            b.add_edge(phe_graph::VertexId(s), LabelId(l), phe_graph::VertexId(t));
        }
        b.build()
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = dense_graph(60, 3, 42);
        let seq = SelectivityCatalog::compute(&g, 4);
        for threads in [2, 3, 8] {
            let par = compute_parallel(&g, 4, threads);
            assert_eq!(seq.counts(), par.counts(), "threads = {threads}");
        }
    }

    #[test]
    fn single_thread_falls_back() {
        let g = dense_graph(30, 2, 7);
        let seq = SelectivityCatalog::compute(&g, 3);
        let par = compute_parallel(&g, 3, 1);
        assert_eq!(seq.counts(), par.counts());
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let c = compute_parallel(&g, 3, 4);
        assert_eq!(c.len(), 1 + 1 + 1); // one pseudo-label alphabet
        assert_eq!(c.total_mass(), 0);
    }

    #[test]
    fn task_partition_covers_all_sources() {
        let g = dense_graph(100, 2, 9);
        let tasks = build_tasks(&g, 3);
        for label in g.label_ids() {
            let mut covered = vec![false; g.vertex_count()];
            for &(l, lo, hi) in &tasks {
                if l == label {
                    for v in lo..hi {
                        assert!(!covered[v as usize], "source {v} covered twice");
                        covered[v as usize] = true;
                    }
                }
            }
            assert!(covered.iter().all(|&c| c), "label {label} missing sources");
        }
    }
}
