//! The full selectivity catalog: `f(ℓ)` for every path `|ℓ| ≤ k`.

use phe_graph::{FixedBitSet, Graph, LabelId};

use crate::encoding::PathEncoding;
use crate::relation::PathRelation;

/// The largest domain the **dense** catalog will allocate: beyond this the
/// flat `Vec<u64>` alone exceeds 2 GiB and the sparse pipeline
/// ([`crate::sparse::SparseCatalog`]) is the only sane representation.
pub const DENSE_DOMAIN_LIMIT: usize = 1 << 28;

/// Why a catalog could not be built or converted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// The label alphabet is empty or exceeds the `u16` id space.
    BadAlphabet {
        /// Offending alphabet size.
        label_count: usize,
    },
    /// `max_len` (`k`) was zero.
    ZeroLength,
    /// The path domain `Σ |L|^i` overflows the addressable index space.
    DomainTooLarge {
        /// Alphabet size `|L|`.
        label_count: usize,
        /// Maximum path length `k`.
        max_len: usize,
        /// Exact domain size, computed in `u128` so it cannot wrap.
        size: u128,
        /// The limit that was exceeded.
        limit: u128,
    },
    /// The domain fits the index space but is too large to *materialize*
    /// densely (the flat count vector would exceed
    /// [`DENSE_DOMAIN_LIMIT`]).
    DenseTooLarge {
        /// Domain size in paths.
        size: u128,
        /// The dense materialization limit.
        limit: usize,
    },
    /// An externally supplied count vector does not cover the domain.
    CountsLengthMismatch {
        /// `encoding.domain_size()`.
        expected: usize,
        /// Length of the supplied vector.
        found: usize,
    },
    /// Incremental counting was asked to bridge two graphs with different
    /// label alphabets — a delta cannot introduce or drop labels, because
    /// every canonical index is pinned to `|L|`.
    AlphabetChanged {
        /// `|L|` of the base graph.
        old: usize,
        /// `|L|` of the changed graph.
        new: usize,
    },
    /// A delta run was merged into a catalog with a different encoding
    /// (its canonical indexes mean different paths).
    DeltaEncodingMismatch {
        /// The catalog's `(|L|, k)`.
        catalog: (usize, usize),
        /// The delta run's `(|L|, k)`.
        delta: (usize, usize),
    },
    /// Applying a delta would drive a count negative — the run was not
    /// computed against the graph this catalog counts.
    DeltaUnderflow {
        /// The offending canonical index.
        canonical_index: u64,
        /// The catalog's count at that index.
        count: u64,
        /// The signed difference that was applied.
        delta: i64,
    },
    /// A spill-to-disk build could not write or re-read a shard file.
    SpillIo {
        /// The underlying filesystem error, rendered.
        message: String,
    },
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::BadAlphabet { label_count } => {
                write!(f, "label alphabet of {label_count} is outside 1..=65535")
            }
            CatalogError::ZeroLength => write!(f, "need max_len >= 1"),
            CatalogError::DomainTooLarge {
                label_count,
                max_len,
                size,
                limit,
            } => write!(
                f,
                "path domain of {size} entries (|L| = {label_count}, k = {max_len}) \
                 is too large to catalog (limit {limit})"
            ),
            CatalogError::DenseTooLarge { size, limit } => write!(
                f,
                "domain of {size} paths is too large to materialize densely \
                 (limit {limit}); use the sparse catalog"
            ),
            CatalogError::CountsLengthMismatch { expected, found } => write!(
                f,
                "count vector of length {found} does not cover the domain of {expected}"
            ),
            CatalogError::AlphabetChanged { old, new } => write!(
                f,
                "label alphabet changed from {old} to {new} labels; a delta cannot \
                 change |L| — rebuild from scratch"
            ),
            CatalogError::DeltaEncodingMismatch { catalog, delta } => write!(
                f,
                "delta run over (|L| = {}, k = {}) cannot merge into a catalog over \
                 (|L| = {}, k = {})",
                delta.0, delta.1, catalog.0, catalog.1
            ),
            CatalogError::DeltaUnderflow {
                canonical_index,
                count,
                delta,
            } => write!(
                f,
                "delta {delta} at canonical index {canonical_index} underflows the \
                 catalog count {count}; the run was not computed against this \
                 catalog's graph"
            ),
            CatalogError::SpillIo { message } => {
                write!(f, "spill-to-disk build failed: {message}")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// The complete table of path selectivities up to length `k`.
///
/// Conceptually a map `label path → f(ℓ)`; stored as a dense vector in
/// [`PathEncoding`] canonical order. Paths with no matching pairs are
/// present with value 0 — the histogram domain of the paper includes them.
#[derive(Debug, Clone)]
pub struct SelectivityCatalog {
    encoding: PathEncoding,
    counts: Vec<u64>,
}

impl SelectivityCatalog {
    /// Computes the catalog with the shared-prefix trie traversal
    /// (single-threaded). See [`crate::parallel::compute_parallel`] for the
    /// multi-threaded variant.
    ///
    /// # Panics
    /// Panics if the domain overflows the index space or the dense
    /// materialization limit — use [`SelectivityCatalog::try_compute`] for
    /// a checked error (large `(|L|, k)` belongs to the sparse pipeline).
    pub fn compute(graph: &Graph, k: usize) -> SelectivityCatalog {
        match Self::try_compute(graph, k) {
            Ok(catalog) => catalog,
            Err(e) => panic!("{e}"),
        }
    }

    /// Checked variant of [`SelectivityCatalog::compute`]: refuses domains
    /// that overflow the canonical index space or exceed
    /// [`DENSE_DOMAIN_LIMIT`] with a [`CatalogError`] instead of an
    /// allocation panic (or worse, an OOM abort) deep in `Vec::with_capacity`.
    pub fn try_compute(graph: &Graph, k: usize) -> Result<SelectivityCatalog, CatalogError> {
        let encoding = PathEncoding::try_new(graph.label_count().max(1), k)?;
        check_dense_domain(&encoding)?;
        Ok(Self::compute_with_encoding(graph, encoding, k))
    }

    /// Fills the dense count vector for a pre-validated encoding.
    fn compute_with_encoding(
        graph: &Graph,
        encoding: PathEncoding,
        k: usize,
    ) -> SelectivityCatalog {
        let mut counts = vec![0u64; encoding.domain_size()];
        if graph.label_count() == 0 {
            return SelectivityCatalog { encoding, counts };
        }
        let mut scratch = FixedBitSet::new(graph.vertex_count());
        let mut path = Vec::with_capacity(k);
        for label in graph.label_ids() {
            let rel = PathRelation::from_label(graph, label);
            path.push(label);
            counts[encoding.encode(&path)] = rel.pair_count();
            if !rel.is_empty() && k > 1 {
                extend_recursive(
                    graph,
                    &encoding,
                    &mut counts,
                    &rel,
                    &mut path,
                    &mut scratch,
                    k,
                );
            }
            path.pop();
        }
        SelectivityCatalog { encoding, counts }
    }

    /// Wraps an externally computed count vector (canonical order).
    /// Used by the parallel builder.
    ///
    /// # Panics
    /// Panics if the vector does not cover the domain — use
    /// [`SelectivityCatalog::try_from_counts`] for a checked error.
    pub fn from_counts(encoding: PathEncoding, counts: Vec<u64>) -> SelectivityCatalog {
        match Self::try_from_counts(encoding, counts) {
            Ok(catalog) => catalog,
            Err(e) => panic!("{e}"),
        }
    }

    /// Checked variant of [`SelectivityCatalog::from_counts`].
    pub fn try_from_counts(
        encoding: PathEncoding,
        counts: Vec<u64>,
    ) -> Result<SelectivityCatalog, CatalogError> {
        if counts.len() != encoding.domain_size() {
            return Err(CatalogError::CountsLengthMismatch {
                expected: encoding.domain_size(),
                found: counts.len(),
            });
        }
        Ok(SelectivityCatalog { encoding, counts })
    }

    /// The selectivity `f(ℓ)` of `path`.
    ///
    /// # Panics
    /// Panics if the path is empty, longer than `k`, or mentions an unknown
    /// label.
    #[inline]
    pub fn selectivity(&self, path: &[LabelId]) -> u64 {
        self.counts[self.encoding.encode(path)]
    }

    /// The selectivity at a canonical index.
    #[inline]
    pub fn selectivity_at(&self, canonical_index: usize) -> u64 {
        self.counts[canonical_index]
    }

    /// The canonical encoding (for permuting into domain orderings).
    #[inline]
    pub fn encoding(&self) -> &PathEncoding {
        &self.encoding
    }

    /// The raw count vector in canonical order.
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of cataloged paths (the domain size).
    #[inline]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the catalog is empty (zero-label graph).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates `(path, f(path))` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Vec<LabelId>, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.encoding.decode(i), c))
    }

    /// The catalog restricted to paths of length `≤ k'` — a prefix of the
    /// canonical layout, because the encoding is length-major. Lets an
    /// experiment compute one catalog at `k_max` and evaluate every
    /// smaller `k` for free.
    ///
    /// # Panics
    /// Panics if `k'` is 0 or exceeds this catalog's `k`.
    pub fn truncated(&self, k: usize) -> SelectivityCatalog {
        assert!(
            k >= 1 && k <= self.encoding.max_len(),
            "k = {k} outside 1..={}",
            self.encoding.max_len()
        );
        let encoding = PathEncoding::new(self.encoding.label_count(), k);
        let counts = self.counts[..encoding.domain_size()].to_vec();
        SelectivityCatalog { encoding, counts }
    }

    /// Sum of all selectivities (diagnostic; the "mass" of the distribution).
    pub fn total_mass(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of paths with zero selectivity.
    pub fn zero_count(&self) -> usize {
        self.counts.iter().filter(|&&c| c == 0).count()
    }
}

/// Refuses encodings whose dense count vector would exceed
/// [`DENSE_DOMAIN_LIMIT`].
pub(crate) fn check_dense_domain(encoding: &PathEncoding) -> Result<(), CatalogError> {
    let size = encoding.domain_size();
    if size > DENSE_DOMAIN_LIMIT {
        return Err(CatalogError::DenseTooLarge {
            size: size as u128,
            limit: DENSE_DOMAIN_LIMIT,
        });
    }
    Ok(())
}

/// Depth-first extension of `rel` (the relation of `path`) by every label.
///
/// Every trie node's relation is computed exactly once and shared by all of
/// its extensions, which is what makes the full catalog tractable: the naive
/// alternative re-evaluates each length-`m` prefix `n^(k-m)` times.
fn extend_recursive(
    graph: &Graph,
    encoding: &PathEncoding,
    counts: &mut [u64],
    rel: &PathRelation,
    path: &mut Vec<LabelId>,
    scratch: &mut FixedBitSet,
    k: usize,
) {
    for label in graph.label_ids() {
        let next = rel.compose(graph, label, scratch);
        path.push(label);
        counts[encoding.encode(path)] = next.pair_count();
        if !next.is_empty() && path.len() < k {
            extend_recursive(graph, encoding, counts, &next, path, scratch, k);
        }
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phe_graph::GraphBuilder;

    fn l(x: u16) -> LabelId {
        LabelId(x)
    }

    /// Two-label chain: 0 -a-> 1 -b-> 2 -a-> 3.
    fn chain() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edge_named(0, "a", 1);
        b.add_edge_named(1, "b", 2);
        b.add_edge_named(2, "a", 3);
        b.build()
    }

    #[test]
    fn chain_catalog_k3() {
        let g = chain();
        let c = SelectivityCatalog::compute(&g, 3);
        assert_eq!(c.len(), 2 + 4 + 8);
        assert_eq!(c.selectivity(&[l(0)]), 2); // a
        assert_eq!(c.selectivity(&[l(1)]), 1); // b
        assert_eq!(c.selectivity(&[l(0), l(1)]), 1); // a/b
        assert_eq!(c.selectivity(&[l(1), l(0)]), 1); // b/a
        assert_eq!(c.selectivity(&[l(0), l(0)]), 0); // a/a
        assert_eq!(c.selectivity(&[l(0), l(1), l(0)]), 1); // a/b/a
        assert_eq!(c.selectivity(&[l(1), l(1)]), 0);
    }

    #[test]
    fn zero_paths_are_cataloged() {
        let g = chain();
        let c = SelectivityCatalog::compute(&g, 2);
        // Domain: 2 + 4 = 6 paths, of which a, b, a/b, b/a are non-zero.
        assert_eq!(c.len(), 6);
        assert_eq!(c.zero_count(), 2);
    }

    #[test]
    fn diamond_distinct_pairs() {
        // 0 -a-> {1,2} -b-> 3: a/b must count (0,3) once.
        let mut b = GraphBuilder::new();
        b.add_edge_named(0, "a", 1);
        b.add_edge_named(0, "a", 2);
        b.add_edge_named(1, "b", 3);
        b.add_edge_named(2, "b", 3);
        let g = b.build();
        let c = SelectivityCatalog::compute(&g, 2);
        assert_eq!(c.selectivity(&[l(0), l(1)]), 1);
    }

    #[test]
    fn cycle_selectivities() {
        // 0 -a-> 1 -a-> 0 : a/a = {(0,0),(1,1)}, a/a/a = {(0,1),(1,0)}.
        let mut b = GraphBuilder::new();
        b.add_edge_named(0, "a", 1);
        b.add_edge_named(1, "a", 0);
        let g = b.build();
        let c = SelectivityCatalog::compute(&g, 3);
        assert_eq!(c.selectivity(&[l(0)]), 2);
        assert_eq!(c.selectivity(&[l(0), l(0)]), 2);
        assert_eq!(c.selectivity(&[l(0), l(0), l(0)]), 2);
    }

    #[test]
    fn iter_covers_domain() {
        let g = chain();
        let c = SelectivityCatalog::compute(&g, 2);
        let items: Vec<(Vec<LabelId>, u64)> = c.iter().collect();
        assert_eq!(items.len(), 6);
        assert_eq!(items[0], (vec![l(0)], 2));
        let mass: u64 = items.iter().map(|(_, f)| f).sum();
        assert_eq!(mass, c.total_mass());
    }

    #[test]
    fn truncated_is_a_prefix_restriction() {
        let g = chain();
        let full = SelectivityCatalog::compute(&g, 3);
        let cut = full.truncated(2);
        let direct = SelectivityCatalog::compute(&g, 2);
        assert_eq!(cut.counts(), direct.counts());
        assert_eq!(cut.encoding().max_len(), 2);
        // k' = k is identity.
        assert_eq!(full.truncated(3).counts(), full.counts());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn truncated_rejects_larger_k() {
        let g = chain();
        SelectivityCatalog::compute(&g, 2).truncated(3);
    }

    #[test]
    fn oversized_domains_are_checked_errors() {
        // |L| = 1000, k = 8 ⇒ 10^24 paths: overflows the index space.
        let mut b = GraphBuilder::with_numeric_labels(2, 1000);
        b.add_edge_named(0, "l0", 1);
        let g = b.build();
        match SelectivityCatalog::try_compute(&g, 8) {
            Err(CatalogError::DomainTooLarge { size, .. }) => {
                assert!(size > 1 << 48, "size {size}")
            }
            other => panic!("expected DomainTooLarge, got {other:?}"),
        }
        // |L| = 64, k = 6 ⇒ ~6.9e10 paths: fits the index space but not a
        // dense vector.
        let mut b = GraphBuilder::with_numeric_labels(2, 64);
        b.add_edge_named(0, "l0", 1);
        let g = b.build();
        assert!(matches!(
            SelectivityCatalog::try_compute(&g, 6),
            Err(CatalogError::DenseTooLarge { .. })
        ));
    }

    #[test]
    fn from_counts_length_mismatch_is_a_checked_error() {
        let encoding = PathEncoding::new(2, 2);
        assert!(matches!(
            SelectivityCatalog::try_from_counts(encoding, vec![0; 3]),
            Err(CatalogError::CountsLengthMismatch {
                expected: 6,
                found: 3
            })
        ));
    }

    #[test]
    fn length_one_catalog_equals_label_frequencies() {
        let g = chain();
        let c = SelectivityCatalog::compute(&g, 1);
        for label in g.label_ids() {
            assert_eq!(c.selectivity(&[label]), g.label_frequency(label));
        }
    }
}
