//! Naive per-path selectivity evaluation — the correctness oracle.
//!
//! Evaluates each path independently with a per-source frontier BFS,
//! without sharing prefix relations. Asymptotically wasteful (each
//! length-`m` prefix is re-evaluated for every extension), but simple
//! enough to trust, which is exactly what a test oracle should be.

use phe_graph::{FixedBitSet, Graph, LabelId};

use crate::catalog::SelectivityCatalog;
use crate::encoding::PathEncoding;

/// Computes `f(path)` by frontier expansion from every source vertex.
///
/// For each source `s`, maintains the set of vertices reachable by the
/// prefix consumed so far; `f` accumulates the final frontier sizes.
pub fn selectivity(graph: &Graph, path: &[LabelId]) -> u64 {
    if path.is_empty() {
        return 0;
    }
    let n = graph.vertex_count();
    let mut frontier = FixedBitSet::new(n);
    let mut next = FixedBitSet::new(n);
    let mut total = 0u64;
    for s in 0..n as u32 {
        // Seed with the first step directly (the frontier after step 1).
        let first = graph.out_neighbors_raw(s, path[0]);
        if first.is_empty() {
            continue;
        }
        frontier.clear();
        for &t in first {
            frontier.insert(t);
        }
        let mut dead = false;
        for &label in &path[1..] {
            next.clear();
            for v in frontier.iter() {
                for &w in graph.out_neighbors_raw(v, label) {
                    next.insert(w);
                }
            }
            std::mem::swap(&mut frontier, &mut next);
            if frontier.is_empty() {
                dead = true;
                break;
            }
        }
        if !dead {
            total += frontier.len() as u64;
        }
    }
    total
}

/// Computes the whole catalog naively: one independent evaluation per path.
/// Used for oracle comparison in tests and as the no-sharing baseline in
/// the `pathenum` Criterion bench.
pub fn compute_catalog_naive(graph: &Graph, k: usize) -> SelectivityCatalog {
    let encoding = PathEncoding::new(graph.label_count().max(1), k);
    let mut counts = vec![0u64; encoding.domain_size()];
    if graph.label_count() == 0 {
        return SelectivityCatalog::from_counts(encoding, counts);
    }
    let mut buf = Vec::with_capacity(k);
    for (i, slot) in counts.iter_mut().enumerate() {
        encoding.decode_into(i, &mut buf);
        *slot = selectivity(graph, &buf);
    }
    SelectivityCatalog::from_counts(encoding, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phe_graph::GraphBuilder;

    fn l(x: u16) -> LabelId {
        LabelId(x)
    }

    #[test]
    fn matches_relation_evaluation() {
        let mut b = GraphBuilder::new();
        b.add_edge_named(0, "a", 1);
        b.add_edge_named(0, "a", 2);
        b.add_edge_named(1, "b", 3);
        b.add_edge_named(2, "b", 3);
        b.add_edge_named(3, "a", 0);
        let g = b.build();
        for path in [
            vec![l(0)],
            vec![l(1)],
            vec![l(0), l(1)],
            vec![l(0), l(1), l(0)],
            vec![l(1), l(1)],
        ] {
            let rel = crate::relation::PathRelation::evaluate(&g, &path);
            assert_eq!(
                selectivity(&g, &path),
                rel.pair_count(),
                "mismatch on {path:?}"
            );
        }
    }

    #[test]
    fn empty_path_is_zero() {
        let g = GraphBuilder::new().build();
        assert_eq!(selectivity(&g, &[]), 0);
    }

    #[test]
    fn naive_catalog_matches_trie_catalog() {
        let mut b = GraphBuilder::new();
        // A small dense-ish graph with 3 labels.
        for (s, lbl, t) in [
            (0, "a", 1),
            (1, "a", 2),
            (2, "a", 0),
            (0, "b", 2),
            (2, "b", 1),
            (1, "c", 1),
            (2, "c", 3),
            (3, "a", 3),
        ] {
            b.add_edge_named(s, lbl, t);
        }
        let g = b.build();
        let fast = SelectivityCatalog::compute(&g, 4);
        let slow = compute_catalog_naive(&g, 4);
        assert_eq!(fast.counts(), slow.counts());
    }
}
