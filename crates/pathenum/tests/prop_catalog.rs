//! Property tests: the three catalog strategies (trie-DFS, naive oracle,
//! parallel) agree on arbitrary graphs, and relation algebra invariants hold.

use phe_graph::{FixedBitSet, GraphBuilder, LabelId, VertexId};
use phe_pathenum::{naive, parallel, PathRelation, SelectivityCatalog};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = (phe_graph::Graph, u16)> {
    (
        2u16..4,
        prop::collection::vec((0u32..25, 0u16..4, 0u32..25), 1..120),
    )
        .prop_map(|(labels, edges)| {
            let mut b = GraphBuilder::with_numeric_labels(25, labels);
            for (s, l, t) in edges {
                b.add_edge(VertexId(s), LabelId(l % labels), VertexId(t));
            }
            (b.build(), labels)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trie_catalog_matches_naive_oracle((g, _labels) in arb_graph(), k in 1usize..4) {
        let fast = SelectivityCatalog::compute(&g, k);
        let slow = naive::compute_catalog_naive(&g, k);
        prop_assert_eq!(fast.counts(), slow.counts());
    }

    #[test]
    fn parallel_catalog_matches_sequential((g, _labels) in arb_graph(), k in 1usize..4, threads in 2usize..5) {
        let seq = SelectivityCatalog::compute(&g, k);
        let par = parallel::compute_parallel(&g, k, threads);
        prop_assert_eq!(seq.counts(), par.counts());
    }

    #[test]
    fn composition_is_associative((g, labels) in arb_graph()) {
        // (Ra ∘ Rb) ∘ Rc == Ra ∘ (Rb ∘ Rc) as pair sets.
        let la = LabelId(0);
        let lb = LabelId(1 % labels);
        let lc = LabelId(labels.saturating_sub(1));
        let mut scratch = FixedBitSet::new(g.vertex_count());
        let ra = PathRelation::from_label(&g, la);
        let rb = PathRelation::from_label(&g, lb);
        let rc = PathRelation::from_label(&g, lc);
        let left = ra.join(&rb, &mut scratch).join(&rc, &mut scratch);
        let right = ra.join(&rb.join(&rc, &mut scratch), &mut scratch);
        let lp: Vec<_> = left.iter_pairs().collect();
        let rp: Vec<_> = right.iter_pairs().collect();
        prop_assert_eq!(lp, rp);
    }

    #[test]
    fn evaluate_agrees_with_catalog((g, labels) in arb_graph(), raw_path in prop::collection::vec(0u16..4, 1..4)) {
        let path: Vec<LabelId> = raw_path.iter().map(|&l| LabelId(l % labels)).collect();
        let k = path.len();
        let catalog = SelectivityCatalog::compute(&g, k);
        let rel = PathRelation::evaluate(&g, &path);
        prop_assert_eq!(catalog.selectivity(&path), rel.pair_count());
    }

    #[test]
    fn selectivity_monotone_under_extension((g, labels) in arb_graph()) {
        // Pairs of an extended path never exceed |sources(prefix)| * |V|;
        // weaker but useful sanity: if prefix has zero pairs, extension does too.
        let catalog = SelectivityCatalog::compute(&g, 3);
        for l1 in 0..labels {
            for l2 in 0..labels {
                let prefix = [LabelId(l1)];
                let ext = [LabelId(l1), LabelId(l2)];
                if catalog.selectivity(&prefix) == 0 {
                    prop_assert_eq!(catalog.selectivity(&ext), 0);
                }
            }
        }
    }
}
