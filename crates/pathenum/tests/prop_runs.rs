//! Property tests for the block-compressed run representation: the
//! compressed form is a lossless codec for arbitrary sorted runs —
//! including index gaps spanning every LEB128 width (1–10 bytes) and
//! indexes adjacent to `u64::MAX` — the per-block codec chooser
//! (FOR/bit-packed vs varint) never changes decoded content and never
//! grows the stream, and the block-wise signed merge is bit-identical
//! to the plain two-pointer pair merge under random churn.

use phe_pathenum::runs::{CompressedRuns, RunsBuilder};
use proptest::prelude::*;

/// Builds a strictly increasing entry run whose consecutive gaps exercise
/// the chosen varint widths: `width` selects the byte-length band of the
/// gap (`[2^(7w), 2^(7(w+1)))`, clamped for the widest band), so a single
/// generated run mixes 1-byte through 10-byte deltas.
fn entries_from_parts(parts: &[(u32, u64, u64)]) -> Vec<(u64, u64)> {
    let mut entries: Vec<(u64, u64)> = Vec::with_capacity(parts.len());
    let mut index: Option<u64> = None;
    for &(width, raw_gap, raw_count) in parts {
        let width = width % 10;
        let base = if width == 0 {
            1u64
        } else {
            1u64 << (7 * width)
        };
        let span = base.saturating_mul(127);
        let gap = base.saturating_add(raw_gap % span);
        let next = match index {
            None => raw_gap % gap.max(1),
            Some(prev) => match prev.checked_add(gap) {
                Some(next) => next,
                None => break, // ran off the index space; keep what we have
            },
        };
        index = Some(next);
        // Counts spread over every varint width, capped at 2⁶² so any
        // count difference fits the i64 a signed delta carries (the
        // real delta pipeline has the same signed-difference domain).
        let count = (raw_count % (1u64 << 62)).max(1);
        entries.push((next, count));
    }
    entries
}

/// The plain-pair reference for [`CompressedRuns::merge_signed`]: the
/// two-pointer merge the catalog used before block compression.
fn plain_signed_merge(base: &[(u64, u64)], changes: &[(u64, i64)]) -> Vec<(u64, u64)> {
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(base.len() + changes.len());
    let mut base_iter = base.iter().copied().peekable();
    for &(index, diff) in changes {
        while let Some(&entry) = base_iter.peek().filter(|&&(i, _)| i < index) {
            merged.push(entry);
            base_iter.next();
        }
        let count = match base_iter.peek() {
            Some(&(i, count)) if i == index => {
                base_iter.next();
                count
            }
            _ => 0,
        };
        let summed = u64::try_from(count as i128 + diff as i128).expect("valid by construction");
        if summed > 0 {
            merged.push((index, summed));
        }
    }
    merged.extend(base_iter);
    merged
}

/// The signed difference that turns `base` into `target` — always a valid
/// change set (no underflow), and it exercises summation, admission, and
/// cancellation in one merge.
fn diff_of(base: &[(u64, u64)], target: &[(u64, u64)]) -> Vec<(u64, i64)> {
    let mut changes = Vec::new();
    let (mut b, mut t) = (0usize, 0usize);
    while b < base.len() || t < target.len() {
        match (base.get(b), target.get(t)) {
            (Some(&(bi, bc)), Some(&(ti, tc))) if bi == ti => {
                if bc != tc {
                    changes.push((bi, tc as i64 - bc as i64));
                }
                b += 1;
                t += 1;
            }
            (Some(&(bi, bc)), Some(&(ti, _))) if bi < ti => {
                changes.push((bi, -(bc as i64)));
                b += 1;
            }
            (Some(_), Some(&(ti, tc))) => {
                changes.push((ti, tc as i64));
                t += 1;
            }
            (Some(&(bi, bc)), None) => {
                changes.push((bi, -(bc as i64)));
                b += 1;
            }
            (None, Some(&(ti, tc))) => {
                changes.push((ti, tc as i64));
                t += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    changes
}

fn arb_parts() -> impl Strategy<Value = Vec<(u32, u64, u64)>> {
    prop::collection::vec((0u32..10, 0u64..u64::MAX, 1u64..u64::MAX), 0..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Compression is a lossless codec across every varint width, with
    // point lookups agreeing with the decoded stream, and the serialized
    // (bytes + block lens) form restoring exactly.
    #[test]
    fn round_trips_across_varint_widths(parts in arb_parts(), tail_count in 1u64..u64::MAX) {
        let mut entries = entries_from_parts(&parts);
        // Pin the top of the index space: u64::MAX-adjacent entries.
        if entries.last().is_none_or(|&(i, _)| i < u64::MAX - 2) {
            entries.push((u64::MAX - 1, tail_count));
            entries.push((u64::MAX, u64::MAX));
        }
        let runs = CompressedRuns::from_entries(&entries);
        prop_assert_eq!(runs.to_vec(), entries.clone());
        prop_assert_eq!(runs.len(), entries.len());
        prop_assert_eq!(
            runs.total_mass(),
            entries.iter().fold(0u64, |acc, &(_, c)| acc.wrapping_add(c))
        );
        prop_assert_eq!(runs.get(u64::MAX), Some(u64::MAX));
        // Point lookups: every stored index hits, a probe between two
        // entries misses.
        for &(index, count) in entries.iter().take(64) {
            prop_assert_eq!(runs.get(index), Some(count));
        }
        for w in entries.windows(2).take(64) {
            if w[1].0 - w[0].0 > 1 {
                prop_assert_eq!(runs.get(w[0].0 + 1), None);
            }
        }
        // Serialized round trip (the snapshot path): tagged bytes +
        // block lens restore the exact stream, skip index included.
        let lens: Vec<u32> = runs.skip_index().iter().map(|m| m.len).collect();
        let restored = CompressedRuns::from_tagged_encoded(runs.bytes().to_vec(), &lens).unwrap();
        prop_assert_eq!(&restored, &runs);
        prop_assert_eq!(restored.skip_index(), runs.skip_index());
        prop_assert_eq!(restored.bytes(), runs.bytes());
    }

    // The codec chooser is invisible to consumers: a stream built with
    // the per-block FOR/bit-packed chooser decodes to exactly what a
    // varint-only stream of the same entries decodes to — same content,
    // same lookups, same cursor stream — and never takes more payload
    // bytes than the varint baseline.
    #[test]
    fn packed_codec_equals_varint_codec(parts in arb_parts(), tail_count in 1u64..u64::MAX) {
        let mut entries = entries_from_parts(&parts);
        // Boundary widths: a constant-gap stretch (0-bit lanes) and
        // u64::MAX-adjacent indexes (64-bit residual candidates).
        if entries.last().is_none_or(|&(i, _)| i < u64::MAX - 600) {
            let base = entries.last().map_or(0, |&(i, _)| i + 1);
            entries.extend((0..256u64).map(|j| (base + j * 8, 5)));
            entries.push((u64::MAX - 1, tail_count));
            entries.push((u64::MAX, u64::MAX));
        }
        let chosen = CompressedRuns::from_entries(&entries);
        let mut baseline = RunsBuilder::new().varint_only();
        for &(index, count) in &entries {
            baseline.push(index, count);
        }
        let baseline = baseline.finish();
        prop_assert_eq!(&chosen, &baseline);
        prop_assert_eq!(chosen.to_vec(), baseline.to_vec());
        prop_assert!(
            chosen.payload_bytes() <= baseline.payload_bytes(),
            "chooser produced {} bytes, varint baseline {}",
            chosen.payload_bytes(),
            baseline.payload_bytes()
        );
        let (_, baseline_packed) = baseline.block_codec_counts();
        prop_assert_eq!(baseline_packed, 0);
        for &(index, count) in entries.iter().take(64) {
            prop_assert_eq!(chosen.get(index), Some(count));
            prop_assert_eq!(baseline.get(index), Some(count));
        }
    }

    // The block-wise signed merge (wholesale copies + re-encoded blocks)
    // is bit-identical to the plain two-pointer pair merge, and turning
    // base into target via their diff lands exactly on target.
    #[test]
    fn merge_signed_matches_plain_pair_merge(
        base_parts in arb_parts(),
        target_parts in arb_parts(),
    ) {
        let base = entries_from_parts(&base_parts);
        let target = entries_from_parts(&target_parts);
        let changes = diff_of(&base, &target);

        let compressed = CompressedRuns::from_entries(&base);
        let merged = compressed.merge_signed(&changes).unwrap();
        let reference = plain_signed_merge(&base, &changes);

        prop_assert_eq!(merged.to_vec(), reference.clone());
        prop_assert_eq!(reference, target.clone());
        prop_assert_eq!(&merged, &CompressedRuns::from_entries(&target));
        prop_assert_eq!(
            merged.total_mass(),
            target.iter().fold(0u64, |acc, &(_, c)| acc.wrapping_add(c))
        );
    }
}
