#![warn(missing_docs)]

//! # phe-datasets — seeded synthetic graph generators
//!
//! The paper evaluates on four datasets (its Table 3):
//!
//! | Dataset        | labels | vertices | edges   | real? |
//! |----------------|--------|----------|---------|-------|
//! | Moreno Health  | 6      | 2 539    | 12 969  | yes   |
//! | DBpedia (sub)  | 8      | 37 374   | 209 068 | yes   |
//! | SNAP-ER        | 6      | 12 333   | 147 996 | no    |
//! | SNAP-FF        | 8      | 50 000   | 132 673 | no    |
//!
//! The two synthetic ones used SNAP's generators; we implement the same
//! models (Erdős–Rényi, Forest Fire) in-tree. The two real ones cannot be
//! redistributed or re-extracted exactly, so [`facsimile`] builds seeded
//! synthetic graphs that match the table's sizes *exactly* and reproduce
//! the structural properties the paper's discussion relies on —
//! skewed per-label cardinalities and correlated consecutive labels (see
//! `DESIGN.md` §1.5 for the substitution argument).
//!
//! All generators are deterministic given a seed.
//!
//! ```
//! use phe_datasets::{erdos_renyi, LabelDistribution};
//!
//! let g = erdos_renyi(100, 400, 4, LabelDistribution::Uniform, 42);
//! assert_eq!(g.vertex_count(), 100);
//! assert_eq!(g.edge_count(), 400);
//! assert_eq!(g.label_count(), 4);
//! ```

pub mod distributions;
pub mod er;
pub mod facsimile;
pub mod forest_fire;
pub mod preferential;
pub mod schema;

pub use distributions::{LabelDistribution, ZipfSampler};
pub use er::erdos_renyi;
pub use facsimile::{
    dbpedia_like, dbpedia_like_scaled, moreno_health_like, moreno_health_like_scaled,
    paper_datasets, snap_er, snap_er_scaled, snap_ff, snap_ff_scaled, Dataset,
};
pub use forest_fire::{forest_fire, ForestFireParams};
pub use preferential::barabasi_albert;
pub use schema::{
    chained_schema, narrow_chained_schema, schema_graph, Community, DegreeModel, LabelSchema,
};
