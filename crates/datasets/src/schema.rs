//! Schema-driven graph generation, in the spirit of gMark.
//!
//! The paper cites gMark (Bagan et al., TKDE 2017) — schema-driven
//! generation of graphs and queries — as part of the scalability
//! landscape. This module provides a compact schema language for
//! generating labeled graphs with controlled structure: per-label edge
//! budgets, source/target *vertex communities* (contiguous vertex
//! ranges, as a stand-in for gMark's node types), and out-degree
//! distributions. It subsumes the ad-hoc facsimile constructions and lets
//! tests and benchmarks dial label correlation explicitly: two labels
//! chain heavily exactly when one's target community overlaps the other's
//! source community.

use std::collections::HashSet;

use phe_graph::{Graph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distributions::ZipfSampler;

/// How a label's edges distribute over its source community.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DegreeModel {
    /// Every source equally likely.
    Uniform,
    /// Sources drawn Zipf-distributed (hub sources).
    Zipf {
        /// Skew exponent (> 0; larger ⇒ heavier hubs).
        exponent: f64,
    },
}

/// A contiguous community of vertices, as a fraction of the vertex space.
///
/// `start` is a fraction in `[0, 1)`; `width` a fraction in `(0, 1]`.
/// Communities wrap around the vertex ring, so overlap between a target
/// community and another label's source community is always well-defined.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Community {
    /// Starting position as a fraction of `|V|`.
    pub start: f64,
    /// Width as a fraction of `|V|`.
    pub width: f64,
}

impl Community {
    /// The whole vertex space.
    pub fn all() -> Community {
        Community {
            start: 0.0,
            width: 1.0,
        }
    }

    /// A community covering `[start, start + width)` of the ring.
    pub fn new(start: f64, width: f64) -> Community {
        assert!((0.0..1.0).contains(&start), "start {start} outside [0,1)");
        assert!(width > 0.0 && width <= 1.0, "width {width} outside (0,1]");
        Community { start, width }
    }

    fn materialize(&self, n: u32) -> (u32, u32) {
        let start = ((self.start * n as f64) as u32).min(n - 1);
        let size = ((self.width * n as f64).ceil() as u32).clamp(1, n);
        (start, size)
    }
}

/// One edge label's schema entry.
#[derive(Debug, Clone)]
pub struct LabelSchema {
    /// Label name.
    pub name: String,
    /// Number of distinct `(src, label, dst)` triples to generate.
    pub edges: u64,
    /// Where sources live.
    pub sources: Community,
    /// Where targets live.
    pub targets: Community,
    /// How sources are picked inside their community.
    pub source_degrees: DegreeModel,
    /// How targets are picked inside their community.
    pub target_degrees: DegreeModel,
}

impl LabelSchema {
    /// A label over the whole vertex space with uniform endpoints.
    pub fn uniform(name: impl Into<String>, edges: u64) -> LabelSchema {
        LabelSchema {
            name: name.into(),
            edges,
            sources: Community::all(),
            targets: Community::all(),
            source_degrees: DegreeModel::Uniform,
            target_degrees: DegreeModel::Uniform,
        }
    }
}

/// Generates a graph from a schema. Deterministic per seed; per-label
/// edge counts are exact.
///
/// # Panics
/// Panics if a label demands more distinct triples than its communities
/// allow, or on an empty schema / zero vertices.
pub fn schema_graph(vertices: u32, schema: &[LabelSchema], seed: u64) -> Graph {
    assert!(vertices > 0, "need at least one vertex");
    assert!(!schema.is_empty(), "schema must define at least one label");
    assert!(schema.len() <= u16::MAX as usize, "too many labels");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new();
    builder.ensure_vertices(vertices);
    let mut seen: HashSet<(u32, u16, u32)> = HashSet::new();

    for (li, label) in schema.iter().enumerate() {
        let id = builder.intern_label(&label.name);
        debug_assert_eq!(id.index(), li);
        let (s_start, s_size) = label.sources.materialize(vertices);
        let (t_start, t_size) = label.targets.materialize(vertices);
        let possible = s_size as u128 * t_size as u128;
        assert!(
            label.edges as u128 <= possible,
            "label {:?} asks for {} edges but its communities allow {}",
            label.name,
            label.edges,
            possible
        );
        let s_sampler = make_sampler(label.source_degrees, s_size);
        let t_sampler = make_sampler(label.target_degrees, t_size);
        let mut added = 0u64;
        let mut rejected = 0u64;
        while added < label.edges {
            let s = (s_start + s_sampler.draw(&mut rng, s_size)) % vertices;
            let t = (t_start + t_sampler.draw(&mut rng, t_size)) % vertices;
            if seen.insert((s, id.0, t)) {
                builder.add_edge(VertexId(s), id, VertexId(t));
                added += 1;
                rejected = 0;
            } else {
                rejected += 1;
                assert!(
                    rejected < 1_000_000,
                    "label {:?}: cannot place edge {added} (communities too \
                     saturated for the requested skew)",
                    label.name
                );
            }
        }
    }
    builder.build()
}

enum Sampler {
    Uniform,
    Zipf(ZipfSampler),
}

impl Sampler {
    fn draw<R: Rng>(&self, rng: &mut R, size: u32) -> u32 {
        match self {
            Sampler::Uniform => rng.gen_range(0..size),
            Sampler::Zipf(z) => z.sample(rng) as u32,
        }
    }
}

fn make_sampler(model: DegreeModel, size: u32) -> Sampler {
    match model {
        DegreeModel::Uniform => Sampler::Uniform,
        DegreeModel::Zipf { exponent } => Sampler::Zipf(ZipfSampler::new(size as usize, exponent)),
    }
}

/// A ready-made correlated schema: `labels` labels arranged on a ring
/// where label `i`'s targets overlap label `i+1`'s sources — a chain-
/// correlated workload with Zipf-skewed per-label budgets, handy for
/// ordering experiments.
pub fn chained_schema(labels: u16, edges_total: u64) -> Vec<LabelSchema> {
    assert!(labels > 0);
    let counts = crate::distributions::LabelDistribution::Zipf { exponent: 0.9 }
        .per_label_counts(labels as usize, edges_total);
    (0..labels)
        .map(|l| {
            let pos = l as f64 / labels as f64;
            let next = ((l + 1) % labels) as f64 / labels as f64;
            LabelSchema {
                name: format!("r{l}"),
                edges: counts[l as usize],
                sources: Community::new(pos, 0.4),
                targets: Community::new(next, 0.4),
                source_degrees: DegreeModel::Uniform,
                target_degrees: DegreeModel::Zipf { exponent: 0.8 },
            }
        })
        .collect()
}

/// [`chained_schema`] with a *narrow* follow window: label `l`'s targets
/// overlap the sources of only a few nearby labels, so the realized path
/// set grows like `|L| · b^(k−1)` for a small branching factor `b`
/// instead of `|L|^k` — the regime real schemas live in. This is the
/// workload of the `build_scaling` and `delta_rebuild` benches.
pub fn narrow_chained_schema(labels: u16, edges_total: u64, width: f64) -> Vec<LabelSchema> {
    assert!(labels > 0);
    let counts = crate::distributions::LabelDistribution::Zipf { exponent: 0.9 }
        .per_label_counts(labels as usize, edges_total);
    (0..labels)
        .map(|l| {
            let pos = l as f64 / labels as f64;
            let next = ((l + 1) % labels) as f64 / labels as f64;
            LabelSchema {
                name: format!("r{l}"),
                edges: counts[l as usize],
                sources: Community::new(pos, width),
                targets: Community::new(next, width),
                source_degrees: DegreeModel::Uniform,
                target_degrees: DegreeModel::Zipf { exponent: 0.8 },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phe_graph::{GraphStats, LabelId};

    #[test]
    fn uniform_schema_hits_exact_counts() {
        let schema = vec![
            LabelSchema::uniform("a", 500),
            LabelSchema::uniform("b", 200),
        ];
        let g = schema_graph(100, &schema, 7);
        assert_eq!(g.vertex_count(), 100);
        assert_eq!(g.edge_count(), 700);
        assert_eq!(g.label_frequency(LabelId(0)), 500);
        assert_eq!(g.label_frequency(LabelId(1)), 200);
    }

    #[test]
    fn communities_confine_endpoints() {
        let schema = vec![LabelSchema {
            name: "x".into(),
            edges: 300,
            sources: Community::new(0.0, 0.25),
            targets: Community::new(0.5, 0.25),
            source_degrees: DegreeModel::Uniform,
            target_degrees: DegreeModel::Uniform,
        }];
        let g = schema_graph(200, &schema, 3);
        for (s, _, t) in g.iter_edges() {
            assert!(s.0 < 50, "source {s} outside its community");
            assert!(
                (100..150).contains(&t.0),
                "target {t} outside its community"
            );
        }
    }

    #[test]
    fn wrapping_community() {
        let schema = vec![LabelSchema {
            name: "w".into(),
            edges: 100,
            sources: Community::new(0.9, 0.2), // wraps 180..200 + 0..20
            targets: Community::all(),
            source_degrees: DegreeModel::Uniform,
            target_degrees: DegreeModel::Uniform,
        }];
        let g = schema_graph(200, &schema, 5);
        for (s, _, _) in g.iter_edges() {
            assert!(s.0 >= 180 || s.0 < 20, "source {s} outside wrap range");
        }
    }

    #[test]
    fn zipf_targets_create_hubs() {
        let schema = vec![LabelSchema {
            name: "h".into(),
            edges: 2000,
            sources: Community::all(),
            targets: Community::all(),
            source_degrees: DegreeModel::Uniform,
            target_degrees: DegreeModel::Zipf { exponent: 1.2 },
        }];
        let g = schema_graph(1000, &schema, 11);
        let max_in = (0..1000u32)
            .map(|v| g.in_degree(VertexId(v), LabelId(0)))
            .max()
            .unwrap();
        assert!(max_in > 50, "expected a hub, max in-degree {max_in}");
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index arithmetic over (l, l+1, l+2) mod 4
    fn chained_schema_is_label_correlated() {
        let g = schema_graph(500, &chained_schema(4, 4000), 13);
        let stats = GraphStats::compute(&g);
        // Chaining l -> l+1 dominates the co-occurrence matrix.
        let co = &stats.cooccurrence;
        for l in 0..4usize {
            let next = (l + 1) % 4;
            let anti = (l + 2) % 4;
            assert!(
                co[l][next] > co[l][anti],
                "label {l}: chain count {} vs anti {}",
                co[l][next],
                co[l][anti]
            );
        }
        assert!(stats.label_independence_correlation() < 0.9);
    }

    #[test]
    fn deterministic_per_seed() {
        let schema = chained_schema(3, 900);
        let a = schema_graph(300, &schema, 17);
        let b = schema_graph(300, &schema, 17);
        assert_eq!(
            a.iter_edges().collect::<Vec<_>>(),
            b.iter_edges().collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "communities allow")]
    fn over_saturated_schema_rejected() {
        let schema = vec![LabelSchema {
            name: "x".into(),
            edges: 10_000,
            sources: Community::new(0.0, 0.1),
            targets: Community::new(0.0, 0.1),
            source_degrees: DegreeModel::Uniform,
            target_degrees: DegreeModel::Uniform,
        }];
        let _ = schema_graph(100, &schema, 1);
    }
}
