//! Label and weight distributions for the generators.
//!
//! `rand_distr` is not part of the offline crate set, so the Zipf sampler
//! is implemented here: for the label-alphabet sizes involved (≤ a few
//! thousand) a precomputed CDF with binary search is both simple and fast.

use rand::Rng;

/// How edge labels are assigned by a generator.
#[derive(Debug, Clone, PartialEq)]
pub enum LabelDistribution {
    /// Every label equally likely.
    Uniform,
    /// Zipf with the given exponent: `P(label i) ∝ 1 / (i+1)^s`.
    Zipf {
        /// The skew exponent `s > 0`; larger is more skewed.
        exponent: f64,
    },
    /// Exact per-label edge counts; must sum to the generator's edge budget.
    Fixed(Vec<u64>),
}

impl LabelDistribution {
    /// Resolves this distribution into exact per-label counts for a total
    /// of `edges` edges over `labels` labels. Rounding residue from the
    /// probabilistic variants goes to the most frequent labels, so the sum
    /// is always exactly `edges`.
    pub fn per_label_counts(&self, labels: usize, edges: u64) -> Vec<u64> {
        assert!(labels > 0);
        match self {
            LabelDistribution::Fixed(counts) => {
                assert_eq!(counts.len(), labels, "fixed counts length mismatch");
                assert_eq!(
                    counts.iter().sum::<u64>(),
                    edges,
                    "fixed counts must sum to the edge budget"
                );
                counts.clone()
            }
            LabelDistribution::Uniform => {
                let base = edges / labels as u64;
                let extra = (edges % labels as u64) as usize;
                (0..labels).map(|i| base + u64::from(i < extra)).collect()
            }
            LabelDistribution::Zipf { exponent } => {
                let weights: Vec<f64> = (0..labels)
                    .map(|i| 1.0 / ((i + 1) as f64).powf(*exponent))
                    .collect();
                let total_w: f64 = weights.iter().sum();
                let mut counts: Vec<u64> = weights
                    .iter()
                    .map(|w| ((w / total_w) * edges as f64).floor() as u64)
                    .collect();
                let mut assigned: u64 = counts.iter().sum();
                let mut i = 0usize;
                while assigned < edges {
                    counts[i % labels] += 1;
                    assigned += 1;
                    i += 1;
                }
                counts
            }
        }
    }
}

/// A sampler over `[0, n)` with Zipfian weights, backed by a CDF table.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` items with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> ZipfSampler {
        assert!(n > 0, "Zipf over zero items");
        assert!(s.is_finite(), "non-finite Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against rounding: the last entry must catch every u < 1.
        *cdf.last_mut().expect("non-empty") = 1.0;
        ZipfSampler { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is over zero items (never true — see `new`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws an item index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_counts_sum_exactly() {
        let c = LabelDistribution::Uniform.per_label_counts(6, 12969);
        assert_eq!(c.iter().sum::<u64>(), 12969);
        assert_eq!(c.len(), 6);
        let (min, max) = (c.iter().min().unwrap(), c.iter().max().unwrap());
        assert!(max - min <= 1, "uniform counts {c:?} not balanced");
    }

    #[test]
    fn zipf_counts_sum_exactly_and_skew() {
        let c = LabelDistribution::Zipf { exponent: 1.0 }.per_label_counts(8, 209_068);
        assert_eq!(c.iter().sum::<u64>(), 209_068);
        assert!(c[0] > c[7] * 4, "Zipf head {} vs tail {}", c[0], c[7]);
        // Monotone non-increasing apart from the +1 residue spread.
        for w in c.windows(2) {
            assert!(w[0] + 1 >= w[1], "counts {c:?} not decreasing");
        }
    }

    #[test]
    fn fixed_counts_pass_through() {
        let counts = vec![5u64, 3, 2];
        let c = LabelDistribution::Fixed(counts.clone()).per_label_counts(3, 10);
        assert_eq!(c, counts);
    }

    #[test]
    #[should_panic(expected = "must sum")]
    fn fixed_counts_must_sum() {
        LabelDistribution::Fixed(vec![1, 1]).per_label_counts(2, 10);
    }

    #[test]
    fn zipf_sampler_is_skewed_and_in_range() {
        let z = ZipfSampler::new(10, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            let i = z.sample(&mut rng);
            assert!(i < 10);
            counts[i] += 1;
        }
        assert!(counts[0] > counts[9] * 3, "{counts:?}");
        // Roughly monotone: first item most frequent.
        assert_eq!(
            counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, c)| *c)
                .unwrap()
                .0,
            0
        );
    }

    #[test]
    fn zipf_sampler_deterministic_per_seed() {
        let z = ZipfSampler::new(5, 0.8);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(11);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(11);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn zipf_exponent_zero_is_uniformish() {
        let z = ZipfSampler::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "{counts:?}");
        }
    }
}
