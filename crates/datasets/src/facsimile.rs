//! Facsimiles of the paper's four datasets (Table 3).
//!
//! The synthetic pair (SNAP-ER, SNAP-FF) re-implements the models the
//! paper generated with SNAP. The real pair (Moreno Health, DBpedia
//! subgraph) cannot be fetched offline nor re-extracted exactly, so we
//! build *structural facsimiles*: seeded graphs matching the Table 3 sizes
//! exactly and reproducing the two properties the paper's analysis
//! attributes to real data —
//!
//! 1. **skewed per-label cardinalities** (Figure 1: label 1 most frequent,
//!    label 5 least), and
//! 2. **edge-label cardinality correlations**: which labels can follow
//!    which is far from independent (the paper's explanation for why
//!    sum-based ordering gains less on real data).
//!
//! Every generator accepts a `scale` so benchmarks can run reduced
//! configurations; `scale = 1.0` matches Table 3 exactly.

use std::collections::HashSet;

use phe_graph::{Graph, GraphBuilder, LabelId, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distributions::LabelDistribution;
use crate::er::erdos_renyi;
use crate::forest_fire::{forest_fire_exact_edges, ForestFireParams};
use crate::preferential::PreferentialSampler;

/// A named dataset, ready for experiments.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Display name (matches the paper's Table 3).
    pub name: &'static str,
    /// Whether the paper's counterpart was real-world data.
    pub real_world: bool,
    /// The graph itself.
    pub graph: Graph,
}

/// Per-label edge counts for the Moreno facsimile at full scale, chosen to
/// match Figure 1's length-1 bars: label 1 highest (~4000), label 5 lowest,
/// label 6 slightly above label 5. Sums to 12 969.
const MORENO_LABEL_COUNTS: [u64; 6] = [4000, 2900, 2300, 1800, 950, 1019];

/// Moreno Health facsimile: friendship-ranking network.
///
/// Model: students are ordered by "activity"; the rank-`r` edge budget is
/// spent by cycling through the most active students, so any student
/// naming a rank-`r` friend has also named ranks `1..r` — the prefix
/// structure of ranked friendship nominations. Targets follow preferential
/// attachment (popular students are named more). This yields the skew and
/// the consecutive-label correlation of the real data at exactly the
/// Table 3 size.
pub fn moreno_health_like(seed: u64) -> Graph {
    moreno_health_like_scaled(1.0, seed)
}

/// Scaled Moreno facsimile (`scale = 1.0` ⇒ 2 539 vertices, 12 969 edges).
pub fn moreno_health_like_scaled(scale: f64, seed: u64) -> Graph {
    let n = scaled_count(2539, scale).max(8) as u32;
    let m = scaled_count(12969, scale);
    let counts = scale_counts(&MORENO_LABEL_COUNTS, m);
    let mut rng = StdRng::seed_from_u64(seed);

    // Activity order: a fixed random permutation of students.
    let mut activity: Vec<u32> = (0..n).collect();
    for i in (1..activity.len()).rev() {
        let j = rng.gen_range(0..=i);
        activity.swap(i, j);
    }

    let mut pref = PreferentialSampler::new(n, 0.25);
    let mut seen: HashSet<(u32, u16, u32)> = HashSet::with_capacity(m as usize);
    let mut builder = GraphBuilder::with_numeric_labels(n, 6);
    for (r, &c) in counts.iter().enumerate() {
        let r = r as u16;
        for j in 0..c {
            let src = activity[(j % n as u64) as usize];
            // Retry targets until the triple is fresh; collisions are rare
            // (|V|² pairs per label vs thousands of edges).
            let mut guard = 0;
            loop {
                let t = pref.sample(&mut rng);
                if t != src && seen.insert((src, r, t)) {
                    builder.add_edge(VertexId(src), LabelId(r), VertexId(t));
                    break;
                }
                guard += 1;
                assert!(guard < 10_000, "could not place edge (src {src}, rank {r})");
            }
        }
    }
    builder.build()
}

/// DBpedia-subgraph facsimile: knowledge-graph-like structure.
///
/// Model: the vertex space is treated as a ring of overlapping "type
/// regions". Each label `l` draws sources uniformly from its region and
/// targets preferentially from a shifted region, so the targets of label
/// `l` overlap the sources of a *few* specific other labels. That is the
/// correlated chaining of a knowledge graph (e.g. `dbo:birthPlace` targets
/// feed `dbo:country` sources), with hub-heavy in-degree from the
/// preferential kernel. Label marginals follow a Zipf law as in DBpedia.
pub fn dbpedia_like(seed: u64) -> Graph {
    dbpedia_like_scaled(1.0, seed)
}

/// Scaled DBpedia facsimile (`scale = 1.0` ⇒ 37 374 vertices, 209 068 edges).
pub fn dbpedia_like_scaled(scale: f64, seed: u64) -> Graph {
    let n = scaled_count(37374, scale).max(32) as u32;
    let m = scaled_count(209_068, scale);
    let labels: u16 = 8;
    let counts = LabelDistribution::Zipf { exponent: 0.9 }.per_label_counts(labels as usize, m);

    let mut rng = StdRng::seed_from_u64(seed);
    let region = (n as u64 * 2 / 5).max(1) as u32; // 40% of the ring
    let step = (n as u64 / labels as u64).max(1) as u32;
    let mut seen: HashSet<(u32, u16, u32)> = HashSet::with_capacity(m as usize);
    let mut builder = GraphBuilder::with_numeric_labels(n, labels);
    // One preferential sampler per label keeps hubs label-specific, as in
    // real knowledge graphs (one entity is a hub for `country`, another
    // for `genre`).
    let mut prefs: Vec<PreferentialSampler> = (0..labels)
        .map(|_| PreferentialSampler::new(region, 0.2))
        .collect();
    for (l, &c) in counts.iter().enumerate() {
        let l16 = l as u16;
        let src_base = (l as u32) * step % n;
        let dst_base = ((l as u32) + 2) * step % n;
        for _ in 0..c {
            let mut guard = 0;
            loop {
                let s = (src_base + rng.gen_range(0..region)) % n;
                let t = (dst_base + prefs[l].sample(&mut rng)) % n;
                if seen.insert((s, l16, t)) {
                    builder.add_edge(VertexId(s), LabelId(l16), VertexId(t));
                    break;
                }
                guard += 1;
                assert!(guard < 10_000, "could not place edge for label {l}");
            }
        }
    }
    builder.build()
}

/// SNAP-ER facsimile: Erdős–Rényi structure, 6 labels.
///
/// The paper does not state how edge labels were assigned on top of
/// SNAP's structural generator. *Exactly uniform* labels make every
/// ordering degenerate (all ranks tie, every path has the same expected
/// selectivity), under which the paper's reported "far superior" accuracy
/// of sum-based ordering on synthetic data could not have been observed —
/// so the labels must have been skewed. We use a Zipf marginal
/// (`s = 1.0`), which reproduces the published shape; see EXPERIMENTS.md.
pub fn snap_er(seed: u64) -> Graph {
    snap_er_scaled(1.0, seed)
}

/// Scaled SNAP-ER (`scale = 1.0` ⇒ 12 333 vertices, 147 996 edges).
pub fn snap_er_scaled(scale: f64, seed: u64) -> Graph {
    let n = scaled_count(12333, scale).max(8) as u32;
    let m = scaled_count(147_996, scale);
    erdos_renyi(n, m, 6, LabelDistribution::Zipf { exponent: 1.0 }, seed)
}

/// SNAP-FF facsimile: Forest Fire structure, 8 labels.
///
/// Labels follow a Zipf marginal for the same reason as [`snap_er`].
pub fn snap_ff(seed: u64) -> Graph {
    snap_ff_scaled(1.0, seed)
}

/// Scaled SNAP-FF (`scale = 1.0` ⇒ 50 000 vertices, 132 673 edges).
pub fn snap_ff_scaled(scale: f64, seed: u64) -> Graph {
    let n = scaled_count(50_000, scale).max(16) as u32;
    let m = scaled_count(132_673, scale);
    forest_fire_exact_edges(
        n,
        m,
        8,
        ForestFireParams {
            forward_p: 0.32,
            backward_r: 0.3,
            max_burn: 200,
        },
        LabelDistribution::Zipf { exponent: 0.8 },
        seed,
    )
}

/// All four paper datasets at the given scale (1.0 = Table 3 sizes).
pub fn paper_datasets(scale: f64, seed: u64) -> Vec<Dataset> {
    vec![
        Dataset {
            name: "Moreno health",
            real_world: true,
            graph: moreno_health_like_scaled(scale, seed),
        },
        Dataset {
            name: "DBpedia (subgraph)",
            real_world: true,
            graph: dbpedia_like_scaled(scale, seed + 1),
        },
        Dataset {
            name: "SNAP-ER",
            real_world: false,
            graph: snap_er_scaled(scale, seed + 2),
        },
        Dataset {
            name: "SNAP-FF",
            real_world: false,
            graph: snap_ff_scaled(scale, seed + 3),
        },
    ]
}

fn scaled_count(base: u64, scale: f64) -> u64 {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    ((base as f64) * scale).round().max(1.0) as u64
}

/// Proportionally allocates `total` across `base` weights, summing exactly.
fn scale_counts(base: &[u64], total: u64) -> Vec<u64> {
    let base_total: u64 = base.iter().sum();
    let mut counts: Vec<u64> = base
        .iter()
        .map(|&b| (b as u128 * total as u128 / base_total as u128) as u64)
        .collect();
    let mut assigned: u64 = counts.iter().sum();
    let len = counts.len();
    let mut i = 0usize;
    while assigned < total {
        counts[i % len] += 1;
        assigned += 1;
        i += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use phe_graph::GraphStats;

    #[test]
    fn moreno_scaled_sizes() {
        let g = moreno_health_like_scaled(0.1, 7);
        assert_eq!(g.vertex_count(), 254);
        assert_eq!(g.edge_count(), 1297);
        assert_eq!(g.label_count(), 6);
    }

    #[test]
    fn moreno_label_skew_matches_figure1() {
        let g = moreno_health_like_scaled(0.2, 7);
        let freqs: Vec<u64> = g.label_ids().map(|l| g.label_frequency(l)).collect();
        // Label 0 ("1") highest; label 4 ("5") lowest.
        let max_l = freqs.iter().enumerate().max_by_key(|&(_, f)| *f).unwrap().0;
        let min_l = freqs.iter().enumerate().min_by_key(|&(_, f)| *f).unwrap().0;
        assert_eq!(max_l, 0, "{freqs:?}");
        assert_eq!(min_l, 4, "{freqs:?}");
    }

    #[test]
    fn moreno_has_prefix_correlation() {
        // Every source of a rank-3 edge is also a source of a rank-2 edge.
        let g = moreno_health_like_scaled(0.15, 3);
        let l2 = LabelId(2);
        let l3 = LabelId(3);
        for v in 0..g.vertex_count() as u32 {
            let vid = VertexId(v);
            if g.out_degree(vid, l3) > 0 {
                assert!(
                    g.out_degree(vid, l2) > 0,
                    "vertex {v} has rank-4 edge but no rank-3 edge"
                );
            }
        }
    }

    #[test]
    fn dbpedia_scaled_sizes_and_skew() {
        let g = dbpedia_like_scaled(0.05, 11);
        assert_eq!(g.vertex_count(), 1869);
        assert_eq!(g.edge_count(), 10453);
        assert_eq!(g.label_count(), 8);
        let freqs: Vec<u64> = g.label_ids().map(|l| g.label_frequency(l)).collect();
        assert!(freqs[0] > freqs[7], "{freqs:?}");
    }

    #[test]
    fn dbpedia_labels_are_correlated() {
        let g = dbpedia_like_scaled(0.05, 11);
        let stats = GraphStats::compute(&g);
        // The region construction makes some label pairs chain far more
        // than others: the co-occurrence matrix must be very uneven.
        let co = &stats.cooccurrence;
        let max = co.iter().flatten().max().copied().unwrap();
        let total: u64 = co.iter().flatten().sum();
        assert!(total > 0);
        let cells = (co.len() * co.len()) as u64;
        let mean = total / cells;
        assert!(
            max > mean * 3,
            "max {max}, mean {mean} — not correlated enough"
        );
    }

    #[test]
    fn snap_er_scaled_sizes() {
        let g = snap_er_scaled(0.05, 13);
        assert_eq!(g.vertex_count(), 617);
        assert_eq!(g.edge_count(), 7400);
        assert_eq!(g.label_count(), 6);
    }

    #[test]
    fn snap_ff_scaled_sizes() {
        let g = snap_ff_scaled(0.02, 17);
        assert_eq!(g.vertex_count(), 1000);
        assert_eq!(g.edge_count(), 2653);
        assert_eq!(g.label_count(), 8);
    }

    #[test]
    fn paper_datasets_reduced() {
        let sets = paper_datasets(0.02, 5);
        assert_eq!(sets.len(), 4);
        assert_eq!(sets[0].name, "Moreno health");
        assert!(sets[0].real_world);
        assert!(!sets[2].real_world);
        for d in &sets {
            assert!(d.graph.edge_count() > 0, "{} empty", d.name);
        }
    }

    #[test]
    fn scale_counts_sums_exactly() {
        let c = scale_counts(&MORENO_LABEL_COUNTS, 1297);
        assert_eq!(c.iter().sum::<u64>(), 1297);
        assert_eq!(c.len(), 6);
        // Order of magnitude preserved.
        assert!(c[0] > c[4]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = moreno_health_like_scaled(0.05, 42);
        let b = moreno_health_like_scaled(0.05, 42);
        assert_eq!(
            a.iter_edges().collect::<Vec<_>>(),
            b.iter_edges().collect::<Vec<_>>()
        );
    }

    // Full-scale generation is exercised by the bench binaries; a smoke
    // test here keeps CI fast but validates the exact Table 3 numbers for
    // the cheapest dataset.
    #[test]
    fn moreno_full_scale_matches_table3() {
        let g = moreno_health_like(1);
        assert_eq!(g.vertex_count(), 2539);
        assert_eq!(g.edge_count(), 12969);
        assert_eq!(g.label_count(), 6);
    }
}
