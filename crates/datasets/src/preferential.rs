//! Preferential attachment (Barabási–Albert) graphs, labeled.
//!
//! Included as an extra hub-heavy workload beyond the paper's four
//! datasets, and as the attachment kernel reused by the facsimiles: both
//! the Moreno-like and DBpedia-like generators pick edge *targets* with
//! preferential attachment to reproduce skewed in-degrees.

use phe_graph::{Graph, GraphBuilder, LabelId, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distributions::LabelDistribution;

/// Generates a directed Barabási–Albert-style graph: each new vertex
/// attaches `m` out-edges to targets drawn preferentially by in-degree
/// (plus one smoothing count to keep the early graph connected).
pub fn barabasi_albert(
    vertices: u32,
    m: usize,
    labels: u16,
    dist: LabelDistribution,
    seed: u64,
) -> Graph {
    assert!(vertices >= 2, "need at least two vertices");
    assert!(m >= 1, "need at least one edge per arrival");
    assert!(labels > 0, "need at least one label");
    let mut rng = StdRng::seed_from_u64(seed);
    // Repeated-endpoint trick: sampling uniformly from the endpoint log is
    // equivalent to degree-proportional sampling.
    let mut endpoint_log: Vec<u32> = vec![0];
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for v in 1..vertices {
        for _ in 0..m {
            let t = if rng.gen::<f64>() < 0.1 {
                // Uniform smoothing: lets late vertices receive edges too.
                rng.gen_range(0..v)
            } else {
                endpoint_log[rng.gen_range(0..endpoint_log.len())]
            };
            edges.push((v, t));
            endpoint_log.push(t);
        }
        endpoint_log.push(v);
    }

    let per_label = dist.per_label_counts(labels as usize, edges.len() as u64);
    let mut builder = GraphBuilder::with_numeric_labels(vertices, labels);
    let mut order: Vec<usize> = (0..edges.len()).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut pos = 0usize;
    for (l, &count) in per_label.iter().enumerate() {
        for _ in 0..count {
            let (s, t) = edges[order[pos]];
            builder.add_edge(VertexId(s), LabelId(l as u16), VertexId(t));
            pos += 1;
        }
    }
    builder.build()
}

/// A reusable degree-proportional target sampler for the facsimiles.
#[derive(Debug, Clone)]
pub struct PreferentialSampler {
    endpoint_log: Vec<u32>,
    uniform_mix: f64,
    universe: u32,
}

impl PreferentialSampler {
    /// Creates a sampler over `universe` vertices mixing `uniform_mix` of
    /// uniform choice with degree-proportional choice.
    pub fn new(universe: u32, uniform_mix: f64) -> PreferentialSampler {
        assert!(universe > 0);
        PreferentialSampler {
            endpoint_log: Vec::new(),
            uniform_mix: uniform_mix.clamp(0.0, 1.0),
            universe,
        }
    }

    /// Draws a target and records it (rich get richer).
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u32 {
        let t = if self.endpoint_log.is_empty() || rng.gen::<f64>() < self.uniform_mix {
            rng.gen_range(0..self.universe)
        } else {
            self.endpoint_log[rng.gen_range(0..self.endpoint_log.len())]
        };
        self.endpoint_log.push(t);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phe_graph::GraphStats;

    #[test]
    fn basic_shape() {
        let g = barabasi_albert(500, 3, 4, LabelDistribution::Uniform, 5);
        assert_eq!(g.vertex_count(), 500);
        // ~3 edges per arrival minus duplicates collapsed at build.
        assert!(g.edge_count() > 1000, "{}", g.edge_count());
        assert_eq!(g.label_count(), 4);
    }

    #[test]
    fn in_degree_is_heavy_tailed() {
        let g = barabasi_albert(2000, 2, 1, LabelDistribution::Uniform, 8);
        let mut in_degrees: Vec<usize> = (0..g.vertex_count() as u32)
            .map(|v| g.in_degree(phe_graph::VertexId(v), LabelId(0)))
            .collect();
        in_degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top = in_degrees[0];
        let median = in_degrees[in_degrees.len() / 2];
        assert!(top >= median * 10, "top {top} median {median}");
    }

    #[test]
    fn deterministic() {
        let a = barabasi_albert(100, 2, 2, LabelDistribution::Uniform, 9);
        let b = barabasi_albert(100, 2, 2, LabelDistribution::Uniform, 9);
        assert_eq!(
            a.iter_edges().collect::<Vec<_>>(),
            b.iter_edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn preferential_sampler_skews() {
        let mut s = PreferentialSampler::new(1000, 0.1);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = vec![0u32; 1000];
        for _ in 0..20_000 {
            counts[s.sample(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let mean = 20_000 / 1000;
        assert!(max as f64 > mean as f64 * 10.0, "max {max} mean {mean}");
    }

    #[test]
    fn stats_sane() {
        let g = barabasi_albert(300, 2, 3, LabelDistribution::Zipf { exponent: 1.0 }, 2);
        let s = GraphStats::compute(&g);
        assert_eq!(s.vertex_count, 300);
        assert!(s.label_frequencies[0] > s.label_frequencies[2]);
    }
}
