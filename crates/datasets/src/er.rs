//! Labeled Erdős–Rényi graphs: `G(n, m)` with a label distribution.

use std::collections::HashSet;

use phe_graph::{Graph, GraphBuilder, LabelId, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distributions::LabelDistribution;

/// Generates a labeled Erdős–Rényi graph with exactly `edges` distinct
/// `(src, label, dst)` triples over `vertices` vertices and `labels`
/// labels distributed per `dist`. Self-loops are allowed (they occur in
/// real edge lists and the paper's path semantics handles them fine).
///
/// This mirrors SNAP's `GenRndGnm` with uniformly re-drawn duplicates,
/// plus per-label edge budgets so the label marginal is exact.
///
/// # Panics
/// Panics if the requested edge count exceeds the number of possible
/// distinct triples, or if `vertices == 0` / `labels == 0`.
pub fn erdos_renyi(
    vertices: u32,
    edges: u64,
    labels: u16,
    dist: LabelDistribution,
    seed: u64,
) -> Graph {
    assert!(vertices > 0, "need at least one vertex");
    assert!(labels > 0, "need at least one label");
    let possible = (vertices as u128) * (vertices as u128);
    let per_label = dist.per_label_counts(labels as usize, edges);
    for (l, &c) in per_label.iter().enumerate() {
        assert!(
            (c as u128) <= possible,
            "label {l} asks for {c} edges but only {possible} pairs exist"
        );
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_numeric_labels(vertices, labels);
    let mut seen: HashSet<(u32, u16, u32)> = HashSet::with_capacity(edges as usize);
    for (l, &count) in per_label.iter().enumerate() {
        let l = l as u16;
        let mut added = 0u64;
        while added < count {
            let s = rng.gen_range(0..vertices);
            let t = rng.gen_range(0..vertices);
            if seen.insert((s, l, t)) {
                builder.add_edge(VertexId(s), LabelId(l), VertexId(t));
                added += 1;
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counts() {
        let g = erdos_renyi(50, 300, 3, LabelDistribution::Uniform, 1);
        assert_eq!(g.vertex_count(), 50);
        assert_eq!(g.edge_count(), 300);
        assert_eq!(g.label_count(), 3);
        let freqs: Vec<u64> = g.label_ids().map(|l| g.label_frequency(l)).collect();
        assert_eq!(freqs, vec![100, 100, 100]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = erdos_renyi(30, 100, 2, LabelDistribution::Uniform, 99);
        let b = erdos_renyi(30, 100, 2, LabelDistribution::Uniform, 99);
        let ea: Vec<_> = a.iter_edges().collect();
        let eb: Vec<_> = b.iter_edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = erdos_renyi(30, 100, 2, LabelDistribution::Uniform, 1);
        let b = erdos_renyi(30, 100, 2, LabelDistribution::Uniform, 2);
        let ea: Vec<_> = a.iter_edges().collect();
        let eb: Vec<_> = b.iter_edges().collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn zipf_label_marginal() {
        let g = erdos_renyi(100, 1000, 4, LabelDistribution::Zipf { exponent: 1.0 }, 5);
        let freqs: Vec<u64> = g.label_ids().map(|l| g.label_frequency(l)).collect();
        assert_eq!(freqs.iter().sum::<u64>(), 1000);
        assert!(freqs[0] > freqs[3], "{freqs:?}");
    }

    #[test]
    fn dense_request_saturates() {
        // 4 vertices, 1 label, 16 = all possible pairs.
        let g = erdos_renyi(4, 16, 1, LabelDistribution::Uniform, 0);
        assert_eq!(g.edge_count(), 16);
    }

    #[test]
    #[should_panic(expected = "pairs exist")]
    fn impossible_request_panics() {
        erdos_renyi(2, 5, 1, LabelDistribution::Uniform, 0);
    }
}
