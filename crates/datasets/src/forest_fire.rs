//! Forest Fire graphs (Leskovec, Kleinberg & Faloutsos), labeled.
//!
//! Vertices arrive one at a time. Each new vertex picks a random
//! *ambassador*, links to it, then "burns" outward: from each burning
//! vertex it links to a geometrically distributed number of that vertex's
//! out-neighbors (forward burning) and in-neighbors (backward burning,
//! damped by a ratio), recursively. The result has heavy-tailed degrees,
//! densification, and community structure — the properties that make
//! SNAP-FF behave differently from SNAP-ER in the paper's Figure 2.

use std::collections::HashSet;

use phe_graph::{Graph, GraphBuilder, LabelId, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distributions::LabelDistribution;

/// Parameters of the Forest Fire model.
#[derive(Debug, Clone, Copy)]
pub struct ForestFireParams {
    /// Forward burning probability `p` (geometric mean `p / (1 − p)`).
    pub forward_p: f64,
    /// Backward burning ratio `r`: backward probability is `r · p`.
    pub backward_r: f64,
    /// Cap on burned vertices per arrival, to bound worst-case blowup.
    pub max_burn: usize,
}

impl Default for ForestFireParams {
    fn default() -> Self {
        ForestFireParams {
            forward_p: 0.2,
            backward_r: 0.3,
            max_burn: 200,
        }
    }
}

/// Generates a labeled Forest Fire graph with `vertices` vertices. The
/// number of edges is an emergent property of `params`; labels are drawn
/// from `dist` (probabilistically — exact marginals cannot be guaranteed
/// while edges are structural).
pub fn forest_fire(
    vertices: u32,
    labels: u16,
    params: ForestFireParams,
    dist: LabelDistribution,
    seed: u64,
) -> Graph {
    assert!(labels > 0, "need at least one label");
    let mut rng = StdRng::seed_from_u64(seed);
    // Structural adjacency (label-free) maintained incrementally.
    let mut out_adj: Vec<Vec<u32>> = vec![Vec::new(); vertices as usize];
    let mut in_adj: Vec<Vec<u32>> = vec![Vec::new(); vertices as usize];
    let mut edges: Vec<(u32, u32)> = Vec::new();

    let mut burned: HashSet<u32> = HashSet::new();
    let mut queue: Vec<u32> = Vec::new();

    for v in 1..vertices {
        let ambassador = rng.gen_range(0..v);
        burned.clear();
        queue.clear();
        burned.insert(ambassador);
        queue.push(ambassador);
        let mut qi = 0usize;
        while qi < queue.len() && burned.len() < params.max_burn {
            let w = queue[qi];
            qi += 1;
            // Geometric number of forward links from w.
            let fwd = geometric(&mut rng, params.forward_p);
            let bwd = geometric(&mut rng, params.forward_p * params.backward_r);
            burn_sample(&mut rng, &out_adj[w as usize], fwd, &mut burned, &mut queue);
            burn_sample(&mut rng, &in_adj[w as usize], bwd, &mut burned, &mut queue);
        }
        for &w in &queue {
            out_adj[v as usize].push(w);
            in_adj[w as usize].push(v);
            edges.push((v, w));
        }
    }

    label_and_build(vertices, labels, dist, &edges, &mut rng)
}

/// Draws how many neighbors to burn: geometric with mean `p / (1 - p)`.
fn geometric<R: Rng>(rng: &mut R, p: f64) -> usize {
    let p = p.clamp(0.0, 0.95);
    let mut n = 0usize;
    while n < 32 && rng.gen::<f64>() < p {
        n += 1;
    }
    n
}

/// Burns up to `count` distinct unburned vertices from `candidates`.
fn burn_sample<R: Rng>(
    rng: &mut R,
    candidates: &[u32],
    count: usize,
    burned: &mut HashSet<u32>,
    queue: &mut Vec<u32>,
) {
    if candidates.is_empty() || count == 0 {
        return;
    }
    // Sample with a bounded number of attempts; candidate lists are short
    // in expectation so this stays cheap.
    let mut taken = 0usize;
    let mut attempts = 0usize;
    while taken < count && attempts < candidates.len() * 2 {
        attempts += 1;
        let w = candidates[rng.gen_range(0..candidates.len())];
        if burned.insert(w) {
            queue.push(w);
            taken += 1;
        }
    }
}

/// Assigns labels to structural edges and freezes the graph. Multiple
/// labels on the same pair are allowed (distinct triples), matching the
/// multigraph model.
fn label_and_build(
    vertices: u32,
    labels: u16,
    dist: LabelDistribution,
    edges: &[(u32, u32)],
    rng: &mut StdRng,
) -> Graph {
    let per_label = dist.per_label_counts(labels as usize, edges.len() as u64);
    let mut builder = GraphBuilder::with_numeric_labels(vertices, labels);
    // Shuffle edge order deterministically, then slice per label.
    let mut order: Vec<usize> = (0..edges.len()).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut pos = 0usize;
    for (l, &count) in per_label.iter().enumerate() {
        for _ in 0..count {
            let (s, t) = edges[order[pos]];
            builder.add_edge(VertexId(s), LabelId(l as u16), VertexId(t));
            pos += 1;
        }
    }
    builder.build()
}

/// Forest Fire with an exact edge budget: burns until at least `edges`
/// structural edges exist (re-running arrivals with increasing forward
/// probability if the model under-shoots), then keeps a deterministic
/// random subset of exactly `edges`. Used by the SNAP-FF facsimile so the
/// Table 3 row matches exactly.
pub fn forest_fire_exact_edges(
    vertices: u32,
    edges: u64,
    labels: u16,
    mut params: ForestFireParams,
    dist: LabelDistribution,
    seed: u64,
) -> Graph {
    for attempt in 0..8 {
        let g = forest_fire(
            vertices,
            1,
            params,
            LabelDistribution::Uniform,
            seed + attempt,
        );
        let structural: Vec<(u32, u32)> = g.iter_edges().map(|(s, _, t)| (s.0, t.0)).collect();
        if (structural.len() as u64) >= edges {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_f00d);
            let mut order: Vec<usize> = (0..structural.len()).collect();
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let kept: Vec<(u32, u32)> = order[..edges as usize]
                .iter()
                .map(|&i| structural[i])
                .collect();
            return label_and_build(vertices, labels, dist, &kept, &mut rng);
        }
        // Undershot: burn hotter.
        params.forward_p = (params.forward_p * 1.35).min(0.9);
    }
    panic!(
        "forest fire could not reach {edges} edges on {vertices} vertices; \
         raise forward_p or max_burn"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_connected_ish_graph() {
        let g = forest_fire(
            500,
            3,
            ForestFireParams::default(),
            LabelDistribution::Uniform,
            7,
        );
        assert_eq!(g.vertex_count(), 500);
        // Every vertex except 0 has at least one out-edge (its ambassador link).
        assert!(g.edge_count() >= 499);
        assert_eq!(g.label_count(), 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = ForestFireParams::default();
        let a = forest_fire(200, 2, p, LabelDistribution::Uniform, 3);
        let b = forest_fire(200, 2, p, LabelDistribution::Uniform, 3);
        let ea: Vec<_> = a.iter_edges().collect();
        let eb: Vec<_> = b.iter_edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn heavier_burning_densifies() {
        let light = forest_fire(
            400,
            1,
            ForestFireParams {
                forward_p: 0.1,
                backward_r: 0.2,
                max_burn: 200,
            },
            LabelDistribution::Uniform,
            11,
        );
        let heavy = forest_fire(
            400,
            1,
            ForestFireParams {
                forward_p: 0.35,
                backward_r: 0.3,
                max_burn: 200,
            },
            LabelDistribution::Uniform,
            11,
        );
        assert!(
            heavy.edge_count() > light.edge_count(),
            "heavy {} vs light {}",
            heavy.edge_count(),
            light.edge_count()
        );
    }

    #[test]
    fn exact_edges_hits_target() {
        let g = forest_fire_exact_edges(
            300,
            800,
            4,
            ForestFireParams {
                forward_p: 0.3,
                backward_r: 0.3,
                max_burn: 200,
            },
            LabelDistribution::Uniform,
            21,
        );
        assert_eq!(g.vertex_count(), 300);
        assert_eq!(g.edge_count(), 800);
        assert_eq!(g.label_count(), 4);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = forest_fire(
            1000,
            1,
            ForestFireParams {
                forward_p: 0.3,
                backward_r: 0.3,
                max_burn: 200,
            },
            LabelDistribution::Uniform,
            13,
        );
        // Hubs form on the receiving side: early vertices are burned over
        // and over, so max in-degree far exceeds the mean degree.
        let max_in = (0..g.vertex_count() as u32)
            .map(|v| g.in_degree(phe_graph::VertexId(v), LabelId(0)))
            .max()
            .unwrap();
        let mean = g.edge_count() as f64 / g.vertex_count() as f64;
        assert!(
            max_in as f64 > mean * 5.0,
            "max in-degree {max_in} vs mean degree {mean}"
        );
    }
}
