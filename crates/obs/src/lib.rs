//! Observability substrate for the phe pipeline: a lock-free metrics
//! registry with Prometheus-text exposition, structured spans that feed
//! per-stage latency histograms, and a minimal plain-HTTP scrape
//! endpoint.
//!
//! Std-only by design (consistent with `crates/compat/`): no crates.io
//! dependencies, so every workspace crate — down to the path-enumeration
//! kernels — can depend on it without widening the build.
//!
//! ## The three pieces
//!
//! * [`MetricsRegistry`] — named counters, gauges, and log-linear
//!   histograms, identified by `(name, sorted labels)`. Registration
//!   takes a lock once; the returned [`Counter`] / [`Gauge`] /
//!   [`LogHistogram`] handles are plain atomics, so the hot path is a
//!   single relaxed `fetch_add` with no lock in sight.
//!   [`MetricsRegistry::render`] emits the Prometheus text format and
//!   [`parse_exposition`] validates it (used by tests and CI).
//! * [`span`] — a cheap RAII stage timer. Every [`span::stage`] guard
//!   records its elapsed time into the *global* registry's
//!   `phe_stage_duration_seconds{stage=…}` histogram on drop; when a
//!   [`span::capture`] is active on the thread, the guards additionally
//!   assemble a nested [`span::TraceNode`] tree for `--trace` output
//!   and `explain` stage breakdowns.
//! * [`http`] — [`http::serve_metrics`] binds a std `TcpListener` and
//!   answers `GET /metrics` with whatever the supplied render closure
//!   produces; enough HTTP for a Prometheus scraper, and nothing more.
//!
//! The process-wide [`global`] registry is where spans and any
//! instrumentation without an explicit registry handle report; the
//! serving binary hands that same registry to its `ServiceMetrics` so
//! the scrape endpoint, the `metrics` protocol op, and the shutdown
//! dump all read one surface.

#![warn(missing_docs)]

pub mod http;
pub mod metrics;
pub mod names;
pub mod span;

pub use metrics::{
    parse_exposition, Counter, Gauge, LogHistogram, MetricsRegistry, Sample, STAGE_HISTOGRAM,
};

use std::sync::{Arc, OnceLock};

static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();

/// The process-wide registry: the sink for [`span`] stage histograms and
/// the default surface a binary should expose for scraping.
pub fn global() -> &'static Arc<MetricsRegistry> {
    GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new()))
}
