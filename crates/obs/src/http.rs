//! A minimal plain-HTTP scrape endpoint: just enough HTTP/1.1 to answer
//! `GET /metrics` from a Prometheus scraper, on a std `TcpListener`.
//!
//! One background thread accepts connections (non-blocking accept with a
//! short sleep so shutdown is prompt), answers each request with the
//! supplied render closure's output, and closes the connection. No
//! keep-alive, no chunking, no TLS — scrape traffic only.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The render closure: produces the exposition body for one scrape.
pub type RenderFn = Arc<dyn Fn() -> String + Send + Sync>;

/// A running scrape endpoint; shuts down when dropped.
#[derive(Debug)]
pub struct MetricsServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful when binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Signals the accept loop to stop and joins it.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` and serves `GET /metrics` (and `GET /`) with the body
/// `render` produces; any other path gets 404.
///
/// # Errors
/// The bind error, if the address is unavailable.
pub fn serve_metrics(addr: &str, render: RenderFn) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stop = Arc::clone(&shutdown);
    let handle = std::thread::Builder::new()
        .name("phe-metrics-http".to_owned())
        .spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => answer(stream, &render),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
            }
        })?;
    Ok(MetricsServer {
        local_addr,
        shutdown,
        handle: Some(handle),
    })
}

/// Reads the request head and writes one response.
fn answer(mut stream: TcpStream, render: &RenderFn) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nodelay(true);
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    // Read until the end of the request head or a modest cap; scrape
    // requests have no body.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 8192 {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(&[]);
    let request_line = String::from_utf8_lossy(request_line);
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            String::from("method not allowed\n"),
        )
    } else if path == "/metrics" || path == "/" {
        ("200 OK", render())
    } else {
        ("404 Not Found", String::from("not found\n"))
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn scrape(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect scrape");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut reader = std::io::BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut body = String::new();
        let mut line = String::new();
        // Skip headers.
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            if line == "\r\n" || line.is_empty() {
                break;
            }
        }
        reader.read_to_string(&mut body).unwrap();
        (status, body)
    }

    #[test]
    fn serves_rendered_metrics_and_404s_elsewhere() {
        let render: RenderFn = Arc::new(|| "# TYPE t counter\nt 1\n".to_owned());
        let server = serve_metrics("127.0.0.1:0", render).expect("bind");
        let (status, body) = scrape(server.local_addr(), "/metrics");
        assert!(status.starts_with("HTTP/1.1 200"), "{status}");
        assert!(body.contains("t 1"), "{body}");
        crate::parse_exposition(&body).expect("scrape output must parse");
        let (status, _) = scrape(server.local_addr(), "/nope");
        assert!(status.starts_with("HTTP/1.1 404"), "{status}");
    }

    #[test]
    fn shutdown_is_prompt() {
        let render: RenderFn = Arc::new(String::new);
        let mut server = serve_metrics("127.0.0.1:0", render).expect("bind");
        let t0 = std::time::Instant::now();
        server.shutdown();
        assert!(t0.elapsed() < Duration::from_secs(2));
    }
}
