//! Structured spans: RAII stage timers that always feed the global
//! per-stage histograms and, when a capture is active, assemble a
//! nested trace tree.
//!
//! A [`stage`] guard costs two `Instant` reads and one atomic add on
//! drop (the histogram handle is cached per thread), so stages can be
//! left permanently instrumented — `--trace` only changes whether the
//! tree is *collected*, not whether the timings are recorded.
//!
//! ## Stage taxonomy
//!
//! Stage names are dotted, parent first:
//!
//! * `build` → `build.count`, `build.merge`, `build.order`,
//!   `build.histogram`
//! * `delta` → `delta.apply`, `delta.count`, `delta.merge`,
//!   `delta.rederive`
//! * `query.parse`, `query.expand`, `query.prune`, `query.estimate`
//!
//! Trees are per-thread: a span opened on a worker thread records its
//! stage histogram as usual but does not attach to a capture running on
//! another thread, so orchestrating code should open stage spans around
//! its fan-out points, not inside them.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::metrics::{LogHistogram, STAGE_HISTOGRAM};

/// An active stage timer; records on drop.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Instant,
    /// `(capture epoch, node index)` when a capture adopted this span.
    node: Option<(u64, usize)>,
}

struct CaptureState {
    epoch: u64,
    nodes: Vec<Node>,
    stack: Vec<usize>,
    roots: Vec<usize>,
}

struct Node {
    name: &'static str,
    duration: Duration,
    children: Vec<usize>,
}

thread_local! {
    static CAPTURE: RefCell<Option<CaptureState>> = const { RefCell::new(None) };
    /// Per-thread cache of stage-histogram handles, keyed by stage name.
    static STAGE_CACHE: RefCell<HashMap<&'static str, Arc<LogHistogram>>> =
        RefCell::new(HashMap::new());
}

static EPOCH: AtomicU64 = AtomicU64::new(0);

/// Opens a stage span. Use a `let` binding — the timing is recorded
/// when the guard drops.
pub fn stage(name: &'static str) -> Span {
    let node = CAPTURE.with(|c| {
        c.borrow_mut().as_mut().map(|cap| {
            let idx = cap.nodes.len();
            cap.nodes.push(Node {
                name,
                duration: Duration::ZERO,
                children: Vec::new(),
            });
            match cap.stack.last() {
                Some(&parent) => cap.nodes[parent].children.push(idx),
                None => cap.roots.push(idx),
            }
            cap.stack.push(idx);
            (cap.epoch, idx)
        })
    });
    Span {
        name,
        start: Instant::now(),
        node,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        STAGE_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            let hist = cache.entry(self.name).or_insert_with(|| {
                crate::global().duration_histogram_with(
                    STAGE_HISTOGRAM,
                    "Wall time per pipeline stage.",
                    &[("stage", self.name)],
                )
            });
            hist.record_duration(elapsed);
        });
        if let Some((epoch, idx)) = self.node {
            CAPTURE.with(|c| {
                if let Some(cap) = c.borrow_mut().as_mut() {
                    if cap.epoch == epoch {
                        cap.nodes[idx].duration = elapsed;
                        // Pop down to this span; tolerates guards
                        // dropped out of order (e.g. after a panic).
                        while let Some(top) = cap.stack.pop() {
                            if top == idx {
                                break;
                            }
                        }
                    }
                }
            });
        }
    }
}

/// One node of a captured trace tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceNode {
    /// The stage name.
    pub name: &'static str,
    /// Wall time between the guard's creation and drop.
    pub duration: Duration,
    /// Spans opened (on this thread) while this one was on top.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    fn from_arena(nodes: &[Node], idx: usize) -> TraceNode {
        TraceNode {
            name: nodes[idx].name,
            duration: nodes[idx].duration,
            children: nodes[idx]
                .children
                .iter()
                .map(|&c| TraceNode::from_arena(nodes, c))
                .collect(),
        }
    }

    /// Depth-first `(depth, name, duration)` flattening, self first.
    pub fn flatten(&self) -> Vec<(usize, &'static str, Duration)> {
        let mut out = Vec::new();
        fn walk(node: &TraceNode, depth: usize, out: &mut Vec<(usize, &'static str, Duration)>) {
            out.push((depth, node.name, node.duration));
            for child in &node.children {
                walk(child, depth + 1, out);
            }
        }
        walk(self, 0, &mut out);
        out
    }
}

/// Restores the previous capture state even if `f` unwinds.
struct Restore(Option<CaptureState>);

impl Drop for Restore {
    fn drop(&mut self) {
        CAPTURE.with(|c| *c.borrow_mut() = self.0.take());
    }
}

/// Runs `f` while collecting spans opened on this thread into a trace
/// tree. Captures nest: an inner capture sees only its own spans and
/// the outer capture resumes (without the inner spans) when it ends.
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, Vec<TraceNode>) {
    // ORDERING: the epoch only needs to be unique, not ordered; the
    // atomic RMW guarantees distinct values to concurrent captures.
    let epoch = EPOCH.fetch_add(1, Ordering::Relaxed) + 1;
    let prev = CAPTURE.with(|c| {
        c.borrow_mut().replace(CaptureState {
            epoch,
            nodes: Vec::new(),
            stack: Vec::new(),
            roots: Vec::new(),
        })
    });
    let restore = Restore(prev);
    let value = f();
    let state = CAPTURE.with(|c| c.borrow_mut().take());
    drop(restore);
    let tree = state
        .map(|cap| {
            cap.roots
                .iter()
                .map(|&r| TraceNode::from_arena(&cap.nodes, r))
                .collect()
        })
        .unwrap_or_default();
    (value, tree)
}

/// Renders a trace tree as an indented stage-time table; each line
/// shows the stage, its wall time, and its share of the tree total.
pub fn render_tree(roots: &[TraceNode]) -> String {
    let total: Duration = roots.iter().map(|r| r.duration).sum();
    let total_s = total.as_secs_f64().max(1e-12);
    let mut out = String::new();
    for root in roots {
        for (depth, name, duration) in root.flatten() {
            let indent = "  ".repeat(depth);
            let label = format!("{indent}{name}");
            out.push_str(&format!(
                "{label:<32} {:>10.3} ms  {:>5.1}%\n",
                duration.as_secs_f64() * 1e3,
                duration.as_secs_f64() / total_s * 100.0
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_into_a_tree() {
        let ((), tree) = capture(|| {
            let _outer = stage("build");
            {
                let _a = stage("build.count");
            }
            {
                let _b = stage("build.merge");
            }
        });
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].name, "build");
        let children: Vec<_> = tree[0].children.iter().map(|c| c.name).collect();
        assert_eq!(children, ["build.count", "build.merge"]);
        assert!(tree[0].duration >= tree[0].children[0].duration);
    }

    #[test]
    fn sibling_roots_and_flatten_order() {
        let ((), tree) = capture(|| {
            {
                let _a = stage("query.parse");
            }
            let _b = stage("query.estimate");
        });
        assert_eq!(
            tree.iter().map(|n| n.name).collect::<Vec<_>>(),
            ["query.parse", "query.estimate"]
        );
        let flat = tree[0].flatten();
        assert_eq!(flat[0], (0, "query.parse", flat[0].2));
    }

    #[test]
    fn capture_nests_and_restores() {
        let ((), outer) = capture(|| {
            let _o = stage("delta");
            let ((), inner) = capture(|| {
                let _i = stage("delta.apply");
            });
            assert_eq!(inner.len(), 1);
            assert_eq!(inner[0].name, "delta.apply");
        });
        // The inner capture's spans do not leak into the outer tree.
        assert_eq!(outer.len(), 1);
        assert_eq!(outer[0].name, "delta");
        assert!(outer[0].children.is_empty());
    }

    #[test]
    fn uncaptured_spans_still_record_stage_histograms() {
        {
            let _s = stage("test.uncaptured");
        }
        let hist = crate::global().duration_histogram_with(
            STAGE_HISTOGRAM,
            "Wall time per pipeline stage.",
            &[("stage", "test.uncaptured")],
        );
        assert!(hist.count() >= 1);
    }

    #[test]
    fn render_tree_indents() {
        let ((), tree) = capture(|| {
            let _o = stage("build");
            let _i = stage("build.order");
        });
        let text = render_tree(&tree);
        assert!(text.contains("build"), "{text}");
        assert!(text.contains("  build.order"), "{text}");
    }
}
