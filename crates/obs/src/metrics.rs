//! The metrics registry: named counters, gauges, and log-linear
//! histograms with Prometheus-text exposition.
//!
//! A metric is identified by `(family name, sorted label pairs)`.
//! Looking a handle up takes the registry's `RwLock` (write-locked only
//! on first registration); *recording* through a handle is one relaxed
//! atomic add — the registry is never touched on the hot path, which is
//! what "lock-free" means here.
//!
//! ## Histogram resolution
//!
//! [`LogHistogram`] generalizes the serving tier's original power-of-two
//! latency histogram to log-linear buckets: values below 4 get exact
//! unit buckets, and every power of two above is split into 4 equal
//! sub-buckets, so a bucket's width is at most 1/4 of its lower bound
//! and the midpoint a quantile reads is within **1.25×** of any value in
//! the bucket (the pure power-of-two layout was only within 2×).
//! Recording stays a single atomic add into the bucket array (plus the
//! count/sum atomics every Prometheus histogram needs anyway).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Duration;

/// The stage-timing histogram family every [`crate::span::Span`] reports
/// into (label: `stage`). Alias of [`crate::names::STAGE_DURATION_SECONDS`].
pub const STAGE_HISTOGRAM: &str = crate::names::STAGE_DURATION_SECONDS;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A detached counter (not registered anywhere).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        // ORDERING: a metric counter orders nothing — readers only need
        // eventual visibility of the atomic RMW, never happens-before.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ORDERING: monitoring read; a slightly stale value is correct.
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a settable `f64` (stored as bits in one atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A detached gauge (not registered anywhere), reading 0.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, value: f64) {
        // ORDERING: last-writer-wins gauge; the store publishes no other
        // data, so no release pairing is needed.
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        // ORDERING: monitoring read; a slightly stale value is correct.
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Bucket count of the log-linear layout: 4 unit buckets for values
/// `0..4`, then 4 sub-buckets per power of two up to `2^64`.
const BUCKETS: usize = 252;

/// Lock-free log-linear histogram over `u64` values.
///
/// Durations are recorded in nanoseconds ([`LogHistogram::record_duration`]);
/// exposition scales the bounds by the family's unit (seconds for
/// duration families). Quantiles return the arithmetic midpoint of the
/// crossing bucket, which the log-linear layout keeps within 1.25× of
/// the true value.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket a value lands in: exact for `v < 4`, otherwise power
/// `p = ⌊log₂ v⌋` refined by the next two mantissa bits.
fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let p = 63 - v.leading_zeros() as usize;
    let sub = ((v >> (p - 2)) & 3) as usize;
    4 * p + sub - 4
}

/// Inclusive lower bound of bucket `i`.
fn bucket_lo(i: usize) -> u64 {
    if i < 4 {
        i as u64
    } else {
        let p = i / 4 + 1;
        let sub = (i % 4) as u64;
        (1u64 << p) + sub * (1u64 << (p - 2))
    }
}

/// Exclusive upper bound of bucket `i` (saturating at the top).
fn bucket_hi(i: usize) -> u64 {
    if i + 1 < BUCKETS {
        bucket_lo(i + 1)
    } else {
        u64::MAX
    }
}

impl LogHistogram {
    /// A detached histogram (not registered anywhere).
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        // ORDERING: each cell is independently atomic; a scrape racing a
        // record may see the bucket without the count (or vice versa) —
        // transient ±1 skew a monitoring read tolerates by design, so no
        // ordering between the three adds is required.
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        // ORDERING: see above — independent cell, scrape-tolerant skew.
        self.count.fetch_add(1, Ordering::Relaxed);
        // ORDERING: see above — independent cell, scrape-tolerant skew.
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        // ORDERING: monitoring read; a slightly stale value is correct.
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        // ORDERING: monitoring read; a slightly stale value is correct.
        self.sum.load(Ordering::Relaxed)
    }

    /// Approximate quantile (`q` in `[0, 1]`): the midpoint of the
    /// bucket where the cumulative count crosses `q`, within 1.25× of
    /// any value the bucket holds.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            // ORDERING: quantiles over a live histogram are approximate
            // by contract; per-bucket staleness only shifts the estimate
            // within the same tolerance as the bucketing itself.
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                let lo = bucket_lo(i);
                return lo + (bucket_hi(i) - lo) / 2;
            }
        }
        u64::MAX
    }

    /// [`LogHistogram::quantile`] as a [`Duration`] (nanosecond values).
    pub fn quantile_duration(&self, q: f64) -> Duration {
        Duration::from_nanos(self.quantile(q))
    }

    /// Mean observation.
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// [`LogHistogram::mean`] as a [`Duration`] (nanosecond values).
    pub fn mean_duration(&self) -> Duration {
        Duration::from_nanos(self.mean())
    }

    /// Non-empty buckets as `(exclusive upper bound, cumulative count)`.
    fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            // ORDERING: exposition snapshot; per-bucket tearing shows up
            // as transient count/sum skew a scraper already tolerates.
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                cum += n;
                out.push((bucket_hi(i), cum));
            }
        }
        out
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LogHistogram>),
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: Kind,
    /// Multiplier applied to histogram bounds/sums on exposition
    /// (`1e-9` turns recorded nanoseconds into exported seconds).
    scale: f64,
    /// Keyed by the rendered label string (`{k="v",…}`, sorted), which
    /// doubles as the exposition suffix.
    instances: BTreeMap<String, Handle>,
}

/// The registry: a map from `(name, labels)` to live metric handles.
///
/// Handles are `Arc`s; re-registering the same identity returns the
/// same handle, so any number of components can share a metric without
/// coordination.
///
/// # Panics
/// Registering a name that already exists with a *different* metric
/// kind panics — that is a programming error, not a runtime condition.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: RwLock<BTreeMap<String, Family>>,
}

/// Renders sorted labels as the exposition suffix, `""` when empty.
fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_unstable();
    let mut out = String::from("{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                other => out.push(other),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn register(&self, name: &str, help: &str, kind: Kind, scale: f64, key: String) -> Handle {
        // The registry map guards plain handle tables; a panicking
        // registrant cannot leave them torn, so poisoning recovery is
        // sound and keeps metrics alive after an unrelated thread dies.
        if let Some(family) = self
            .families
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
        {
            assert_eq!(
                family.kind,
                kind,
                "metric `{name}` registered as {} and {}",
                family.kind.as_str(),
                kind.as_str()
            );
            if let Some(handle) = family.instances.get(&key) {
                return handle.clone();
            }
        }
        let mut families = self
            .families
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let family = families.entry(name.to_owned()).or_insert_with(|| Family {
            help: help.to_owned(),
            kind,
            scale,
            instances: BTreeMap::new(),
        });
        assert_eq!(
            family.kind,
            kind,
            "metric `{name}` registered as {} and {}",
            family.kind.as_str(),
            kind.as_str()
        );
        family
            .instances
            .entry(key)
            .or_insert_with(|| match kind {
                Kind::Counter => Handle::Counter(Arc::new(Counter::new())),
                Kind::Gauge => Handle::Gauge(Arc::new(Gauge::new())),
                Kind::Histogram => Handle::Histogram(Arc::new(LogHistogram::new())),
            })
            .clone()
    }

    /// A counter with no labels.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// A counter with labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, help, Kind::Counter, 1.0, label_key(labels)) {
            Handle::Counter(c) => c,
            // LINT-ALLOW(panic): `register` asserted the family's kind
            // matches the request; this arm is dead by that invariant.
            _ => unreachable!("kind checked by register"),
        }
    }

    /// A gauge with no labels.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// A gauge with labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, help, Kind::Gauge, 1.0, label_key(labels)) {
            Handle::Gauge(g) => g,
            // LINT-ALLOW(panic): `register` asserted the family's kind
            // matches the request; this arm is dead by that invariant.
            _ => unreachable!("kind checked by register"),
        }
    }

    /// A histogram over raw `u64` values with no unit scaling.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<LogHistogram> {
        match self.register(name, help, Kind::Histogram, 1.0, String::new()) {
            Handle::Histogram(h) => h,
            // LINT-ALLOW(panic): `register` asserted the family's kind
            // matches the request; this arm is dead by that invariant.
            _ => unreachable!("kind checked by register"),
        }
    }

    /// A duration histogram: recorded in nanoseconds, exposed in
    /// seconds. Name it `*_seconds` by convention.
    pub fn duration_histogram(&self, name: &str, help: &str) -> Arc<LogHistogram> {
        self.duration_histogram_with(name, help, &[])
    }

    /// A labelled duration histogram (nanoseconds in, seconds out).
    pub fn duration_histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<LogHistogram> {
        match self.register(name, help, Kind::Histogram, 1e-9, label_key(labels)) {
            Handle::Histogram(h) => h,
            // LINT-ALLOW(panic): `register` asserted the family's kind
            // matches the request; this arm is dead by that invariant.
            _ => unreachable!("kind checked by register"),
        }
    }

    /// Removes one `(name, labels)` instance from the registry so it no
    /// longer appears in the exposition; drops the family when its last
    /// instance goes. Existing handles keep working but become detached.
    /// Returns whether an instance was actually removed.
    ///
    /// This is for metrics whose *identity* can become stale — e.g. a
    /// per-slot gauge after the slot's state is invalidated. A gauge can
    /// only be set, never deleted, so without unregistration a scrape
    /// would keep reporting the last value forever.
    pub fn unregister_with(&self, name: &str, labels: &[(&str, &str)]) -> bool {
        let key = label_key(labels);
        let mut families = self
            .families
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let Some(family) = families.get_mut(name) else {
            return false;
        };
        let removed = family.instances.remove(&key).is_some();
        if family.instances.is_empty() {
            families.remove(name);
        }
        removed
    }

    /// Renders the whole registry in the Prometheus text exposition
    /// format (version 0.0.4), families and instances in sorted order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let families = self.families.read().unwrap_or_else(PoisonError::into_inner);
        for (name, family) in families.iter() {
            if !family.help.is_empty() {
                out.push_str(&format!(
                    "# HELP {name} {}\n",
                    family.help.replace('\n', " ")
                ));
            }
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.as_str()));
            for (key, handle) in &family.instances {
                match handle {
                    Handle::Counter(c) => {
                        out.push_str(&format!("{name}{key} {}\n", c.get()));
                    }
                    Handle::Gauge(g) => {
                        out.push_str(&format!("{name}{key} {}\n", fmt_value(g.get())));
                    }
                    Handle::Histogram(h) => {
                        let count = h.count();
                        for (hi, cum) in h.cumulative() {
                            let le = fmt_value(hi as f64 * family.scale);
                            out.push_str(&format!("{name}_bucket{} {cum}\n", merge_le(key, &le)));
                        }
                        out.push_str(&format!("{name}_bucket{} {count}\n", merge_le(key, "+Inf")));
                        out.push_str(&format!(
                            "{name}_sum{key} {}\n",
                            fmt_value(h.sum() as f64 * family.scale)
                        ));
                        out.push_str(&format!("{name}_count{key} {count}\n"));
                    }
                }
            }
        }
        out
    }
}

/// Appends the `le` label to an existing (possibly empty) label suffix.
fn merge_le(key: &str, le: &str) -> String {
    if key.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        format!("{},le=\"{le}\"}}", &key[..key.len() - 1])
    }
}

/// Formats an exposition float: integral values without a fraction,
/// everything else via shortest-roundtrip `f64` display.
fn fmt_value(v: f64) -> String {
    if v.is_infinite() {
        return if v > 0.0 { "+Inf" } else { "-Inf" }.to_owned();
    }
    if v.is_nan() {
        return "NaN".to_owned();
    }
    format!("{v}")
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample name as written (histogram samples keep their
    /// `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in written order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

/// Parses and validates Prometheus text exposition, returning every
/// sample.
///
/// Checks the properties a scraper relies on: well-formed `# HELP` /
/// `# TYPE` comments with known metric kinds, legal metric and label
/// names, parseable float values, and — the cross-line contract — that
/// every sample belongs to a family declared by a preceding `# TYPE`
/// line.
///
/// # Errors
/// A description of the first malformed line.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap_or("");
            let kind = it
                .next()
                .ok_or(format!("line {lineno}: TYPE without kind"))?;
            if !valid_name(name) {
                return Err(format!("line {lineno}: invalid metric name `{name}`"));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {lineno}: unknown metric kind `{kind}`"));
            }
            typed.insert(name.to_owned(), kind.to_owned());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            if !valid_name(rest.split(' ').next().unwrap_or("")) {
                return Err(format!("line {lineno}: HELP for invalid metric name"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        let sample = parse_sample(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let family = sample
            .name
            .strip_suffix("_bucket")
            .or_else(|| sample.name.strip_suffix("_sum"))
            .or_else(|| sample.name.strip_suffix("_count"))
            .filter(|base| typed.get(*base).map(String::as_str) == Some("histogram"))
            .unwrap_or(&sample.name);
        if !typed.contains_key(family) {
            return Err(format!(
                "line {lineno}: sample `{}` has no preceding # TYPE",
                sample.name
            ));
        }
        samples.push(sample);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_labels, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| "sample without value".to_owned())?;
    let value = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        other => other
            .parse::<f64>()
            .map_err(|_| format!("unparseable value `{other}`"))?,
    };
    let (name, labels) = match name_labels.split_once('{') {
        None => (name_labels.to_owned(), Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| "unterminated label set".to_owned())?;
            (name.to_owned(), parse_labels(body)?)
        }
    };
    if !valid_name(&name) {
        return Err(format!("invalid metric name `{name}`"));
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        let mut key = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            key.push(c);
            chars.next();
        }
        if chars.next() != Some('=') || chars.next() != Some('"') {
            return Err(format!("malformed label near `{key}`"));
        }
        if !valid_name(&key) {
            return Err(format!("invalid label name `{key}`"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    _ => return Err("bad escape in label value".to_owned()),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err("unterminated label value".to_owned()),
            }
        }
        labels.push((key, value));
        match chars.next() {
            Some(',') => continue,
            None => return Ok(labels),
            Some(c) => return Err(format!("unexpected `{c}` after label value")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_contiguous_and_ordered() {
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_hi(i), bucket_lo(i + 1), "bucket {i}");
            assert!(bucket_lo(i) < bucket_hi(i), "bucket {i}");
        }
        for v in [0u64, 1, 3, 4, 5, 7, 8, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_lo(i) <= v, "v={v} i={i}");
            assert!(v < bucket_hi(i) || bucket_hi(i) == u64::MAX, "v={v} i={i}");
        }
    }

    #[test]
    fn quantile_error_within_25_percent() {
        // A log-sweep of values: every quantile midpoint must be within
        // 1.25× (either direction) of the exact recorded value.
        for &v in &[100u64, 999, 5_000, 123_456, 9_999_999, 3_000_000_000] {
            let h = LogHistogram::new();
            for _ in 0..100 {
                h.record(v);
            }
            let q = h.quantile(0.99) as f64;
            let ratio = (q / v as f64).max(v as f64 / q);
            assert!(ratio <= 1.25, "v={v} q={q} ratio={ratio}");
        }
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 7);
        }
        assert!(h.quantile(0.1) <= h.quantile(0.5));
        assert!(h.quantile(0.5) <= h.quantile(0.99));
        assert_eq!(LogHistogram::new().quantile(0.5), 0);
    }

    #[test]
    fn registry_handles_are_shared_and_rendered() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("phe_test_total", "a test counter");
        let b = reg.counter("phe_test_total", "a test counter");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = reg.gauge_with("phe_test_gauge", "a gauge", &[("slot", "default")]);
        g.set(0.5);
        let h = reg.duration_histogram("phe_test_seconds", "a histogram");
        h.record_duration(Duration::from_micros(128));
        let text = reg.render();
        assert!(text.contains("# TYPE phe_test_total counter"), "{text}");
        assert!(text.contains("phe_test_total 3"), "{text}");
        assert!(
            text.contains("phe_test_gauge{slot=\"default\"} 0.5"),
            "{text}"
        );
        assert!(text.contains("phe_test_seconds_count 1"), "{text}");
        let samples = parse_exposition(&text).expect("own exposition must parse");
        assert!(samples.iter().any(|s| s.name == "phe_test_seconds_bucket"
            && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")));
    }

    #[test]
    fn unregister_removes_instance_and_empty_family() {
        let reg = MetricsRegistry::new();
        let a = reg.gauge_with("phe_unreg_gauge", "g", &[("slot", "a")]);
        let b = reg.gauge_with("phe_unreg_gauge", "g", &[("slot", "b")]);
        a.set(1.0);
        b.set(2.0);
        assert!(reg.unregister_with("phe_unreg_gauge", &[("slot", "a")]));
        let text = reg.render();
        assert!(!text.contains("slot=\"a\""), "{text}");
        assert!(text.contains("phe_unreg_gauge{slot=\"b\"} 2"), "{text}");
        // Detached handle stays usable but invisible.
        a.set(9.0);
        assert!(!reg.render().contains("slot=\"a\""));
        // Removing the last instance drops the family entirely.
        assert!(reg.unregister_with("phe_unreg_gauge", &[("slot", "b")]));
        assert!(!reg.render().contains("phe_unreg_gauge"));
        // Unknown identities are a no-op.
        assert!(!reg.unregister_with("phe_unreg_gauge", &[("slot", "b")]));
        assert!(!reg.unregister_with("phe_never_registered", &[]));
        // Re-registering after removal starts a fresh instance.
        let c = reg.gauge_with("phe_unreg_gauge", "g", &[("slot", "a")]);
        assert_eq!(c.get(), 0.0);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_conflict_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("phe_conflict", "");
        let _ = reg.gauge("phe_conflict", "");
    }

    #[test]
    fn parse_rejects_malformed_text() {
        assert!(parse_exposition("no_type_decl 1\n").is_err());
        assert!(parse_exposition("# TYPE m counter\nm notanumber\n").is_err());
        assert!(parse_exposition("# TYPE m counter\nm{l=\"open 1\n").is_err());
        assert!(parse_exposition("# TYPE 9bad counter\n").is_err());
        assert!(parse_exposition("# TYPE m widget\n").is_err());
    }

    #[test]
    fn histogram_cumulative_is_monotone_and_complete() {
        let h = LogHistogram::new();
        for v in [1u64, 10, 100, 1000, 10_000] {
            h.record(v);
        }
        let cum = h.cumulative();
        assert!(cum.windows(2).all(|w| w[0].1 < w[1].1 && w[0].0 < w[1].0));
        assert_eq!(cum.last().unwrap().1, 5);
    }
}
