//! The metric-name catalog: every `phe_*` metric family the workspace
//! exposes, as a `pub const`.
//!
//! This module is the single source of truth for metric family names.
//! Instrumentation code must reference these constants instead of
//! spelling the string out; the `metric-catalog` pass of `phe-lint`
//! enforces that, and additionally cross-checks this catalog against
//! the metric table in `docs/ARCHITECTURE.md` — a name added in code
//! without a doc row (or the reverse) fails CI.
//!
//! Keep the constants sorted by name within each section, and keep the
//! doc comment of each constant in sync with the `help` string passed
//! at registration.

// --- request path -----------------------------------------------------

/// Admission-control decisions by `outcome` label: `admitted`,
/// `refused` (connection cap / per-client quota), or `shed` (overload).
pub const ADMISSION_TOTAL: &str = "phe_admission_total";

/// Estimate-cache lookups by `result` label (`hit` / `miss`), with a
/// `cache` label naming the cache instance.
pub const CACHE_REQUESTS_TOTAL: &str = "phe_cache_requests_total";

/// Protocol connections currently open (event-loop server).
pub const CONNECTIONS_OPEN: &str = "phe_connections_open";

/// CPU-heavy requests waiting for a dispatch worker right now.
pub const DISPATCH_QUEUE_DEPTH: &str = "phe_dispatch_queue_depth";

/// Requests rejected with an error.
pub const ERRORS_TOTAL: &str = "phe_errors_total";

/// Protocol requests by operation (`op` label).
pub const OPS_TOTAL: &str = "phe_ops_total";

/// Individual paths estimated across all batches.
pub const PATHS_TOTAL: &str = "phe_paths_total";

/// Per-request wall latency histogram (seconds).
pub const REQUEST_DURATION_SECONDS: &str = "phe_request_duration_seconds";

/// Protocol requests answered (a batch is one request).
pub const REQUESTS_TOTAL: &str = "phe_requests_total";

/// Per-stage pipeline latency histogram (`stage` label); the sink every
/// [`crate::span::stage`] guard reports into.
pub const STAGE_DURATION_SECONDS: &str = "phe_stage_duration_seconds";

/// Time since the serving process started, in seconds.
pub const UPTIME_SECONDS: &str = "phe_uptime_seconds";

// --- catalog maintenance ----------------------------------------------

/// Background delta applications by `event` label: `started`, `failed`,
/// or `superseded`.
pub const DELTAS_TOTAL: &str = "phe_deltas_total";

/// Mean absolute error rate of histogram estimates vs exact counts over
/// the paths sampled after the latest delta (`slot` label).
pub const DRIFT_MEAN_ABS_ERROR: &str = "phe_drift_mean_abs_error";

/// Worst q-error among the drift-sampled paths after the latest delta
/// (`slot` label).
pub const DRIFT_MAX_Q_ERROR: &str = "phe_drift_max_q_error";

/// Paths sampled for the latest drift measurement (`slot` label).
pub const DRIFT_SAMPLED_PATHS: &str = "phe_drift_sampled_paths";

/// Maintenance delta batches by queue `event` label: `enqueued`,
/// `compacted`, or `purged`.
pub const MAINTENANCE_BATCHES_TOTAL: &str = "phe_maintenance_batches_total";

/// Delta batches queued for a slot's next compacted publish
/// (`slot` label).
pub const MAINTENANCE_QUEUE_DEPTH: &str = "phe_maintenance_queue_depth";

/// Policy-triggered full rebuilds of maintained slots by `trigger`
/// label: `applied-deltas`, `drift`, or `forced`.
pub const MAINTENANCE_REBUILDS_TOTAL: &str = "phe_maintenance_rebuilds_total";

/// Background rebuilds by `event` label: `started`, `failed`, or
/// `superseded`.
pub const REBUILDS_TOTAL: &str = "phe_rebuilds_total";

/// Snapshot hot-swaps performed.
pub const SWAPS_TOTAL: &str = "phe_swaps_total";

/// Every family in the catalog, for exhaustiveness checks in tests.
pub const ALL: &[&str] = &[
    ADMISSION_TOTAL,
    CACHE_REQUESTS_TOTAL,
    CONNECTIONS_OPEN,
    DELTAS_TOTAL,
    DISPATCH_QUEUE_DEPTH,
    DRIFT_MAX_Q_ERROR,
    DRIFT_MEAN_ABS_ERROR,
    DRIFT_SAMPLED_PATHS,
    ERRORS_TOTAL,
    MAINTENANCE_BATCHES_TOTAL,
    MAINTENANCE_QUEUE_DEPTH,
    MAINTENANCE_REBUILDS_TOTAL,
    OPS_TOTAL,
    PATHS_TOTAL,
    REBUILDS_TOTAL,
    REQUEST_DURATION_SECONDS,
    REQUESTS_TOTAL,
    STAGE_DURATION_SECONDS,
    SWAPS_TOTAL,
    UPTIME_SECONDS,
];

#[cfg(test)]
mod tests {
    use super::ALL;

    #[test]
    fn all_is_sorted_unique_and_prefixed() {
        for pair in ALL.windows(2) {
            assert!(pair[0] < pair[1], "{} !< {}", pair[0], pair[1]);
        }
        for name in ALL {
            assert!(name.starts_with("phe_"), "{name}");
            assert!(
                name.bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_'),
                "{name}"
            );
        }
    }
}
