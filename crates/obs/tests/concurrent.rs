//! Concurrency contract of the metrics registry, property-tested: any
//! interleaving of recording threads and a concurrently rendering
//! reader must lose no updates and never observe a torn value — the
//! final counter/gauge/histogram state equals the sum of what the
//! threads wrote, and every intermediate render parses as valid
//! exposition text.

use std::sync::Arc;

use phe_obs::{parse_exposition, MetricsRegistry};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // N threads hammer one counter and one histogram through
    // independently-registered handles while the main thread renders;
    // totals must be exact.
    #[test]
    fn concurrent_record_and_read(
        threads in 1usize..5,
        per_thread in 1u64..300,
    ) {
        let reg = Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for t in 0..threads {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    // Each thread registers its own handles: identity is
                    // (name, labels), so they all share the same atomics.
                    let c = reg.counter("phe_prop_total", "prop counter");
                    let h = reg.histogram("phe_prop_values", "prop histogram");
                    let g = reg.gauge_with("phe_prop_gauge", "prop gauge",
                        &[("thread", &t.to_string())]);
                    for i in 0..per_thread {
                        c.inc();
                        h.record(i * 17 + t as u64);
                        g.set(i as f64);
                    }
                });
            }
            // Concurrent reads: every render must stay parseable and
            // monotone in the counter.
            let mut last = 0u64;
            for _ in 0..20 {
                let text = reg.render();
                let samples = parse_exposition(&text).expect("render must parse");
                if let Some(s) = samples.iter().find(|s| s.name == "phe_prop_total") {
                    let seen = s.value as u64;
                    prop_assert!(seen >= last, "counter went backwards: {seen} < {last}");
                    last = seen;
                }
            }
            Ok(())
        })?;

        let expect = threads as u64 * per_thread;
        let c = reg.counter("phe_prop_total", "prop counter");
        prop_assert_eq!(c.get(), expect);
        let h = reg.histogram("phe_prop_values", "prop histogram");
        prop_assert_eq!(h.count(), expect);
        let samples = parse_exposition(&reg.render()).expect("final render must parse");
        let total = samples.iter().find(|s| s.name == "phe_prop_total").unwrap();
        prop_assert_eq!(total.value as u64, expect);
        let hist_count = samples
            .iter()
            .find(|s| s.name == "phe_prop_values_count")
            .unwrap();
        prop_assert_eq!(hist_count.value as u64, expect);
        // The +Inf bucket agrees with _count.
        let inf = samples
            .iter()
            .find(|s| {
                s.name == "phe_prop_values_bucket"
                    && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
            })
            .unwrap();
        prop_assert_eq!(inf.value as u64, expect);
    }

    // Quantiles bracket the recorded range under concurrent writes.
    #[test]
    fn concurrent_quantiles_stay_in_range(
        threads in 1usize..4,
        lo in 1u64..1000,
        span in 1u64..100_000,
    ) {
        let reg = Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    let h = reg.histogram("phe_prop_q", "quantile histogram");
                    for v in lo..lo + span.min(500) {
                        h.record(v);
                    }
                });
            }
        });
        let h = reg.histogram("phe_prop_q", "quantile histogram");
        let hi = lo + span.min(500) - 1;
        let p50 = h.quantile(0.5);
        // Midpoint reads stay within the 1.25× bucket guarantee of the
        // recorded range.
        prop_assert!(p50 as f64 >= lo as f64 / 1.25, "p50={p50} lo={lo}");
        prop_assert!(p50 as f64 <= hi as f64 * 1.25, "p50={p50} hi={hi}");
    }
}
