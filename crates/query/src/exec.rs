//! Plan execution over `phe-pathenum` relations.

use phe_graph::{FixedBitSet, Graph};
use phe_pathenum::PathRelation;

use crate::plan::Plan;

/// What actually happened while executing a plan.
#[derive(Debug)]
pub struct ExecutionReport {
    /// The final relation (the query answer).
    pub result: PathRelation,
    /// Actual cardinality of every non-root materialized node, in
    /// execution (post-order) order. Comparing its sum against
    /// [`Plan::estimated_cost`] measures estimator quality *where it
    /// matters*.
    pub intermediate_cardinalities: Vec<u64>,
}

impl ExecutionReport {
    /// Total pairs materialized in non-root intermediates — the actual
    /// analogue of [`Plan::estimated_cost`].
    pub fn actual_cost(&self) -> u64 {
        self.intermediate_cardinalities.iter().sum()
    }
}

/// Executes a plan bottom-up, recording intermediate sizes.
pub fn execute(graph: &Graph, plan: &Plan) -> ExecutionReport {
    let mut scratch = FixedBitSet::new(graph.vertex_count());
    let mut intermediates = Vec::new();
    let result = run(graph, plan, &mut scratch, &mut intermediates, true);
    ExecutionReport {
        result,
        intermediate_cardinalities: intermediates,
    }
}

fn run(
    graph: &Graph,
    plan: &Plan,
    scratch: &mut FixedBitSet,
    intermediates: &mut Vec<u64>,
    is_root: bool,
) -> PathRelation {
    let rel = match plan {
        Plan::Leaf { label, .. } => PathRelation::from_label(graph, *label),
        Plan::Join { left, right, .. } => {
            let l = run(graph, left, scratch, intermediates, false);
            let r = run(graph, right, scratch, intermediates, false);
            l.join(&r, scratch)
        }
    };
    if !is_root {
        intermediates.push(rel.pair_count());
    }
    rel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::ExactOracle;
    use crate::optimizer::{enumerate_plans, optimize};
    use crate::parse::parse_path;
    use phe_graph::GraphBuilder;
    use phe_pathenum::SelectivityCatalog;

    fn graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edge_named(0, "a", 1);
        for t in 2..12 {
            b.add_edge_named(1, "b", t);
            b.add_edge_named(t, "c", 100);
        }
        b.build()
    }

    #[test]
    fn result_matches_direct_evaluation() {
        let g = graph();
        let catalog = SelectivityCatalog::compute(&g, 3);
        let oracle = ExactOracle::new(&catalog);
        let query = parse_path(&g, "a/b/c").unwrap();
        let plan = optimize(&query, &oracle);
        let report = execute(&g, &plan);
        let direct = PathRelation::evaluate(&g, &query);
        let a: Vec<_> = report.result.iter_pairs().collect();
        let b: Vec<_> = direct.iter_pairs().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn every_plan_shape_gives_the_same_answer() {
        let g = graph();
        let catalog = SelectivityCatalog::compute(&g, 3);
        let oracle = ExactOracle::new(&catalog);
        let query = parse_path(&g, "a/b/c").unwrap();
        let reference: Vec<_> = PathRelation::evaluate(&g, &query).iter_pairs().collect();
        for plan in enumerate_plans(&query, &oracle) {
            let report = execute(&g, &plan);
            let got: Vec<_> = report.result.iter_pairs().collect();
            assert_eq!(got, reference, "plan {plan} diverged");
        }
    }

    #[test]
    fn oracle_guided_plan_is_cheapest_in_actual_cost() {
        let g = graph();
        let catalog = SelectivityCatalog::compute(&g, 3);
        let oracle = ExactOracle::new(&catalog);
        let query = parse_path(&g, "a/b/c").unwrap();
        let chosen = optimize(&query, &oracle);
        let chosen_cost = execute(&g, &chosen).actual_cost();
        for plan in enumerate_plans(&query, &oracle) {
            let cost = execute(&g, &plan).actual_cost();
            assert!(
                chosen_cost <= cost,
                "oracle plan ({chosen_cost}) beaten by {plan} ({cost})"
            );
        }
    }

    #[test]
    fn intermediates_recorded_per_node() {
        let g = graph();
        let catalog = SelectivityCatalog::compute(&g, 2);
        let oracle = ExactOracle::new(&catalog);
        let query = parse_path(&g, "a/b").unwrap();
        let plan = optimize(&query, &oracle);
        let report = execute(&g, &plan);
        // Two leaves, root excluded.
        assert_eq!(report.intermediate_cardinalities.len(), 2);
        assert_eq!(report.actual_cost(), 1 + 10); // f(a)=1, f(b)=10
    }
}
