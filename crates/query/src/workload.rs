//! Query workload generation, stratified by true selectivity.
//!
//! Evaluating an estimator on a handful of hand-picked queries invites
//! bias; evaluating on *every* path weights the (typically huge)
//! zero-selectivity tail. This module generates workloads the way gMark
//! frames it: pick queries per *selectivity stratum*, so cheap, medium,
//! and expensive paths are all represented.

use std::collections::HashSet;

use phe_graph::{FollowMatrix, LabelId};
use phe_pathenum::SelectivityCatalog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::expr::{ExpandOptions, PathExpr};

/// A selectivity-stratified workload of label-path queries.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The queries, each a non-empty label path.
    pub queries: Vec<Vec<LabelId>>,
}

/// Builds a workload of (up to) `count` length-`len` queries with
/// non-zero selectivity, spread evenly across selectivity quartiles of
/// the catalog's length-`len` block. Deterministic per seed.
///
/// Returns fewer queries when the graph has fewer non-zero paths.
///
/// # Panics
/// Panics if `len` is 0 or exceeds the catalog's `k`.
pub fn stratified_workload(
    catalog: &SelectivityCatalog,
    len: usize,
    count: usize,
    seed: u64,
) -> Workload {
    let k = catalog.encoding().max_len();
    assert!(len >= 1 && len <= k, "length {len} outside 1..={k}");
    // Collect (canonical index, selectivity) for non-zero paths of the
    // requested length.
    let lo = catalog.encoding().offset_of_length(len);
    let hi = lo + catalog.encoding().label_count().pow(len as u32);
    let mut candidates: Vec<(usize, u64)> = (lo..hi)
        .filter_map(|i| {
            let f = catalog.selectivity_at(i);
            (f > 0).then_some((i, f))
        })
        .collect();
    if candidates.is_empty() {
        return Workload {
            queries: Vec::new(),
        };
    }
    candidates.sort_by_key(|&(i, f)| (f, i));

    // Quartile strata; draw round-robin so every stratum contributes.
    let strata = 4usize.min(candidates.len());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut picks: Vec<usize> = Vec::with_capacity(count.min(candidates.len()));
    let mut taken = vec![false; candidates.len()];
    let stratum_bounds: Vec<(usize, usize)> = (0..strata)
        .map(|s| {
            let start = s * candidates.len() / strata;
            let end = (s + 1) * candidates.len() / strata;
            (start, end)
        })
        .collect();
    let mut stratum = 0usize;
    let mut attempts = 0usize;
    while picks.len() < count.min(candidates.len()) && attempts < count * 64 {
        attempts += 1;
        let (start, end) = stratum_bounds[stratum % strata];
        stratum += 1;
        if start == end {
            continue;
        }
        let pos = rng.gen_range(start..end);
        if !taken[pos] {
            taken[pos] = true;
            picks.push(pos);
        }
    }
    // Fill any shortfall deterministically.
    for (pos, t) in taken.iter_mut().enumerate() {
        if picks.len() >= count.min(candidates.len()) {
            break;
        }
        if !*t {
            *t = true;
            picks.push(pos);
        }
    }

    let queries = picks
        .into_iter()
        .map(|pos| catalog.encoding().decode(candidates[pos].0))
        .collect();
    Workload { queries }
}

/// A workload of regular path expressions, stratified by **expansion
/// width** — how many concrete paths each expression denotes. Chain-only
/// workloads never exercise the expansion machinery; this one covers
/// branchy queries by construction.
#[derive(Debug, Clone)]
pub struct ExprWorkload {
    /// The expressions, grouped by stratum (all width-1 first, then 2–4,
    /// then 5–16), normalized.
    pub exprs: Vec<PathExpr>,
    /// Expansion width of each expression, parallel to `exprs`.
    pub widths: Vec<usize>,
}

/// The width strata `stratified_expr_workload` fills: single-path,
/// moderately branchy, and wide.
pub const EXPR_WIDTH_STRATA: [(usize, usize); 3] = [(1, 1), (2, 4), (5, 16)];

/// Builds an expression workload with (up to) `per_stratum` expressions
/// per width stratum (widths 1, 2–4, and 5–16), each guaranteed to have
/// at least one realized (non-zero-selectivity) branch. Expressions are
/// synthesized from the catalog's realized paths — alternations, optional
/// steps, single-step wildcards, and bounded repetitions — expanded with
/// `follow` pruning when a matrix is supplied, and deduplicated by
/// normalized cache key. Deterministic per seed.
///
/// Returns fewer expressions when the graph is too small to fill a
/// stratum.
pub fn stratified_expr_workload(
    catalog: &SelectivityCatalog,
    follow: Option<&FollowMatrix>,
    per_stratum: usize,
    seed: u64,
) -> ExprWorkload {
    let k = catalog.encoding().max_len();
    let label_count = catalog.encoding().label_count();
    let realized: Vec<Vec<LabelId>> = catalog
        .iter()
        .filter(|(_, f)| *f > 0)
        .map(|(p, _)| p)
        .collect();
    if realized.is_empty() || per_stratum == 0 {
        return ExprWorkload {
            exprs: Vec::new(),
            widths: Vec::new(),
        };
    }

    let mut opts = ExpandOptions::new(label_count, k);
    // Nothing wider than the top stratum is kept; cap accordingly.
    opts.max_paths = EXPR_WIDTH_STRATA[2].1 * 4;
    if let Some(follow) = follow {
        opts = opts.with_follow(follow);
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut strata: [Vec<(PathExpr, usize)>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut seen: HashSet<String> = HashSet::new();
    let pick = |rng: &mut StdRng| realized[rng.gen_range(0..realized.len())].clone();

    let mut attempts = 0usize;
    while strata.iter().any(|s| s.len() < per_stratum) && attempts < per_stratum * 600 {
        attempts += 1;
        let candidate = match rng.gen_range(0..7u32) {
            // A plain chain — the width-1 backbone.
            0 => PathExpr::path(&pick(&mut rng)),
            // Alternation of 2–6 realized chains.
            1 => {
                let n = rng.gen_range(2..7usize);
                PathExpr::Alt((0..n).map(|_| PathExpr::path(&pick(&mut rng))).collect())
            }
            // A chain with its last step optional.
            2 => {
                let chain = pick(&mut rng);
                let (last, prefix) = chain.split_last().expect("realized paths are non-empty");
                let mut parts: Vec<PathExpr> =
                    prefix.iter().copied().map(PathExpr::Label).collect();
                parts.push(PathExpr::Repeat {
                    inner: Box::new(PathExpr::Label(*last)),
                    min: 0,
                    max: 1,
                });
                PathExpr::Concat(parts)
            }
            // A chain with one step replaced by the wildcard.
            3 => {
                let chain = pick(&mut rng);
                let at = rng.gen_range(0..chain.len());
                PathExpr::Concat(
                    chain
                        .iter()
                        .enumerate()
                        .map(|(i, l)| {
                            if i == at {
                                PathExpr::Wildcard
                            } else {
                                PathExpr::Label(*l)
                            }
                        })
                        .collect(),
                )
            }
            // Alternating heads into a shared continuation: (a|b)/rest.
            4 => {
                let chain = pick(&mut rng);
                let other = pick(&mut rng);
                let mut parts = vec![PathExpr::Alt(vec![
                    PathExpr::Label(chain[0]),
                    PathExpr::Label(other[0]),
                ])];
                parts.extend(chain[1..].iter().copied().map(PathExpr::Label));
                PathExpr::Concat(parts)
            }
            // Bounded repetition of a realized single step.
            5 => {
                let chain = pick(&mut rng);
                let max = rng.gen_range(2..=k.clamp(2, 4)) as u8;
                PathExpr::Repeat {
                    inner: Box::new(PathExpr::Label(chain[0])),
                    min: 1,
                    max,
                }
            }
            // Two wildcard steps — the wide-stratum generator (width up
            // to |L|² before pruning).
            _ => {
                let chain = pick(&mut rng);
                let parts: Vec<PathExpr> = if chain.len() >= 2 {
                    let hole_a = rng.gen_range(0..chain.len());
                    let mut hole_b = rng.gen_range(0..chain.len());
                    if hole_b == hole_a {
                        hole_b = (hole_a + 1) % chain.len();
                    }
                    chain
                        .iter()
                        .enumerate()
                        .map(|(i, l)| {
                            if i == hole_a || i == hole_b {
                                PathExpr::Wildcard
                            } else {
                                PathExpr::Label(*l)
                            }
                        })
                        .collect()
                } else {
                    vec![PathExpr::Wildcard, PathExpr::Wildcard]
                };
                PathExpr::Concat(parts)
            }
        };
        let candidate = candidate.normalize();
        let key = candidate.cache_key();
        if seen.contains(&key) {
            continue;
        }
        let Ok(expansion) = candidate.expand(&opts) else {
            continue;
        };
        let width = expansion.paths.len();
        let Some(bucket) = EXPR_WIDTH_STRATA
            .iter()
            .position(|&(lo, hi)| (lo..=hi).contains(&width))
        else {
            continue;
        };
        if strata[bucket].len() >= per_stratum {
            continue;
        }
        // Accuracy runs need something to measure: at least one branch
        // must actually occur in the graph.
        if !expansion
            .paths
            .iter()
            .any(|p| catalog.selectivity(p.as_label_ids()) > 0)
        {
            continue;
        }
        seen.insert(key);
        strata[bucket].push((candidate, width));
    }

    let mut exprs = Vec::new();
    let mut widths = Vec::new();
    for stratum in strata {
        for (expr, width) in stratum {
            exprs.push(expr);
            widths.push(width);
        }
    }
    ExprWorkload { exprs, widths }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phe_datasets::{erdos_renyi, LabelDistribution};

    fn catalog() -> SelectivityCatalog {
        let g = erdos_renyi(80, 900, 4, LabelDistribution::Zipf { exponent: 1.0 }, 3);
        SelectivityCatalog::compute(&g, 3)
    }

    #[test]
    fn respects_count_and_length() {
        let c = catalog();
        let w = stratified_workload(&c, 3, 20, 7);
        assert_eq!(w.queries.len(), 20);
        for q in &w.queries {
            assert_eq!(q.len(), 3);
            assert!(c.selectivity(q) > 0, "zero-selectivity query {q:?}");
        }
    }

    #[test]
    fn queries_are_distinct() {
        let c = catalog();
        let w = stratified_workload(&c, 2, 12, 5);
        let mut qs = w.queries.clone();
        qs.sort();
        qs.dedup();
        assert_eq!(qs.len(), w.queries.len());
    }

    #[test]
    fn covers_selectivity_range() {
        let c = catalog();
        let w = stratified_workload(&c, 3, 24, 11);
        let sels: Vec<u64> = w.queries.iter().map(|q| c.selectivity(q)).collect();
        let min = *sels.iter().min().unwrap();
        let max = *sels.iter().max().unwrap();
        // Stratification must reach both tails: a meaningful spread.
        assert!(max >= min * 4, "workload too homogeneous: {min}..{max}");
    }

    #[test]
    fn deterministic_per_seed() {
        let c = catalog();
        assert_eq!(
            stratified_workload(&c, 2, 10, 9).queries,
            stratified_workload(&c, 2, 10, 9).queries
        );
        assert_ne!(
            stratified_workload(&c, 2, 10, 9).queries,
            stratified_workload(&c, 2, 10, 10).queries
        );
    }

    #[test]
    fn expr_workload_fills_width_strata() {
        let c = catalog();
        let w = stratified_expr_workload(&c, None, 4, 17);
        assert_eq!(w.exprs.len(), w.widths.len());
        assert_eq!(w.exprs.len(), 12, "all three strata filled");
        for (lo, hi) in EXPR_WIDTH_STRATA {
            let in_stratum = w.widths.iter().filter(|&&x| (lo..=hi).contains(&x)).count();
            assert_eq!(in_stratum, 4, "stratum {lo}..={hi}: {:?}", w.widths);
        }
        // Every expression has at least one realized branch, and the
        // recorded width matches a fresh expansion.
        let opts = ExpandOptions::new(c.encoding().label_count(), c.encoding().max_len());
        for (expr, width) in w.exprs.iter().zip(&w.widths) {
            let x = expr
                .expand(&ExpandOptions {
                    max_paths: EXPR_WIDTH_STRATA[2].1 * 4,
                    ..opts
                })
                .unwrap();
            assert_eq!(x.paths.len(), *width);
            assert!(x.paths.iter().any(|p| c.selectivity(p.as_label_ids()) > 0));
        }
    }

    #[test]
    fn expr_workload_is_deterministic_and_deduplicated() {
        let c = catalog();
        let a = stratified_expr_workload(&c, None, 3, 9);
        let b = stratified_expr_workload(&c, None, 3, 9);
        assert_eq!(a.exprs, b.exprs);
        let keys: Vec<String> = a.exprs.iter().map(PathExpr::cache_key).collect();
        let mut dedup = keys.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len(), "cache keys must be distinct");
        assert_ne!(
            a.exprs,
            stratified_expr_workload(&c, None, 3, 10).exprs,
            "seed must matter"
        );
    }

    #[test]
    fn expr_workload_respects_follow_pruning() {
        let g = erdos_renyi(80, 900, 4, LabelDistribution::Zipf { exponent: 1.0 }, 3);
        let c = SelectivityCatalog::compute(&g, 3);
        let follow = FollowMatrix::from_graph(&g);
        let w = stratified_expr_workload(&c, Some(&follow), 3, 21);
        assert!(!w.exprs.is_empty());
        // With pruning active, recorded widths reflect the pruned
        // expansion.
        let opts = ExpandOptions {
            max_paths: EXPR_WIDTH_STRATA[2].1 * 4,
            ..ExpandOptions::new(c.encoding().label_count(), c.encoding().max_len())
        }
        .with_follow(&follow);
        for (expr, width) in w.exprs.iter().zip(&w.widths) {
            assert_eq!(expr.expand(&opts).unwrap().paths.len(), *width);
        }
    }

    #[test]
    fn shortfall_returns_what_exists() {
        let c = catalog();
        // Request far more than exist.
        let w = stratified_workload(&c, 1, 1000, 2);
        assert!(w.queries.len() <= 4);
        assert!(!w.queries.is_empty());
    }
}
