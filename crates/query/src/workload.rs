//! Query workload generation, stratified by true selectivity.
//!
//! Evaluating an estimator on a handful of hand-picked queries invites
//! bias; evaluating on *every* path weights the (typically huge)
//! zero-selectivity tail. This module generates workloads the way gMark
//! frames it: pick queries per *selectivity stratum*, so cheap, medium,
//! and expensive paths are all represented.

use phe_graph::LabelId;
use phe_pathenum::SelectivityCatalog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A selectivity-stratified workload of label-path queries.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The queries, each a non-empty label path.
    pub queries: Vec<Vec<LabelId>>,
}

/// Builds a workload of (up to) `count` length-`len` queries with
/// non-zero selectivity, spread evenly across selectivity quartiles of
/// the catalog's length-`len` block. Deterministic per seed.
///
/// Returns fewer queries when the graph has fewer non-zero paths.
///
/// # Panics
/// Panics if `len` is 0 or exceeds the catalog's `k`.
pub fn stratified_workload(
    catalog: &SelectivityCatalog,
    len: usize,
    count: usize,
    seed: u64,
) -> Workload {
    let k = catalog.encoding().max_len();
    assert!(len >= 1 && len <= k, "length {len} outside 1..={k}");
    // Collect (canonical index, selectivity) for non-zero paths of the
    // requested length.
    let lo = catalog.encoding().offset_of_length(len);
    let hi = lo + catalog.encoding().label_count().pow(len as u32);
    let mut candidates: Vec<(usize, u64)> = (lo..hi)
        .filter_map(|i| {
            let f = catalog.selectivity_at(i);
            (f > 0).then_some((i, f))
        })
        .collect();
    if candidates.is_empty() {
        return Workload {
            queries: Vec::new(),
        };
    }
    candidates.sort_by_key(|&(i, f)| (f, i));

    // Quartile strata; draw round-robin so every stratum contributes.
    let strata = 4usize.min(candidates.len());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut picks: Vec<usize> = Vec::with_capacity(count.min(candidates.len()));
    let mut taken = vec![false; candidates.len()];
    let stratum_bounds: Vec<(usize, usize)> = (0..strata)
        .map(|s| {
            let start = s * candidates.len() / strata;
            let end = (s + 1) * candidates.len() / strata;
            (start, end)
        })
        .collect();
    let mut stratum = 0usize;
    let mut attempts = 0usize;
    while picks.len() < count.min(candidates.len()) && attempts < count * 64 {
        attempts += 1;
        let (start, end) = stratum_bounds[stratum % strata];
        stratum += 1;
        if start == end {
            continue;
        }
        let pos = rng.gen_range(start..end);
        if !taken[pos] {
            taken[pos] = true;
            picks.push(pos);
        }
    }
    // Fill any shortfall deterministically.
    for (pos, t) in taken.iter_mut().enumerate() {
        if picks.len() >= count.min(candidates.len()) {
            break;
        }
        if !*t {
            *t = true;
            picks.push(pos);
        }
    }

    let queries = picks
        .into_iter()
        .map(|pos| catalog.encoding().decode(candidates[pos].0))
        .collect();
    Workload { queries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phe_datasets::{erdos_renyi, LabelDistribution};

    fn catalog() -> SelectivityCatalog {
        let g = erdos_renyi(80, 900, 4, LabelDistribution::Zipf { exponent: 1.0 }, 3);
        SelectivityCatalog::compute(&g, 3)
    }

    #[test]
    fn respects_count_and_length() {
        let c = catalog();
        let w = stratified_workload(&c, 3, 20, 7);
        assert_eq!(w.queries.len(), 20);
        for q in &w.queries {
            assert_eq!(q.len(), 3);
            assert!(c.selectivity(q) > 0, "zero-selectivity query {q:?}");
        }
    }

    #[test]
    fn queries_are_distinct() {
        let c = catalog();
        let w = stratified_workload(&c, 2, 12, 5);
        let mut qs = w.queries.clone();
        qs.sort();
        qs.dedup();
        assert_eq!(qs.len(), w.queries.len());
    }

    #[test]
    fn covers_selectivity_range() {
        let c = catalog();
        let w = stratified_workload(&c, 3, 24, 11);
        let sels: Vec<u64> = w.queries.iter().map(|q| c.selectivity(q)).collect();
        let min = *sels.iter().min().unwrap();
        let max = *sels.iter().max().unwrap();
        // Stratification must reach both tails: a meaningful spread.
        assert!(max >= min * 4, "workload too homogeneous: {min}..{max}");
    }

    #[test]
    fn deterministic_per_seed() {
        let c = catalog();
        assert_eq!(
            stratified_workload(&c, 2, 10, 9).queries,
            stratified_workload(&c, 2, 10, 9).queries
        );
        assert_ne!(
            stratified_workload(&c, 2, 10, 9).queries,
            stratified_workload(&c, 2, 10, 10).queries
        );
    }

    #[test]
    fn shortfall_returns_what_exists() {
        let c = catalog();
        // Request far more than exist.
        let w = stratified_workload(&c, 1, 1000, 2);
        assert!(w.queries.len() <= 4);
        assert!(!w.queries.is_empty());
    }
}
