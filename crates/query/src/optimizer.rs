//! Join-order optimization by dynamic programming over split points.
//!
//! Path queries join along a chain, so the plan space is the set of
//! binary trees over a contiguous range — the matrix-chain problem. The
//! DP finds the tree minimizing [`crate::plan::Plan::estimated_cost`]
//! under a given estimator in `O(m³)` for `m` steps (`m ≤ 8` here, so
//! this is instant; the interesting question is what the *estimates* do
//! to plan quality).

use phe_graph::LabelId;

use crate::estimate::CardinalityEstimator;
use crate::expr::{ExpandError, PathExpr};
use crate::plan::{ExprPlan, Plan};

/// Builds the minimum-estimated-cost join tree for `query`.
///
/// # Panics
/// Panics on an empty query (parse first — [`crate::parse_path`] rejects
/// those).
pub fn optimize(query: &[LabelId], estimator: &dyn CardinalityEstimator) -> Plan {
    assert!(!query.is_empty(), "cannot optimize an empty query");
    let m = query.len();

    // est[i][j] = estimated cardinality of steps i..j (j exclusive).
    let mut est = vec![vec![0.0f64; m + 1]; m];
    for i in 0..m {
        for j in (i + 1)..=m {
            est[i][j] = estimator.estimate(&query[i..j]).max(0.0);
        }
    }

    // cost[i][j] = minimal total cost of materializing steps i..j;
    // split[i][j] = the split point achieving it.
    let mut cost = vec![vec![0.0f64; m + 1]; m];
    let mut split = vec![vec![0usize; m + 1]; m];
    for len in 2..=m {
        for i in 0..=(m - len) {
            let j = i + len;
            let mut best = f64::INFINITY;
            let mut best_s = i + 1;
            for s in (i + 1)..j {
                // Materialize both inputs, plus whatever they cost to build.
                let c = cost[i][s] + cost[s][j] + est[i][s] + est[s][j];
                if c < best {
                    best = c;
                    best_s = s;
                }
            }
            cost[i][j] = best;
            split[i][j] = best_s;
        }
    }

    build_plan(query, &est, &split, 0, m)
}

fn build_plan(
    query: &[LabelId],
    est: &[Vec<f64>],
    split: &[Vec<usize>],
    i: usize,
    j: usize,
) -> Plan {
    if j - i == 1 {
        return Plan::Leaf {
            label: query[i],
            estimated: est[i][j],
        };
    }
    let s = split[i][j];
    Plan::Join {
        left: Box::new(build_plan(query, est, split, i, s)),
        right: Box::new(build_plan(query, est, split, s, j)),
        estimated: est[i][j],
    }
}

/// Plans a regular path expression by pushing alternation through
/// join-order enumeration: the expression expands to its concrete
/// branches (follow-matrix pruned when the estimator carries one), each
/// branch — a plain chain — runs through the matrix-chain DP
/// independently, and the branch plans are unioned. Branch populations
/// are disjoint by construction, so the union's estimate is the sum of
/// branch estimates.
///
/// # Errors
/// [`ExpandError::TooManyPaths`] when the expression expands past its
/// path bound, and [`ExpandError::EmptyExpansion`] when it denotes no
/// estimable path at all (every branch pruned or over-length) — a
/// data-dependent condition the caller cannot always predict.
pub fn optimize_expr(
    expr: &PathExpr,
    estimator: &dyn CardinalityEstimator,
) -> Result<ExprPlan, ExpandError> {
    let estimate = estimator.estimate_expr(expr)?;
    if estimate.branches.is_empty() {
        return Err(ExpandError::EmptyExpansion);
    }
    let branches = estimate
        .branches
        .iter()
        .map(|(path, _)| optimize(path.as_label_ids(), estimator))
        .collect();
    Ok(ExprPlan {
        branches,
        estimated: estimate.total,
        pruned: estimate.pruned,
        truncated: estimate.truncated,
    })
}

/// Enumerates every binary join tree over the query (Catalan-many) with
/// its estimated cost — used by tests and the plan-quality experiment to
/// rank the optimizer's choice among all alternatives.
pub fn enumerate_plans(query: &[LabelId], estimator: &dyn CardinalityEstimator) -> Vec<Plan> {
    fn rec(
        query: &[LabelId],
        estimator: &dyn CardinalityEstimator,
        i: usize,
        j: usize,
    ) -> Vec<Plan> {
        if j - i == 1 {
            return vec![Plan::Leaf {
                label: query[i],
                estimated: estimator.estimate(&query[i..j]).max(0.0),
            }];
        }
        let mut out = Vec::new();
        let node_est = estimator.estimate(&query[i..j]).max(0.0);
        for s in (i + 1)..j {
            for l in rec(query, estimator, i, s) {
                for r in rec(query, estimator, s, j) {
                    out.push(Plan::Join {
                        left: Box::new(l.clone()),
                        right: Box::new(r.clone()),
                        estimated: node_est,
                    });
                }
            }
        }
        out
    }
    rec(query, estimator, 0, query.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::ExactOracle;
    use phe_graph::GraphBuilder;
    use phe_pathenum::SelectivityCatalog;

    /// A graph where a/b is tiny but b/c is huge, so the optimizer should
    /// join a/b first in the query a/b/c.
    fn skewed_graph() -> phe_graph::Graph {
        let mut b = GraphBuilder::new();
        // a: one edge into the b-fan. b: a hub fan-out. c: fan continues.
        b.add_edge_named(0, "a", 1);
        for t in 2..22 {
            b.add_edge_named(1, "b", t);
            for w in 0..5 {
                b.add_edge_named(t, "c", 100 + (t * 5 + w));
            }
        }
        b.build()
    }

    #[test]
    fn optimizer_prefers_small_intermediates() {
        let g = skewed_graph();
        let catalog = SelectivityCatalog::compute(&g, 3);
        let oracle = ExactOracle::new(&catalog);
        let query = crate::parse::parse_path(&g, "a/b/c").unwrap();
        let plan = optimize(&query, &oracle);
        // f(a/b) = 20, f(b/c) = 100: best plan is (a ⋈ b) ⋈ c.
        match &plan {
            Plan::Join { left, .. } => {
                assert_eq!(left.step_count(), 2, "expected (a⋈b) first: {plan}");
            }
            Plan::Leaf { .. } => panic!("three steps cannot be a leaf"),
        }
    }

    #[test]
    fn dp_matches_exhaustive_enumeration() {
        let g = skewed_graph();
        let catalog = SelectivityCatalog::compute(&g, 3);
        let oracle = ExactOracle::new(&catalog);
        let query = crate::parse::parse_path(&g, "a/b/c").unwrap();
        let chosen = optimize(&query, &oracle);
        let best_by_enum = enumerate_plans(&query, &oracle)
            .into_iter()
            .map(|p| p.estimated_cost())
            .fold(f64::INFINITY, f64::min);
        assert!((chosen.estimated_cost() - best_by_enum).abs() < 1e-9);
    }

    #[test]
    fn single_step_is_a_leaf() {
        let g = skewed_graph();
        let catalog = SelectivityCatalog::compute(&g, 1);
        let oracle = ExactOracle::new(&catalog);
        let plan = optimize(&[phe_graph::LabelId(0)], &oracle);
        assert!(matches!(plan, Plan::Leaf { .. }));
        assert_eq!(plan.estimated_cost(), 0.0);
    }

    #[test]
    fn plan_covers_query_in_order() {
        let g = skewed_graph();
        let catalog = SelectivityCatalog::compute(&g, 3);
        let oracle = ExactOracle::new(&catalog);
        let query = crate::parse::parse_path(&g, "c/b/a").unwrap();
        let plan = optimize(&query, &oracle);
        assert_eq!(plan.labels(), query);
    }

    #[test]
    fn optimize_expr_unions_per_branch_plans() {
        let g = skewed_graph();
        let catalog = SelectivityCatalog::compute(&g, 3);
        let oracle = ExactOracle::new(&catalog);
        let expr = crate::parse::parse_expr(&g, "(a|b)/c | a/b/c").unwrap();
        let plan = optimize_expr(&expr, &oracle).unwrap();
        // Branches: a/c, b/c, a/b/c — each a chain plan in canonical order.
        assert_eq!(plan.width(), 3);
        assert_eq!(plan.branches[0].labels().len(), 2);
        assert_eq!(plan.branches[2].labels().len(), 3);
        // The three-step branch is join-ordered exactly as optimize() would.
        let chain = crate::parse::parse_path(&g, "a/b/c").unwrap();
        assert_eq!(plan.branches[2], optimize(&chain, &oracle));
        // Union totals are branch sums.
        let direct = oracle.estimate_expr(&expr).unwrap();
        assert_eq!(plan.estimated.to_bits(), direct.total.to_bits());
        let explain = plan.explain();
        assert!(explain.contains("union of 3 branch(es)"), "{explain}");
    }

    #[test]
    fn optimize_expr_reports_empty_expansions_as_errors() {
        let g = skewed_graph();
        let catalog = SelectivityCatalog::compute(&g, 3);
        let oracle = ExactOracle::new(&catalog);
        // Every branch exceeds the oracle's max_len of 3.
        let expr = crate::parse::parse_expr(&g, "a/b/c/a").unwrap();
        assert_eq!(
            optimize_expr(&expr, &oracle),
            Err(crate::expr::ExpandError::EmptyExpansion)
        );
    }

    #[test]
    fn enumerate_counts_catalan() {
        let g = skewed_graph();
        let catalog = SelectivityCatalog::compute(&g, 3);
        let oracle = ExactOracle::new(&catalog);
        let query = crate::parse::parse_path(&g, "a/b/c").unwrap();
        // C(2) = 2 trees over 3 leaves.
        assert_eq!(enumerate_plans(&query, &oracle).len(), 2);
    }
}
