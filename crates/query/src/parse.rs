//! Parsing regular path expressions over label names, with byte-spanned
//! errors.
//!
//! The grammar (whitespace insignificant; `/` between steps optional when
//! the boundary is unambiguous, so `knows/likes`, `(a|b)c`, and `a b` all
//! parse):
//!
//! ```text
//! expr    := alt
//! alt     := concat ('|' concat)*
//! concat  := unit (('/')* unit)*
//! unit    := atom ('?' | '{' INT (',' INT)? '}')*
//! atom    := LABEL | '.' | '(' expr ')'
//! LABEL   := any run of characters outside ()|?{},/. and whitespace
//! ```
//!
//! Every [`QueryError`] carries the byte [`Span`] of the offending input;
//! [`QueryError::snippet`] renders the caret-underlined excerpt the CLI
//! prints. Label names resolve through a [`LabelResolver`] — a graph, a
//! bare interner, or a snapshot's name list — so the same parser serves
//! the local CLI and the remote serving tier.

use std::fmt;

use phe_core::MAX_K;
use phe_graph::{Graph, LabelId, LabelInterner};

use crate::expr::PathExpr;

/// Anything that can turn a label name into an id.
pub trait LabelResolver {
    /// Resolves `name`, or `None` when the label is unknown.
    fn resolve_label(&self, name: &str) -> Option<LabelId>;
}

impl LabelResolver for Graph {
    fn resolve_label(&self, name: &str) -> Option<LabelId> {
        self.labels().get(name)
    }
}

impl LabelResolver for LabelInterner {
    fn resolve_label(&self, name: &str) -> Option<LabelId> {
        self.get(name)
    }
}

/// Positional name list (index = label id) — how snapshots carry labels.
impl LabelResolver for [String] {
    fn resolve_label(&self, name: &str) -> Option<LabelId> {
        self.iter()
            .position(|n| n == name)
            .map(|i| LabelId(i as u16))
    }
}

/// A half-open byte range into the source expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First byte of the offending region.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// The span `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }
}

/// What went wrong while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryErrorKind {
    /// The expression was empty (or all whitespace/separators).
    EmptyQuery,
    /// A label name not present in the graph/statistics.
    UnknownLabel(String),
    /// More steps than the engine's `MAX_K` (concrete chains only;
    /// expression expansion handles the budget per concrete path).
    TooLong {
        /// Steps in the expression.
        len: usize,
        /// The supported maximum.
        max: usize,
    },
    /// A character outside the grammar (stray `)`, `,` outside braces, …).
    UnexpectedChar(char),
    /// The expression ended where more input was required.
    UnexpectedEnd,
    /// An opening `(` without its `)`.
    UnclosedParen,
    /// An empty group `()` or alternation branch (`a||b`, `|a`).
    EmptyGroup,
    /// A malformed or out-of-range repetition `{m,n}`.
    BadRepeat(String),
    /// The expression is valid but not a single concrete path — returned
    /// by [`parse_path`], whose callers expect a plain chain.
    NotConcrete,
}

/// A parse failure with the byte span it points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryError {
    /// The failure.
    pub kind: QueryErrorKind,
    /// Where in the source it happened.
    pub span: Span,
}

impl QueryError {
    fn new(kind: QueryErrorKind, span: Span) -> QueryError {
        QueryError { kind, span }
    }

    /// Renders the source with a caret underline below the offending
    /// span — what the CLI prints under its error line:
    ///
    /// ```text
    /// knows/hates
    ///       ^^^^^
    /// ```
    pub fn snippet(&self, source: &str) -> String {
        let prefix_chars = source
            .get(..self.span.start.min(source.len()))
            .map_or(0, |s| s.chars().count());
        let span_chars = source
            .get(self.span.start.min(source.len())..self.span.end.min(source.len()))
            .map_or(0, |s| s.chars().count())
            .max(1);
        format!(
            "{source}\n{}{}",
            " ".repeat(prefix_chars),
            "^".repeat(span_chars)
        )
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            QueryErrorKind::EmptyQuery => write!(f, "empty path expression"),
            QueryErrorKind::UnknownLabel(name) => write!(f, "unknown edge label {name:?}"),
            QueryErrorKind::TooLong { len, max } => {
                write!(f, "path expression has {len} steps; maximum is {max}")
            }
            QueryErrorKind::UnexpectedChar(c) => {
                write!(f, "unexpected character {c:?} in path expression")
            }
            QueryErrorKind::UnexpectedEnd => write!(f, "unexpected end of path expression"),
            QueryErrorKind::UnclosedParen => write!(f, "unclosed \"(\""),
            QueryErrorKind::EmptyGroup => write!(f, "empty group or alternation branch"),
            QueryErrorKind::BadRepeat(reason) => write!(f, "bad repetition: {reason}"),
            QueryErrorKind::NotConcrete => write!(
                f,
                "expression is not a single concrete path (alternation, wildcard, \
                 and repetition need the expression API)"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// Parses a regular path expression, resolving label names through
/// `resolver`. See the module docs for the grammar.
///
/// # Errors
/// A spanned [`QueryError`] pointing at the offending bytes.
pub fn parse_expr<R: LabelResolver + ?Sized>(
    resolver: &R,
    input: &str,
) -> Result<PathExpr, QueryError> {
    let tokens = lex(input)?;
    let mut parser = Parser {
        resolver: &|name| resolver.resolve_label(name),
        tokens: &tokens,
        pos: 0,
        input,
    };
    let expr = parser.alt()?;
    match parser.peek() {
        None => Ok(expr),
        Some(t) => Err(QueryError::new(
            match t.kind {
                TokKind::RParen => QueryErrorKind::UnexpectedChar(')'),
                _ => QueryErrorKind::UnexpectedChar(t.first_char),
            },
            t.span,
        )),
    }
}

/// Parses a `/`-separated **concrete** path (e.g. `knows/likes/knows`)
/// into label ids — the pre-expression entry point, kept as a thin
/// wrapper: the full grammar is accepted, but anything that does not
/// denote exactly one chain is refused with
/// [`QueryErrorKind::NotConcrete`].
pub fn parse_path(graph: &Graph, expr: &str) -> Result<Vec<LabelId>, QueryError> {
    let parsed = parse_expr(graph, expr)?;
    let whole = Span::new(0, expr.len());
    let labels = parsed
        .as_concrete()
        .ok_or_else(|| QueryError::new(QueryErrorKind::NotConcrete, whole))?;
    if labels.len() > MAX_K {
        return Err(QueryError::new(
            QueryErrorKind::TooLong {
                len: labels.len(),
                max: MAX_K,
            },
            whole,
        ));
    }
    Ok(labels)
}

// ------------------------------------------------------------------ lexer

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TokKind {
    Ident,
    Dot,
    Slash,
    Pipe,
    Question,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
}

#[derive(Debug, Clone, Copy)]
struct Tok {
    kind: TokKind,
    span: Span,
    first_char: char,
}

/// Characters with grammatical meaning; anything else (minus whitespace)
/// is label material.
fn special(c: char) -> Option<TokKind> {
    Some(match c {
        '.' => TokKind::Dot,
        '/' => TokKind::Slash,
        '|' => TokKind::Pipe,
        '?' => TokKind::Question,
        '(' => TokKind::LParen,
        ')' => TokKind::RParen,
        '{' => TokKind::LBrace,
        '}' => TokKind::RBrace,
        ',' => TokKind::Comma,
        _ => return None,
    })
}

fn lex(input: &str) -> Result<Vec<Tok>, QueryError> {
    let mut tokens = Vec::new();
    let mut chars = input.char_indices().peekable();
    while let Some(&(start, c)) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            continue;
        }
        if let Some(kind) = special(c) {
            chars.next();
            tokens.push(Tok {
                kind,
                span: Span::new(start, start + c.len_utf8()),
                first_char: c,
            });
            continue;
        }
        // Label run.
        let mut end = start;
        while let Some(&(i, c)) = chars.peek() {
            if c.is_whitespace() || special(c).is_some() {
                break;
            }
            end = i + c.len_utf8();
            chars.next();
        }
        tokens.push(Tok {
            kind: TokKind::Ident,
            span: Span::new(start, end),
            first_char: c,
        });
    }
    Ok(tokens)
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    resolver: &'a dyn Fn(&str) -> Option<LabelId>,
    tokens: &'a [Tok],
    pos: usize,
    input: &'a str,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn end_span(&self) -> Span {
        Span::new(self.input.len(), self.input.len())
    }

    fn alt(&mut self) -> Result<PathExpr, QueryError> {
        let mut branches = vec![self.concat()?];
        while matches!(self.peek(), Some(t) if t.kind == TokKind::Pipe) {
            self.pos += 1;
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            PathExpr::Alt(branches)
        })
    }

    fn concat(&mut self) -> Result<PathExpr, QueryError> {
        let mut parts = Vec::new();
        loop {
            // Separator slashes are skippable (compat: `a//b`, `/a/`).
            while matches!(self.peek(), Some(t) if t.kind == TokKind::Slash) {
                self.pos += 1;
            }
            match self.peek() {
                Some(t) if matches!(t.kind, TokKind::Ident | TokKind::Dot | TokKind::LParen) => {
                    parts.push(self.unit()?);
                }
                _ => break,
            }
        }
        if parts.is_empty() {
            // Distinguish a wholly empty input from an empty branch.
            return Err(match self.peek() {
                None if self.tokens.iter().all(|t| t.kind == TokKind::Slash) => {
                    QueryError::new(QueryErrorKind::EmptyQuery, Span::new(0, self.input.len()))
                }
                None => QueryError::new(QueryErrorKind::UnexpectedEnd, self.end_span()),
                Some(t) if matches!(t.kind, TokKind::Pipe | TokKind::RParen) => {
                    QueryError::new(QueryErrorKind::EmptyGroup, t.span)
                }
                Some(t) => QueryError::new(QueryErrorKind::UnexpectedChar(t.first_char), t.span),
            });
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            PathExpr::Concat(parts)
        })
    }

    fn unit(&mut self) -> Result<PathExpr, QueryError> {
        let mut expr = self.atom()?;
        loop {
            match self.peek() {
                Some(t) if t.kind == TokKind::Question => {
                    self.pos += 1;
                    expr = PathExpr::Repeat {
                        inner: Box::new(expr),
                        min: 0,
                        max: 1,
                    };
                }
                Some(t) if t.kind == TokKind::LBrace => {
                    let open = t.span;
                    self.pos += 1;
                    let (min, max, close) = self.repeat_bounds(open)?;
                    let span = Span::new(open.start, close.end);
                    if max == 0 {
                        return Err(QueryError::new(
                            QueryErrorKind::BadRepeat("maximum repetition is 0".into()),
                            span,
                        ));
                    }
                    if min > max {
                        return Err(QueryError::new(
                            QueryErrorKind::BadRepeat(format!(
                                "minimum {min} exceeds maximum {max}"
                            )),
                            span,
                        ));
                    }
                    if max as usize > MAX_K {
                        return Err(QueryError::new(
                            QueryErrorKind::BadRepeat(format!(
                                "maximum {max} exceeds the engine's MAX_K = {MAX_K}"
                            )),
                            span,
                        ));
                    }
                    expr = PathExpr::Repeat {
                        inner: Box::new(expr),
                        min,
                        max,
                    };
                }
                _ => return Ok(expr),
            }
        }
    }

    fn atom(&mut self) -> Result<PathExpr, QueryError> {
        let t = *self
            .peek()
            .ok_or_else(|| QueryError::new(QueryErrorKind::UnexpectedEnd, self.end_span()))?;
        match t.kind {
            TokKind::Dot => {
                self.pos += 1;
                Ok(PathExpr::Wildcard)
            }
            TokKind::Ident => {
                self.pos += 1;
                let name = self.text(t.span);
                match (self.resolver)(name) {
                    Some(id) => Ok(PathExpr::Label(id)),
                    None => Err(QueryError::new(
                        QueryErrorKind::UnknownLabel(name.to_owned()),
                        t.span,
                    )),
                }
            }
            TokKind::LParen => {
                self.pos += 1;
                let inner = self.alt()?;
                match self.peek() {
                    Some(close) if close.kind == TokKind::RParen => {
                        self.pos += 1;
                        Ok(inner)
                    }
                    _ => Err(QueryError::new(QueryErrorKind::UnclosedParen, t.span)),
                }
            }
            _ => Err(QueryError::new(
                QueryErrorKind::UnexpectedChar(t.first_char),
                t.span,
            )),
        }
    }

    /// Parses `INT (',' INT)? '}'` after an opening brace; returns
    /// `(min, max, closing span)`.
    fn repeat_bounds(&mut self, open: Span) -> Result<(u8, u8, Span), QueryError> {
        let min = self.bound_int(open)?;
        match self.peek().copied() {
            Some(t) if t.kind == TokKind::RBrace => {
                self.pos += 1;
                Ok((min, min, t.span))
            }
            Some(t) if t.kind == TokKind::Comma => {
                self.pos += 1;
                let max = self.bound_int(open)?;
                match self.peek().copied() {
                    Some(t) if t.kind == TokKind::RBrace => {
                        self.pos += 1;
                        Ok((min, max, t.span))
                    }
                    other => Err(QueryError::new(
                        QueryErrorKind::BadRepeat("expected \"}\"".into()),
                        other.map_or(self.end_span(), |t| t.span),
                    )),
                }
            }
            other => Err(QueryError::new(
                QueryErrorKind::BadRepeat("expected \",\" or \"}\"".into()),
                other.map_or(self.end_span(), |t| t.span),
            )),
        }
    }

    fn bound_int(&mut self, open: Span) -> Result<u8, QueryError> {
        match self.peek().copied() {
            Some(t) if t.kind == TokKind::Ident => {
                let text = self.text(t.span);
                match text.parse::<u8>() {
                    Ok(v) => {
                        self.pos += 1;
                        Ok(v)
                    }
                    Err(_) => Err(QueryError::new(
                        QueryErrorKind::BadRepeat(format!("{text:?} is not a small integer")),
                        t.span,
                    )),
                }
            }
            Some(t) => Err(QueryError::new(
                QueryErrorKind::BadRepeat("expected an integer bound".into()),
                t.span,
            )),
            None => Err(QueryError::new(
                QueryErrorKind::BadRepeat("unterminated \"{\"".into()),
                open,
            )),
        }
    }

    fn text(&self, span: Span) -> &str {
        // Spans come from char_indices over this same string, so they
        // always fall on character boundaries.
        &self.input[span.start..span.end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phe_graph::GraphBuilder;

    fn graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edge_named(0, "knows", 1);
        b.add_edge_named(1, "likes", 2);
        b.build()
    }

    #[test]
    fn parses_names() {
        let g = graph();
        let q = parse_path(&g, "knows/likes/knows").unwrap();
        assert_eq!(q, vec![LabelId(0), LabelId(1), LabelId(0)]);
    }

    #[test]
    fn tolerates_whitespace_and_empty_steps() {
        let g = graph();
        let q = parse_path(&g, " knows / likes ").unwrap();
        assert_eq!(q.len(), 2);
        let q = parse_path(&g, "knows//likes").unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn unknown_label_points_at_its_span() {
        let g = graph();
        let err = parse_path(&g, "knows/hates").unwrap_err();
        assert_eq!(err.kind, QueryErrorKind::UnknownLabel("hates".into()));
        assert_eq!(err.span, Span::new(6, 11));
        let snippet = err.snippet("knows/hates");
        assert_eq!(snippet, "knows/hates\n      ^^^^^");
    }

    #[test]
    fn empty_query() {
        let g = graph();
        assert_eq!(
            parse_path(&g, "   ").unwrap_err().kind,
            QueryErrorKind::EmptyQuery
        );
        assert_eq!(
            parse_path(&g, "///").unwrap_err().kind,
            QueryErrorKind::EmptyQuery
        );
    }

    #[test]
    fn too_long() {
        let g = graph();
        let expr = ["knows"; 9].join("/");
        assert_eq!(
            parse_path(&g, &expr).unwrap_err().kind,
            QueryErrorKind::TooLong { len: 9, max: 8 }
        );
    }

    #[test]
    fn parses_alternation_optional_repeat_wildcard() {
        let g = graph();
        let e = parse_expr(&g, "(knows|likes)/knows?").unwrap();
        assert_eq!(e.to_string(), "(0|1)/0?");
        let e = parse_expr(&g, "knows{2,3}").unwrap();
        assert_eq!(e.to_string(), "0{2,3}");
        let e = parse_expr(&g, "knows{2}").unwrap();
        assert_eq!(e.to_string(), "0{2}");
        let e = parse_expr(&g, "./likes").unwrap();
        assert_eq!(e.to_string(), "./1");
    }

    #[test]
    fn juxtaposition_concatenates() {
        let g = graph();
        let e = parse_expr(&g, "(knows|likes)knows").unwrap();
        assert_eq!(e.to_string(), "(0|1)/0");
        let e = parse_expr(&g, "knows likes").unwrap();
        assert_eq!(e.to_string(), "0/1");
    }

    #[test]
    fn non_concrete_is_refused_by_parse_path() {
        let g = graph();
        let err = parse_path(&g, "knows|likes").unwrap_err();
        assert_eq!(err.kind, QueryErrorKind::NotConcrete);
        // A fixed repetition *is* concrete.
        let q = parse_path(&g, "knows{2}").unwrap();
        assert_eq!(q, vec![LabelId(0), LabelId(0)]);
    }

    #[test]
    fn structural_errors_carry_spans() {
        let g = graph();
        let err = parse_expr(&g, "(knows|likes").unwrap_err();
        assert_eq!(err.kind, QueryErrorKind::UnclosedParen);
        assert_eq!(err.span, Span::new(0, 1));

        let err = parse_expr(&g, "knows)").unwrap_err();
        assert_eq!(err.kind, QueryErrorKind::UnexpectedChar(')'));
        assert_eq!(err.span, Span::new(5, 6));

        let err = parse_expr(&g, "knows|").unwrap_err();
        assert_eq!(err.kind, QueryErrorKind::UnexpectedEnd);

        let err = parse_expr(&g, "knows||likes").unwrap_err();
        assert_eq!(err.kind, QueryErrorKind::EmptyGroup);

        let err = parse_expr(&g, "knows{9}").unwrap_err();
        assert!(matches!(err.kind, QueryErrorKind::BadRepeat(_)), "{err:?}");
        assert_eq!(err.span, Span::new(5, 8));

        let err = parse_expr(&g, "knows{3,2}").unwrap_err();
        assert!(matches!(err.kind, QueryErrorKind::BadRepeat(_)));

        let err = parse_expr(&g, "knows{x}").unwrap_err();
        assert!(matches!(err.kind, QueryErrorKind::BadRepeat(_)));

        let err = parse_expr(&g, "knows{0}").unwrap_err();
        assert!(matches!(err.kind, QueryErrorKind::BadRepeat(_)));

        // An unterminated brace is a repetition problem, not a paren one.
        let err = parse_expr(&g, "knows{").unwrap_err();
        assert!(
            matches!(&err.kind, QueryErrorKind::BadRepeat(r) if r.contains('{')),
            "{err:?}"
        );
    }

    #[test]
    fn error_display_and_snippet_multibyte() {
        let err = QueryError::new(QueryErrorKind::UnknownLabel("x".into()), Span::new(4, 5));
        assert!(err.to_string().contains("x"));
        // Multi-byte prefix: caret position counts characters, not bytes
        // ("héllo " is 7 bytes but 6 characters).
        let err = QueryError::new(QueryErrorKind::UnexpectedChar(')'), Span::new(7, 8));
        assert_eq!(err.snippet("héllo )"), "héllo )\n      ^");
    }

    #[test]
    fn resolver_impls_agree() {
        let g = graph();
        let names = vec!["knows".to_string(), "likes".to_string()];
        let via_slice = parse_expr(names.as_slice(), "knows|likes").unwrap();
        let via_graph = parse_expr(&g, "knows|likes").unwrap();
        assert_eq!(via_slice, via_graph);
        assert_eq!(g.labels().resolve_label("likes"), Some(LabelId(1)));
    }
}
