//! Parsing path expressions over label names.

use std::fmt;

use phe_core::MAX_K;
use phe_graph::{Graph, LabelId};

/// Errors from parsing a path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The expression was empty (or all whitespace).
    EmptyQuery,
    /// A label name not present in the graph.
    UnknownLabel(String),
    /// More steps than the engine's `MAX_K`.
    TooLong {
        /// Steps in the expression.
        len: usize,
        /// The supported maximum.
        max: usize,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyQuery => write!(f, "empty path expression"),
            QueryError::UnknownLabel(name) => write!(f, "unknown edge label {name:?}"),
            QueryError::TooLong { len, max } => {
                write!(f, "path expression has {len} steps; maximum is {max}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Parses a `/`-separated path expression (e.g. `knows/likes/knows`) into
/// label ids, resolving names through the graph's interner. Whitespace
/// around steps is ignored.
pub fn parse_path(graph: &Graph, expr: &str) -> Result<Vec<LabelId>, QueryError> {
    let steps: Vec<&str> = expr
        .split('/')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if steps.is_empty() {
        return Err(QueryError::EmptyQuery);
    }
    if steps.len() > MAX_K {
        return Err(QueryError::TooLong {
            len: steps.len(),
            max: MAX_K,
        });
    }
    steps
        .into_iter()
        .map(|name| {
            graph
                .labels()
                .get(name)
                .ok_or_else(|| QueryError::UnknownLabel(name.to_owned()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phe_graph::GraphBuilder;

    fn graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edge_named(0, "knows", 1);
        b.add_edge_named(1, "likes", 2);
        b.build()
    }

    #[test]
    fn parses_names() {
        let g = graph();
        let q = parse_path(&g, "knows/likes/knows").unwrap();
        assert_eq!(q, vec![LabelId(0), LabelId(1), LabelId(0)]);
    }

    #[test]
    fn tolerates_whitespace_and_empty_steps() {
        let g = graph();
        let q = parse_path(&g, " knows / likes ").unwrap();
        assert_eq!(q.len(), 2);
        let q = parse_path(&g, "knows//likes").unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn unknown_label() {
        let g = graph();
        assert_eq!(
            parse_path(&g, "knows/hates"),
            Err(QueryError::UnknownLabel("hates".into()))
        );
    }

    #[test]
    fn empty_query() {
        let g = graph();
        assert_eq!(parse_path(&g, "   "), Err(QueryError::EmptyQuery));
        assert_eq!(parse_path(&g, "///"), Err(QueryError::EmptyQuery));
    }

    #[test]
    fn too_long() {
        let g = graph();
        let expr = ["knows"; 9].join("/");
        assert_eq!(
            parse_path(&g, &expr),
            Err(QueryError::TooLong { len: 9, max: 8 })
        );
    }

    #[test]
    fn error_display() {
        assert!(QueryError::UnknownLabel("x".into())
            .to_string()
            .contains("x"));
        assert!(QueryError::TooLong { len: 9, max: 8 }
            .to_string()
            .contains("9"));
    }
}
