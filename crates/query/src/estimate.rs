//! Pluggable cardinality estimators for the optimizer — slice and
//! expression entry points.
//!
//! [`CardinalityEstimator::estimate`] answers one concrete label path;
//! [`CardinalityEstimator::estimate_expr`] answers a whole
//! [`PathExpr`] by expanding it into concrete paths (follow-matrix
//! pruned when the estimator carries one) and summing per-path estimates
//! in the expansion's canonical order. Because distinct concrete paths
//! are disjoint populations, the total is exact *given* the per-path
//! estimates — and deterministically reproducible bit for bit, which the
//! `prop_expr` suite pins down against a brute-force enumeration.

use phe_core::{PathSelectivityEstimator, MAX_K};
use phe_graph::{FollowMatrix, LabelId};
use phe_pathenum::{SamplingEstimator, SelectivityCatalog};

use crate::expr::{ExpandError, ExpandOptions, PathExpr, DEFAULT_MAX_PATHS};

/// An expression estimate: the branch breakdown and the canonical-order
/// total, plus the expansion's accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ExprEstimate {
    /// Total estimated pairs across all branches, summed in branch order
    /// (length-major, then lexicographic — see `crate::expr`).
    pub total: f64,
    /// One `(concrete path, estimate)` per expansion branch, in canonical
    /// order. Estimates are clamped at 0.
    pub branches: Vec<(phe_core::LabelPath, f64)>,
    /// Per-length subtotals `(length, paths, subtotal)` for the lengths
    /// present in the expansion.
    pub by_length: Vec<(usize, usize, f64)>,
    /// Branches discarded by follow-matrix pruning before estimation.
    pub pruned: u64,
    /// Branches discarded for exceeding the estimator's maximum length.
    pub truncated: u64,
    /// Whether the expression also denotes the (inestimable) empty path.
    pub matches_empty: bool,
}

impl ExprEstimate {
    /// Number of concrete branches estimated.
    pub fn width(&self) -> usize {
        self.branches.len()
    }
}

/// Anything that can estimate the selectivity of a label sub-path — and,
/// through expansion, of a whole regular path expression.
pub trait CardinalityEstimator {
    /// Estimated number of distinct `(source, target)` pairs of `path`.
    fn estimate(&self, path: &[LabelId]) -> f64;

    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Number of labels in the estimator's alphabet — what a wildcard
    /// step expands over.
    fn label_count(&self) -> usize;

    /// Maximum concrete path length this estimator answers (defaults to
    /// the engine-wide [`MAX_K`]).
    fn max_len(&self) -> usize {
        MAX_K
    }

    /// The follow matrix used to prune impossible expansion branches, if
    /// the estimator carries one. `None` disables pruning (sound, just
    /// more branches to estimate).
    fn follow_matrix(&self) -> Option<&FollowMatrix> {
        None
    }

    /// Estimates a regular path expression: expand (pruned, bounded),
    /// estimate every concrete branch, and sum in canonical order.
    ///
    /// # Errors
    /// [`ExpandError`] when the expansion exceeds its path bound.
    fn estimate_expr(&self, expr: &PathExpr) -> Result<ExprEstimate, ExpandError> {
        let mut opts = ExpandOptions::new(self.label_count(), self.max_len());
        opts.max_paths = DEFAULT_MAX_PATHS;
        if let Some(follow) = self.follow_matrix() {
            opts = opts.with_follow(follow);
        }
        let expansion = expr.expand(&opts)?;
        let mut branches = Vec::with_capacity(expansion.paths.len());
        let mut total = 0.0f64;
        let mut by_length: Vec<(usize, usize, f64)> = Vec::new();
        for path in &expansion.paths {
            let estimate = self.estimate(path.as_label_ids()).max(0.0);
            total += estimate;
            match by_length.last_mut() {
                Some((len, count, subtotal)) if *len == path.len() => {
                    *count += 1;
                    *subtotal += estimate;
                }
                _ => by_length.push((path.len(), 1, estimate)),
            }
            branches.push((*path, estimate));
        }
        Ok(ExprEstimate {
            total,
            branches,
            by_length,
            pruned: expansion.pruned,
            truncated: expansion.truncated,
            matches_empty: expansion.matches_empty,
        })
    }
}

/// Perfect estimates from a selectivity catalog — the upper bound on what
/// any estimator can achieve, used to calibrate plan-quality experiments.
pub struct ExactOracle<'a> {
    catalog: &'a SelectivityCatalog,
    follow: Option<FollowMatrix>,
}

impl<'a> ExactOracle<'a> {
    /// Wraps a catalog.
    pub fn new(catalog: &'a SelectivityCatalog) -> Self {
        ExactOracle {
            catalog,
            follow: None,
        }
    }

    /// Attaches a follow matrix for expression-expansion pruning.
    pub fn with_follow(mut self, follow: FollowMatrix) -> Self {
        self.follow = Some(follow);
        self
    }
}

impl CardinalityEstimator for ExactOracle<'_> {
    fn estimate(&self, path: &[LabelId]) -> f64 {
        self.catalog.selectivity(path) as f64
    }

    fn name(&self) -> &'static str {
        "exact-oracle"
    }

    fn label_count(&self) -> usize {
        self.catalog.encoding().label_count()
    }

    fn max_len(&self) -> usize {
        self.catalog.encoding().max_len().min(MAX_K)
    }

    fn follow_matrix(&self) -> Option<&FollowMatrix> {
        self.follow.as_ref()
    }
}

/// Histogram-backed estimates — the production scenario this workspace
/// exists to study. Wraps a built [`PathSelectivityEstimator`].
pub struct HistogramEstimator<'a> {
    estimator: &'a PathSelectivityEstimator,
    follow: Option<FollowMatrix>,
}

impl<'a> HistogramEstimator<'a> {
    /// Wraps a built estimator.
    pub fn new(estimator: &'a PathSelectivityEstimator) -> Self {
        HistogramEstimator {
            estimator,
            follow: None,
        }
    }

    /// Attaches a follow matrix for expression-expansion pruning.
    pub fn with_follow(mut self, follow: FollowMatrix) -> Self {
        self.follow = Some(follow);
        self
    }
}

impl CardinalityEstimator for HistogramEstimator<'_> {
    fn estimate(&self, path: &[LabelId]) -> f64 {
        self.estimator.estimate(path).max(0.0)
    }

    fn name(&self) -> &'static str {
        "histogram"
    }

    fn label_count(&self) -> usize {
        self.estimator.label_count()
    }

    fn max_len(&self) -> usize {
        self.estimator.config().k.min(MAX_K)
    }

    fn follow_matrix(&self) -> Option<&FollowMatrix> {
        self.follow.as_ref()
    }
}

/// The textbook independence assumption: each composition step keeps
/// `f(ℓ₁/ℓ₂) ≈ f(ℓ₁) · f(ℓ₂) / |V|`. This is what an optimizer without
/// any path statistics would do — the baseline the paper's motivation
/// implicitly argues against.
pub struct IndependenceBaseline {
    label_frequencies: Vec<u64>,
    vertex_count: usize,
    follow: Option<FollowMatrix>,
}

impl IndependenceBaseline {
    /// Builds from per-label frequencies and the vertex count.
    pub fn new(label_frequencies: Vec<u64>, vertex_count: usize) -> Self {
        IndependenceBaseline {
            label_frequencies,
            vertex_count: vertex_count.max(1),
            follow: None,
        }
    }

    /// Builds from a graph (keeping its follow matrix for expression
    /// pruning — independence needs all the structural help it can get).
    pub fn from_graph(graph: &phe_graph::Graph) -> Self {
        IndependenceBaseline::new(
            graph
                .label_ids()
                .map(|l| graph.label_frequency(l))
                .collect(),
            graph.vertex_count(),
        )
        .with_follow(FollowMatrix::from_graph(graph))
    }

    /// Attaches a follow matrix for expression-expansion pruning.
    pub fn with_follow(mut self, follow: FollowMatrix) -> Self {
        self.follow = Some(follow);
        self
    }
}

impl CardinalityEstimator for IndependenceBaseline {
    fn estimate(&self, path: &[LabelId]) -> f64 {
        let n = self.vertex_count as f64;
        let mut card = 0.0f64;
        for (i, l) in path.iter().enumerate() {
            let f = self.label_frequencies[l.index()] as f64;
            card = if i == 0 { f } else { card * f / n };
        }
        card
    }

    fn name(&self) -> &'static str {
        "independence"
    }

    fn label_count(&self) -> usize {
        self.label_frequencies.len()
    }

    fn follow_matrix(&self) -> Option<&FollowMatrix> {
        self.follow.as_ref()
    }
}

/// Sampling-based estimates (see `phe_pathenum::sampling`): the
/// no-precomputation alternative. Each call traverses the graph from a
/// uniform source sample — accurate but orders of magnitude slower per
/// estimate than a histogram lookup, which is exactly the trade-off the
/// experiments surface.
pub struct SamplingAdapter<'g> {
    estimator: SamplingEstimator<'g>,
    follow: Option<FollowMatrix>,
}

impl<'g> SamplingAdapter<'g> {
    /// Wraps a sampling estimator.
    pub fn new(estimator: SamplingEstimator<'g>) -> Self {
        SamplingAdapter {
            estimator,
            follow: None,
        }
    }

    /// Attaches a follow matrix for expression-expansion pruning.
    pub fn with_follow(mut self, follow: FollowMatrix) -> Self {
        self.follow = Some(follow);
        self
    }
}

impl CardinalityEstimator for SamplingAdapter<'_> {
    fn estimate(&self, path: &[LabelId]) -> f64 {
        self.estimator.estimate(path)
    }

    fn name(&self) -> &'static str {
        "sampling"
    }

    fn label_count(&self) -> usize {
        self.estimator.graph().label_count()
    }

    fn follow_matrix(&self) -> Option<&FollowMatrix> {
        self.follow.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_expr;
    use phe_graph::GraphBuilder;

    #[test]
    fn oracle_returns_truth() {
        let mut b = GraphBuilder::new();
        b.add_edge_named(0, "a", 1);
        b.add_edge_named(1, "b", 2);
        let g = b.build();
        let catalog = SelectivityCatalog::compute(&g, 2);
        let oracle = ExactOracle::new(&catalog);
        assert_eq!(oracle.estimate(&[LabelId(0)]), 1.0);
        assert_eq!(oracle.estimate(&[LabelId(0), LabelId(1)]), 1.0);
        assert_eq!(oracle.estimate(&[LabelId(1), LabelId(0)]), 0.0);
        assert_eq!(oracle.label_count(), 2);
        assert_eq!(oracle.max_len(), 2);
    }

    #[test]
    fn independence_multiplies() {
        let est = IndependenceBaseline::new(vec![100, 50], 10);
        assert_eq!(est.estimate(&[LabelId(0)]), 100.0);
        // 100 * 50 / 10 = 500.
        assert_eq!(est.estimate(&[LabelId(0), LabelId(1)]), 500.0);
        // Chains further: 500 * 100 / 10 = 5000.
        assert_eq!(est.estimate(&[LabelId(0), LabelId(1), LabelId(0)]), 5000.0);
    }

    #[test]
    fn sampling_adapter_estimates() {
        let mut b = GraphBuilder::new();
        for i in 0..20u32 {
            b.add_edge_named(i, "a", (i + 1) % 20);
        }
        let g = b.build();
        let adapter = SamplingAdapter::new(SamplingEstimator::new(
            &g,
            phe_pathenum::SamplingConfig {
                sample_size: usize::MAX,
                seed: 1,
            },
        ));
        assert_eq!(adapter.estimate(&[LabelId(0)]), 20.0);
        assert_eq!(adapter.name(), "sampling");
        assert_eq!(adapter.label_count(), 1);
    }

    #[test]
    fn independence_is_order_insensitive_but_truth_is_not() {
        // The weakness the paper targets: a/b and b/a get identical
        // independence estimates even when their true selectivities differ.
        let est = IndependenceBaseline::new(vec![10, 20], 5);
        assert_eq!(
            est.estimate(&[LabelId(0), LabelId(1)]),
            est.estimate(&[LabelId(1), LabelId(0)])
        );
    }

    #[test]
    fn estimate_expr_sums_branches_in_canonical_order() {
        let mut b = GraphBuilder::new();
        b.add_edge_named(0, "a", 1);
        b.add_edge_named(0, "a", 2);
        b.add_edge_named(1, "b", 2);
        b.add_edge_named(2, "b", 3);
        let g = b.build();
        let catalog = SelectivityCatalog::compute(&g, 3);
        let oracle = ExactOracle::new(&catalog);

        let expr = parse_expr(&g, "a|a/b").unwrap();
        let estimate = oracle.estimate_expr(&expr).unwrap();
        // f(a) = 2, f(a/b) = 2 (0->2 via 1 and 2... distinct pairs).
        let direct = oracle.estimate(&[LabelId(0)]) + oracle.estimate(&[LabelId(0), LabelId(1)]);
        assert_eq!(estimate.total.to_bits(), direct.to_bits());
        assert_eq!(estimate.width(), 2);
        assert_eq!(estimate.branches[0].0.len(), 1, "length-major order");
        assert_eq!(estimate.by_length.len(), 2);
        assert!(!estimate.matches_empty);
    }

    #[test]
    fn follow_matrix_pruning_changes_the_branch_set_not_the_order() {
        let mut b = GraphBuilder::new();
        b.add_edge_named(0, "a", 1);
        b.add_edge_named(1, "b", 2);
        b.add_edge_named(5, "c", 6);
        let g = b.build();
        let catalog = SelectivityCatalog::compute(&g, 2);
        let pruned_oracle = ExactOracle::new(&catalog).with_follow(FollowMatrix::from_graph(&g));
        let plain_oracle = ExactOracle::new(&catalog);

        // ./. — with pruning only a/b survives; without, all 9 pairs.
        let expr = parse_expr(&g, "./.").unwrap();
        let pruned = pruned_oracle.estimate_expr(&expr).unwrap();
        assert_eq!(pruned.width(), 1);
        assert_eq!(pruned.pruned, 8);
        let plain = plain_oracle.estimate_expr(&expr).unwrap();
        assert_eq!(plain.width(), 9);
        assert_eq!(plain.pruned, 0);
        // The oracle gives 0 to impossible paths, so totals agree here.
        assert_eq!(pruned.total, plain.total);
    }
}
