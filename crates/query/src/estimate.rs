//! Pluggable cardinality estimators for the optimizer.

use phe_core::PathSelectivityEstimator;
use phe_graph::LabelId;
use phe_pathenum::{SamplingEstimator, SelectivityCatalog};

/// Anything that can estimate the selectivity of a label sub-path.
pub trait CardinalityEstimator {
    /// Estimated number of distinct `(source, target)` pairs of `path`.
    fn estimate(&self, path: &[LabelId]) -> f64;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Perfect estimates from a selectivity catalog — the upper bound on what
/// any estimator can achieve, used to calibrate plan-quality experiments.
pub struct ExactOracle<'a> {
    catalog: &'a SelectivityCatalog,
}

impl<'a> ExactOracle<'a> {
    /// Wraps a catalog.
    pub fn new(catalog: &'a SelectivityCatalog) -> Self {
        ExactOracle { catalog }
    }
}

impl CardinalityEstimator for ExactOracle<'_> {
    fn estimate(&self, path: &[LabelId]) -> f64 {
        self.catalog.selectivity(path) as f64
    }

    fn name(&self) -> &'static str {
        "exact-oracle"
    }
}

/// Histogram-backed estimates — the production scenario this workspace
/// exists to study. Wraps a built [`PathSelectivityEstimator`].
pub struct HistogramEstimator<'a> {
    estimator: &'a PathSelectivityEstimator,
}

impl<'a> HistogramEstimator<'a> {
    /// Wraps a built estimator.
    pub fn new(estimator: &'a PathSelectivityEstimator) -> Self {
        HistogramEstimator { estimator }
    }
}

impl CardinalityEstimator for HistogramEstimator<'_> {
    fn estimate(&self, path: &[LabelId]) -> f64 {
        self.estimator.estimate(path).max(0.0)
    }

    fn name(&self) -> &'static str {
        "histogram"
    }
}

/// The textbook independence assumption: each composition step keeps
/// `f(ℓ₁/ℓ₂) ≈ f(ℓ₁) · f(ℓ₂) / |V|`. This is what an optimizer without
/// any path statistics would do — the baseline the paper's motivation
/// implicitly argues against.
pub struct IndependenceBaseline {
    label_frequencies: Vec<u64>,
    vertex_count: usize,
}

impl IndependenceBaseline {
    /// Builds from per-label frequencies and the vertex count.
    pub fn new(label_frequencies: Vec<u64>, vertex_count: usize) -> Self {
        IndependenceBaseline {
            label_frequencies,
            vertex_count: vertex_count.max(1),
        }
    }

    /// Builds from a graph.
    pub fn from_graph(graph: &phe_graph::Graph) -> Self {
        IndependenceBaseline::new(
            graph
                .label_ids()
                .map(|l| graph.label_frequency(l))
                .collect(),
            graph.vertex_count(),
        )
    }
}

impl CardinalityEstimator for IndependenceBaseline {
    fn estimate(&self, path: &[LabelId]) -> f64 {
        let n = self.vertex_count as f64;
        let mut card = 0.0f64;
        for (i, l) in path.iter().enumerate() {
            let f = self.label_frequencies[l.index()] as f64;
            card = if i == 0 { f } else { card * f / n };
        }
        card
    }

    fn name(&self) -> &'static str {
        "independence"
    }
}

/// Sampling-based estimates (see `phe_pathenum::sampling`): the
/// no-precomputation alternative. Each call traverses the graph from a
/// uniform source sample — accurate but orders of magnitude slower per
/// estimate than a histogram lookup, which is exactly the trade-off the
/// experiments surface.
pub struct SamplingAdapter<'g> {
    estimator: SamplingEstimator<'g>,
}

impl<'g> SamplingAdapter<'g> {
    /// Wraps a sampling estimator.
    pub fn new(estimator: SamplingEstimator<'g>) -> Self {
        SamplingAdapter { estimator }
    }
}

impl CardinalityEstimator for SamplingAdapter<'_> {
    fn estimate(&self, path: &[LabelId]) -> f64 {
        self.estimator.estimate(path)
    }

    fn name(&self) -> &'static str {
        "sampling"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phe_graph::GraphBuilder;

    #[test]
    fn oracle_returns_truth() {
        let mut b = GraphBuilder::new();
        b.add_edge_named(0, "a", 1);
        b.add_edge_named(1, "b", 2);
        let g = b.build();
        let catalog = SelectivityCatalog::compute(&g, 2);
        let oracle = ExactOracle::new(&catalog);
        assert_eq!(oracle.estimate(&[LabelId(0)]), 1.0);
        assert_eq!(oracle.estimate(&[LabelId(0), LabelId(1)]), 1.0);
        assert_eq!(oracle.estimate(&[LabelId(1), LabelId(0)]), 0.0);
    }

    #[test]
    fn independence_multiplies() {
        let est = IndependenceBaseline::new(vec![100, 50], 10);
        assert_eq!(est.estimate(&[LabelId(0)]), 100.0);
        // 100 * 50 / 10 = 500.
        assert_eq!(est.estimate(&[LabelId(0), LabelId(1)]), 500.0);
        // Chains further: 500 * 100 / 10 = 5000.
        assert_eq!(est.estimate(&[LabelId(0), LabelId(1), LabelId(0)]), 5000.0);
    }

    #[test]
    fn sampling_adapter_estimates() {
        let mut b = GraphBuilder::new();
        for i in 0..20u32 {
            b.add_edge_named(i, "a", (i + 1) % 20);
        }
        let g = b.build();
        let adapter = SamplingAdapter::new(SamplingEstimator::new(
            &g,
            phe_pathenum::SamplingConfig {
                sample_size: usize::MAX,
                seed: 1,
            },
        ));
        assert_eq!(adapter.estimate(&[LabelId(0)]), 20.0);
        assert_eq!(adapter.name(), "sampling");
    }

    #[test]
    fn independence_is_order_insensitive_but_truth_is_not() {
        // The weakness the paper targets: a/b and b/a get identical
        // independence estimates even when their true selectivities differ.
        let est = IndependenceBaseline::new(vec![10, 20], 5);
        assert_eq!(
            est.estimate(&[LabelId(0), LabelId(1)]),
            est.estimate(&[LabelId(1), LabelId(0)])
        );
    }
}
