#![warn(missing_docs)]

//! # phe-query — a path-query engine driven by selectivity estimates
//!
//! The paper's motivation is that graph query optimizers need accurate
//! path cardinalities to pick good execution plans. This crate closes the
//! loop: it parses path expressions, optimizes their join order with a
//! pluggable [`CardinalityEstimator`], executes the chosen plan, and
//! reports the *actual* intermediate sizes — so the value of a better
//! domain ordering can be measured in plan quality, not just error rates
//! (see the `downstream_plans` experiment binary and the
//! `query_optimizer` example).
//!
//! ```
//! use phe_graph::GraphBuilder;
//! use phe_query::{parse_path, optimize, execute, ExactOracle};
//! use phe_pathenum::SelectivityCatalog;
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge_named(0, "knows", 1);
//! b.add_edge_named(1, "likes", 2);
//! b.add_edge_named(2, "knows", 3);
//! let g = b.build();
//!
//! let query = parse_path(&g, "knows/likes/knows").unwrap();
//! let catalog = SelectivityCatalog::compute(&g, 3);
//! let oracle = ExactOracle::new(&catalog);
//! let plan = optimize(&query, &oracle);
//! let report = execute(&g, &plan);
//! assert_eq!(report.result.pair_count(), 1); // 0 -> 3
//! ```
//!
//! ## Serving
//!
//! In production the optimizer does not own the estimator: statistics are
//! built offline, snapshotted, and served by a long-lived process. The
//! `phe-service` crate provides that tier — an estimator registry with
//! snapshot hot-swap, batched estimation with an LRU estimate cache, and
//! a TCP protocol (`phe serve` / `phe query --remote`). An optimizer
//! session maps naturally onto one batched request: collect the candidate
//! paths for a plan search, estimate them in one round trip (answered
//! consistently by a single estimator generation), then optimize locally.

pub mod estimate;
pub mod exec;
pub mod optimizer;
pub mod parse;
pub mod plan;
pub mod workload;

pub use estimate::{
    CardinalityEstimator, ExactOracle, HistogramEstimator, IndependenceBaseline, SamplingAdapter,
};
pub use exec::{execute, ExecutionReport};
pub use optimizer::optimize;
pub use parse::{parse_path, QueryError};
pub use plan::Plan;
pub use workload::{stratified_workload, Workload};
