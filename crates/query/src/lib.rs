#![warn(missing_docs)]

//! # phe-query — a regular-path-query engine driven by selectivity estimates
//!
//! The paper's motivation is that graph query optimizers need accurate
//! path cardinalities to pick good execution plans. This crate closes the
//! loop around one IR: the [`PathExpr`] — concatenation `a/b`,
//! alternation `(a|b)`, optional `a?`, bounded repetition `a{m,n}`, and
//! the single-step wildcard `.` — parsed with byte-spanned errors,
//! **expanded** into its disjoint set of concrete label paths (pruned by
//! the graph's follow matrix), estimated as an exact sum of per-branch
//! estimates by any [`CardinalityEstimator`], join-order optimized per
//! branch, executed, and measured (see the `downstream_plans` and
//! `rpq_estimation` experiment binaries and the `query_optimizer`
//! example).
//!
//! ```
//! use phe_graph::GraphBuilder;
//! use phe_query::{parse_path, optimize, execute, ExactOracle};
//! use phe_pathenum::SelectivityCatalog;
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge_named(0, "knows", 1);
//! b.add_edge_named(1, "likes", 2);
//! b.add_edge_named(2, "knows", 3);
//! let g = b.build();
//!
//! let query = parse_path(&g, "knows/likes/knows").unwrap();
//! let catalog = SelectivityCatalog::compute(&g, 3);
//! let oracle = ExactOracle::new(&catalog);
//! let plan = optimize(&query, &oracle);
//! let report = execute(&g, &plan);
//! assert_eq!(report.result.pair_count(), 1); // 0 -> 3
//! ```
//!
//! ## Expressions
//!
//! Every estimator answers whole expressions through
//! [`CardinalityEstimator::estimate_expr`]; totals are sums over the
//! expansion's canonical order (length-major, then lexicographic), so
//! they are reproducible bit for bit:
//!
//! ```
//! use phe_graph::{FollowMatrix, GraphBuilder};
//! use phe_query::{parse_expr, optimize_expr, CardinalityEstimator, ExactOracle};
//! use phe_pathenum::SelectivityCatalog;
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge_named(0, "knows", 1);
//! b.add_edge_named(1, "likes", 2);
//! b.add_edge_named(2, "knows", 3);
//! let g = b.build();
//!
//! let expr = parse_expr(&g, "knows/(likes|knows)?").unwrap();
//! let catalog = SelectivityCatalog::compute(&g, 3);
//! let oracle = ExactOracle::new(&catalog).with_follow(FollowMatrix::from_graph(&g));
//! let estimate = oracle.estimate_expr(&expr).unwrap();
//! // knows (2 pairs) + knows/likes (1); the knows/knows branch is
//! // pruned — no knows-edge target has an outgoing knows-edge.
//! assert_eq!(estimate.total, 3.0);
//! assert_eq!(estimate.width(), 2);
//! assert_eq!(estimate.pruned, 1);
//!
//! // Alternation pushes through join-order enumeration: one chain plan
//! // per expansion branch, unioned.
//! let plan = optimize_expr(&expr, &oracle).unwrap();
//! assert_eq!(plan.width(), estimate.width());
//! ```
//!
//! ## Serving
//!
//! In production the optimizer does not own the estimator: statistics are
//! built offline, snapshotted, and served by a long-lived process. The
//! `phe-service` crate provides that tier — an estimator registry with
//! snapshot hot-swap, batched estimation with an LRU estimate cache, and
//! a TCP protocol (`phe serve` / `phe query --remote`). An optimizer
//! session maps naturally onto one batched request: collect the candidate
//! paths for a plan search, estimate them in one round trip (answered
//! consistently by a single estimator generation), then optimize locally.

pub mod estimate;
pub mod exec;
pub mod expr;
pub mod optimizer;
pub mod parse;
pub mod plan;
pub mod workload;

pub use estimate::{
    CardinalityEstimator, ExactOracle, ExprEstimate, HistogramEstimator, IndependenceBaseline,
    SamplingAdapter,
};
pub use exec::{execute, ExecutionReport};
pub use expr::{render_path, ExpandError, ExpandOptions, Expansion, PathExpr};
pub use optimizer::{optimize, optimize_expr};
pub use parse::{parse_expr, parse_path, LabelResolver, QueryError, QueryErrorKind, Span};
pub use plan::{ExprPlan, Plan};
pub use workload::{stratified_expr_workload, stratified_workload, ExprWorkload, Workload};
