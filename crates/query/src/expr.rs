//! The regular-path-query IR: one expression type for every estimation
//! consumer.
//!
//! A [`PathExpr`] describes a *set* of concrete label paths: concatenation
//! (`a/b`), alternation (`a|b`), optional steps (`a?`), bounded repetition
//! (`a{m,n}`), and the single-step wildcard (`.`). The histogram machinery
//! estimates fixed label sequences; this module closes the gap by
//! **expanding** an expression into its set of concrete paths up to the
//! estimator's maximum length `k` — optionally pruned by the graph's
//! [`FollowMatrix`], so branches that cannot occur in the graph are
//! discarded before anything is estimated.
//!
//! Two properties make expansion the right compilation target:
//!
//! * **Disjointness.** Distinct concrete label sequences describe disjoint
//!   path populations, so an expression's total is the exact sum of its
//!   branches' per-path statistics — no inclusion–exclusion, no
//!   correlation assumptions. (The quantity summed is the *per-path pair
//!   count*, the same quantity an optimizer materializes when executing
//!   the branches of a union plan.)
//! * **Determinism.** [`Expansion::paths`] is sorted length-major, then
//!   lexicographically by label id — the same order a brute-force
//!   enumeration of the domain visits — and estimate totals are summed in
//!   that order, so independent computations of the same expression agree
//!   bit for bit.

use std::collections::BTreeSet;
use std::fmt;

use phe_core::{LabelPath, MAX_K};
use phe_graph::{FollowMatrix, LabelId, LabelInterner};

/// A regular path expression over edge labels.
///
/// Construct via [`crate::parse_expr`] or the constructors here; compare
/// normalized forms (see [`PathExpr::normalize`]) when syntactic variants
/// like `(a|b)` vs `(b|a)` should be treated as equal.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PathExpr {
    /// One step with a fixed label.
    Label(LabelId),
    /// One step with any label (`.`).
    Wildcard,
    /// Sub-expressions in sequence (`a/b`, also written `(a|b)c`).
    Concat(Vec<PathExpr>),
    /// Any one of the branches (`a|b`).
    Alt(Vec<PathExpr>),
    /// `min..=max` copies of the inner expression in sequence: `a{m,n}`;
    /// `a?` is `a{0,1}`.
    Repeat {
        /// The repeated sub-expression.
        inner: Box<PathExpr>,
        /// Minimum repetitions (0 makes the whole group optional).
        min: u8,
        /// Maximum repetitions (bounded by [`MAX_K`]).
        max: u8,
    },
}

impl PathExpr {
    /// The trivial expression of one concrete path.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn path(labels: &[LabelId]) -> PathExpr {
        assert!(!labels.is_empty(), "a path expression needs steps");
        if labels.len() == 1 {
            PathExpr::Label(labels[0])
        } else {
            PathExpr::Concat(labels.iter().copied().map(PathExpr::Label).collect())
        }
    }

    /// The single concrete label path this expression denotes, if it is a
    /// plain chain (no alternation, wildcard, or repetition) — the shape
    /// the pre-expression API accepted.
    pub fn as_concrete(&self) -> Option<Vec<LabelId>> {
        match self {
            PathExpr::Label(l) => Some(vec![*l]),
            PathExpr::Concat(parts) => {
                let mut out = Vec::with_capacity(parts.len());
                for part in parts {
                    out.extend(part.as_concrete()?);
                }
                (!out.is_empty()).then_some(out)
            }
            PathExpr::Repeat { inner, min, max } if min == max => {
                let once = inner.as_concrete()?;
                let mut out = Vec::with_capacity(once.len() * *min as usize);
                for _ in 0..*min {
                    out.extend(once.iter().copied());
                }
                (!out.is_empty()).then_some(out)
            }
            _ => None,
        }
    }

    /// Structural normalization: flattens nested concatenations and
    /// alternations, unwraps single-element groups, rewrites `e{1,1}` to
    /// `e` and `e{0,0}` to the empty sequence, and **sorts + dedupes**
    /// alternation branches — so `(a|b)/c` and `(b|a)/c` normalize to the
    /// same value. Idempotent (property-tested); [`PathExpr::cache_key`]
    /// is derived from this form.
    pub fn normalize(&self) -> PathExpr {
        match self {
            PathExpr::Label(_) | PathExpr::Wildcard => self.clone(),
            PathExpr::Concat(parts) => {
                let mut flat = Vec::with_capacity(parts.len());
                for part in parts {
                    match part.normalize() {
                        PathExpr::Concat(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                if flat.len() == 1 {
                    flat.pop().expect("len checked")
                } else {
                    PathExpr::Concat(flat)
                }
            }
            PathExpr::Alt(branches) => {
                let mut flat = Vec::with_capacity(branches.len());
                for branch in branches {
                    match branch.normalize() {
                        PathExpr::Alt(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                flat.sort();
                flat.dedup();
                if flat.len() == 1 {
                    flat.pop().expect("len checked")
                } else {
                    PathExpr::Alt(flat)
                }
            }
            PathExpr::Repeat { inner, min, max } => {
                let inner = inner.normalize();
                match (*min, *max) {
                    (0, 0) => PathExpr::Concat(Vec::new()),
                    (1, 1) => inner,
                    (min, max) => PathExpr::Repeat {
                        inner: Box::new(inner),
                        min,
                        max,
                    },
                }
            }
        }
    }

    /// The canonical key of this expression: the normalized form rendered
    /// over label *ids*. Two expressions with the same denotation under
    /// commutation of alternation get the same key — what the service's
    /// expression cache is keyed by.
    pub fn cache_key(&self) -> String {
        self.normalize().to_string()
    }

    /// Whether `seq` is one of the concrete label sequences this
    /// expression denotes. Independent of [`PathExpr::expand`] (simple
    /// backtracking over split points) — the property tests pit the two
    /// against each other.
    pub fn matches(&self, seq: &[LabelId]) -> bool {
        match self {
            PathExpr::Label(l) => seq == [*l],
            PathExpr::Wildcard => seq.len() == 1,
            PathExpr::Concat(parts) => Self::matches_seq(parts, seq),
            PathExpr::Alt(branches) => branches.iter().any(|b| b.matches(seq)),
            PathExpr::Repeat { inner, min, max } => {
                (*min..=*max).any(|r| Self::matches_repeat(inner, r as usize, seq))
            }
        }
    }

    fn matches_seq(parts: &[PathExpr], seq: &[LabelId]) -> bool {
        match parts {
            [] => seq.is_empty(),
            [first, rest @ ..] => (0..=seq.len())
                .any(|i| first.matches(&seq[..i]) && Self::matches_seq(rest, &seq[i..])),
        }
    }

    fn matches_repeat(inner: &PathExpr, reps: usize, seq: &[LabelId]) -> bool {
        if reps == 0 {
            return seq.is_empty();
        }
        (0..=seq.len())
            .any(|i| inner.matches(&seq[..i]) && Self::matches_repeat(inner, reps - 1, &seq[i..]))
    }

    /// Expands this expression into its set of concrete label paths of
    /// length `1..=opts.max_len`, pruned by the follow matrix when one is
    /// provided. See the module docs for the ordering and disjointness
    /// guarantees.
    ///
    /// # Errors
    /// [`ExpandError::TooManyPaths`] when any intermediate set exceeds
    /// `opts.max_paths` — the guard that keeps `.{1,8}`-style expressions
    /// from enumerating the whole domain.
    pub fn expand(&self, opts: &ExpandOptions<'_>) -> Result<Expansion, ExpandError> {
        let _expand = phe_obs::span::stage("query.expand");
        let mut stats = ExpandStats::default();
        let set = self.expand_set(opts, &mut stats)?;
        let matches_empty = set.contains(&Vec::new());
        let mut seqs: Vec<Vec<u16>> = set.into_iter().filter(|s| !s.is_empty()).collect();
        // Length-major, then lexicographic: the canonical order every
        // consumer sums in.
        seqs.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        let paths = seqs
            .into_iter()
            .map(|s| {
                let ids: Vec<LabelId> = s.into_iter().map(LabelId).collect();
                LabelPath::new(&ids)
            })
            .collect();
        Ok(Expansion {
            paths,
            pruned: stats.pruned,
            truncated: stats.truncated,
            matches_empty,
        })
    }

    /// Expansion width: the number of concrete paths, without building
    /// them into [`LabelPath`]s. Convenience for workload stratification.
    pub fn width(&self, opts: &ExpandOptions<'_>) -> Result<usize, ExpandError> {
        Ok(self.expand(opts)?.paths.len())
    }

    fn expand_set(
        &self,
        opts: &ExpandOptions<'_>,
        stats: &mut ExpandStats,
    ) -> Result<BTreeSet<Vec<u16>>, ExpandError> {
        let mut out = BTreeSet::new();
        match self {
            PathExpr::Label(l) => {
                out.insert(vec![l.0]);
            }
            PathExpr::Wildcard => {
                for l in 0..opts.label_count {
                    out.insert(vec![l as u16]);
                }
            }
            PathExpr::Alt(branches) => {
                for branch in branches {
                    for seq in branch.expand_set(opts, stats)? {
                        out.insert(seq);
                    }
                    Self::check_cap(out.len(), opts)?;
                }
            }
            PathExpr::Concat(parts) => {
                out.insert(Vec::new());
                for part in parts {
                    let step = part.expand_set(opts, stats)?;
                    out = Self::join(&out, &step, opts, stats)?;
                }
            }
            PathExpr::Repeat { inner, min, max } => {
                let step = inner.expand_set(opts, stats)?;
                let mut power: BTreeSet<Vec<u16>> = BTreeSet::new();
                power.insert(Vec::new());
                for r in 0..=*max {
                    if r >= *min {
                        for seq in &power {
                            out.insert(seq.clone());
                        }
                        Self::check_cap(out.len(), opts)?;
                    }
                    if r < *max {
                        power = Self::join(&power, &step, opts, stats)?;
                        if power.is_empty() {
                            break; // further powers only grow longer
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// The pruned cross-product of two expansion sets: each left sequence
    /// extended by each right sequence, discarding combinations that
    /// exceed the length budget (`truncated`) or whose boundary label
    /// pair the follow matrix refutes (`pruned`). Members of both inputs
    /// are internally follow-consistent by induction, so the boundary
    /// check is the only one needed.
    fn join(
        left: &BTreeSet<Vec<u16>>,
        right: &BTreeSet<Vec<u16>>,
        opts: &ExpandOptions<'_>,
        stats: &mut ExpandStats,
    ) -> Result<BTreeSet<Vec<u16>>, ExpandError> {
        // Prune time is the follow-checked join: only metered when a
        // follow matrix is actually consulted.
        let _prune = opts
            .follow
            .is_some()
            .then(|| phe_obs::span::stage("query.prune"));
        let mut out = BTreeSet::new();
        for a in left {
            for b in right {
                if a.len() + b.len() > opts.max_len {
                    stats.truncated += 1;
                    continue;
                }
                if let (Some(follow), Some(&last), Some(&first)) =
                    (opts.follow, a.last(), b.first())
                {
                    if !follow.follows(LabelId(last), LabelId(first)) {
                        stats.pruned += 1;
                        continue;
                    }
                }
                let mut seq = Vec::with_capacity(a.len() + b.len());
                seq.extend_from_slice(a);
                seq.extend_from_slice(b);
                out.insert(seq);
                Self::check_cap(out.len(), opts)?;
            }
        }
        Ok(out)
    }

    fn check_cap(len: usize, opts: &ExpandOptions<'_>) -> Result<(), ExpandError> {
        if len > opts.max_paths {
            Err(ExpandError::TooManyPaths {
                limit: opts.max_paths,
            })
        } else {
            Ok(())
        }
    }

    /// Renders with label names from an interner, e.g. `(knows|likes)/x?`.
    pub fn display_with<'a>(&'a self, labels: &'a LabelInterner) -> impl fmt::Display + 'a {
        NamedExpr { expr: self, labels }
    }

    /// Renders an indented expansion/structure tree (the `--explain`
    /// view), with label names resolved through `name` (unknown ids fall
    /// back to `?id`, as in [`render_path`]).
    pub fn tree(&self, name: &dyn Fn(LabelId) -> Option<String>) -> String {
        let mut out = String::new();
        self.tree_into(&mut out, name, 0);
        out
    }

    fn tree_into(&self, out: &mut String, name: &dyn Fn(LabelId) -> Option<String>, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            PathExpr::Label(l) => {
                out.push_str(&format!("{pad}label {}\n", name_or_fallback(name, *l)));
            }
            PathExpr::Wildcard => out.push_str(&format!("{pad}wildcard .\n")),
            PathExpr::Concat(parts) => {
                out.push_str(&format!("{pad}concat\n"));
                for part in parts {
                    part.tree_into(out, name, depth + 1);
                }
            }
            PathExpr::Alt(branches) => {
                out.push_str(&format!("{pad}alt\n"));
                for branch in branches {
                    branch.tree_into(out, name, depth + 1);
                }
            }
            PathExpr::Repeat { inner, min, max } => {
                if (*min, *max) == (0, 1) {
                    out.push_str(&format!("{pad}optional ?\n"));
                } else {
                    out.push_str(&format!("{pad}repeat {{{min},{max}}}\n"));
                }
                inner.tree_into(out, name, depth + 1);
            }
        }
    }

    /// Operator precedence for unambiguous rendering: alternation binds
    /// loosest, then concatenation, then postfix repetition.
    fn precedence(&self) -> u8 {
        match self {
            PathExpr::Alt(_) => 0,
            PathExpr::Concat(_) => 1,
            PathExpr::Repeat { .. } => 2,
            PathExpr::Label(_) | PathExpr::Wildcard => 3,
        }
    }

    fn fmt_with(
        &self,
        f: &mut fmt::Formatter<'_>,
        atom: &dyn Fn(&mut fmt::Formatter<'_>, LabelId) -> fmt::Result,
    ) -> fmt::Result {
        let child = |f: &mut fmt::Formatter<'_>, e: &PathExpr, min_prec: u8| -> fmt::Result {
            if e.precedence() < min_prec {
                write!(f, "(")?;
                e.fmt_with(f, atom)?;
                write!(f, ")")
            } else {
                e.fmt_with(f, atom)
            }
        };
        match self {
            PathExpr::Label(l) => atom(f, *l),
            PathExpr::Wildcard => write!(f, "."),
            PathExpr::Concat(parts) => {
                if parts.is_empty() {
                    return write!(f, "()");
                }
                for (i, part) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "/")?;
                    }
                    child(f, part, 2)?;
                }
                Ok(())
            }
            PathExpr::Alt(branches) => {
                if branches.is_empty() {
                    return write!(f, "(|)");
                }
                for (i, branch) in branches.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    child(f, branch, 1)?;
                }
                Ok(())
            }
            PathExpr::Repeat { inner, min, max } => {
                child(f, inner, 3)?;
                if (*min, *max) == (0, 1) {
                    write!(f, "?")
                } else if min == max {
                    write!(f, "{{{min}}}")
                } else {
                    write!(f, "{{{min},{max}}}")
                }
            }
        }
    }
}

impl fmt::Display for PathExpr {
    /// Renders over label *ids* (e.g. `(0|1)/2?`) — deterministic and
    /// name-independent, which is what [`PathExpr::cache_key`] needs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_with(f, &|f, l| write!(f, "{}", l.0))
    }
}

struct NamedExpr<'a> {
    expr: &'a PathExpr,
    labels: &'a LabelInterner,
}

impl fmt::Display for NamedExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.expr.fmt_with(f, &|f, l| match self.labels.name(l) {
            Some(name) => write!(f, "{name}"),
            None => write!(f, "?{}", l.0),
        })
    }
}

/// Everything expansion needs to know about its target estimator.
#[derive(Debug, Clone, Copy)]
pub struct ExpandOptions<'a> {
    /// Alphabet size — what the wildcard ranges over.
    pub label_count: usize,
    /// Maximum concrete path length (the estimator's `k`; capped at
    /// [`MAX_K`]).
    pub max_len: usize,
    /// Follow matrix for pruning impossible branches; `None` expands
    /// purely syntactically (sound — just no pruning).
    pub follow: Option<&'a FollowMatrix>,
    /// Upper bound on the expansion set size.
    pub max_paths: usize,
}

/// Default expansion-set bound.
pub const DEFAULT_MAX_PATHS: usize = 65_536;

impl<'a> ExpandOptions<'a> {
    /// Options for an estimator with `label_count` labels and maximum
    /// path length `max_len`, no pruning, default path cap.
    pub fn new(label_count: usize, max_len: usize) -> ExpandOptions<'a> {
        ExpandOptions {
            label_count,
            max_len: max_len.min(MAX_K),
            follow: None,
            max_paths: DEFAULT_MAX_PATHS,
        }
    }

    /// Attaches a follow matrix for pruning.
    pub fn with_follow(mut self, follow: &'a FollowMatrix) -> ExpandOptions<'a> {
        self.follow = Some(follow);
        self
    }
}

#[derive(Default)]
struct ExpandStats {
    pruned: u64,
    truncated: u64,
}

/// The concrete-path compilation of an expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expansion {
    /// Distinct concrete paths, sorted length-major then lexicographically
    /// by label id.
    pub paths: Vec<LabelPath>,
    /// Join candidates discarded because the follow matrix refuted their
    /// boundary label pair — work the estimator never sees.
    pub pruned: u64,
    /// Join candidates discarded for exceeding the length budget.
    pub truncated: u64,
    /// Whether the expression also denotes the empty sequence (e.g. `a?`
    /// alone) — not estimable, reported so callers can surface it.
    pub matches_empty: bool,
}

/// Why an expression could not be expanded (or planned).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpandError {
    /// The expansion set exceeded the configured bound.
    TooManyPaths {
        /// The configured bound.
        limit: usize,
    },
    /// The expression denotes no estimable concrete path at all — every
    /// branch was over-length or follow-pruned (or the expression only
    /// matches the empty path).
    EmptyExpansion,
}

impl fmt::Display for ExpandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpandError::TooManyPaths { limit } => write!(
                f,
                "expression expands to more than {limit} concrete paths; \
                 tighten the expression or raise the expansion limit"
            ),
            ExpandError::EmptyExpansion => write!(
                f,
                "expression expands to no estimable concrete path (every \
                 branch was over-length or pruned)"
            ),
        }
    }
}

impl std::error::Error for ExpandError {}

fn name_or_fallback(name: &dyn Fn(LabelId) -> Option<String>, l: LabelId) -> String {
    name(l).unwrap_or_else(|| format!("?{}", l.0))
}

/// Renders a concrete path as slash-joined label names, falling back to
/// `?id` for ids the resolver does not know — the one rendering rule the
/// CLI's explain output and the service's branch rows share.
pub fn render_path(path: &LabelPath, name: &dyn Fn(LabelId) -> Option<String>) -> String {
    let mut out = String::new();
    for (i, l) in path.iter().enumerate() {
        if i > 0 {
            out.push('/');
        }
        out.push_str(&name_or_fallback(name, l));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(x: u16) -> LabelId {
        LabelId(x)
    }

    fn opts<'a>() -> ExpandOptions<'a> {
        ExpandOptions::new(3, 4)
    }

    fn seqs(expansion: &Expansion) -> Vec<Vec<u16>> {
        expansion
            .paths
            .iter()
            .map(|p| p.as_slice().to_vec())
            .collect()
    }

    #[test]
    fn expands_alternation_and_concat() {
        // (0|1)/2
        let e = PathExpr::Concat(vec![
            PathExpr::Alt(vec![PathExpr::Label(l(0)), PathExpr::Label(l(1))]),
            PathExpr::Label(l(2)),
        ]);
        let x = e.expand(&opts()).unwrap();
        assert_eq!(seqs(&x), vec![vec![0, 2], vec![1, 2]]);
        assert!(!x.matches_empty);
    }

    #[test]
    fn expands_optional_and_repeat() {
        // 0?/1 -> {1, 01}
        let e = PathExpr::Concat(vec![
            PathExpr::Repeat {
                inner: Box::new(PathExpr::Label(l(0))),
                min: 0,
                max: 1,
            },
            PathExpr::Label(l(1)),
        ]);
        let x = e.expand(&opts()).unwrap();
        assert_eq!(seqs(&x), vec![vec![1], vec![0, 1]]);

        // 0{1,3}
        let e = PathExpr::Repeat {
            inner: Box::new(PathExpr::Label(l(0))),
            min: 1,
            max: 3,
        };
        let x = e.expand(&opts()).unwrap();
        assert_eq!(seqs(&x), vec![vec![0], vec![0, 0], vec![0, 0, 0]]);
    }

    #[test]
    fn wildcard_ranges_over_alphabet_and_empty_is_flagged() {
        let x = PathExpr::Wildcard.expand(&opts()).unwrap();
        assert_eq!(seqs(&x), vec![vec![0], vec![1], vec![2]]);

        let e = PathExpr::Repeat {
            inner: Box::new(PathExpr::Label(l(0))),
            min: 0,
            max: 1,
        };
        let x = e.expand(&opts()).unwrap();
        assert!(x.matches_empty);
        assert_eq!(seqs(&x), vec![vec![0]]);
    }

    #[test]
    fn expansion_is_length_major_sorted_and_distinct() {
        // (0/1|0)|(0|1/0) with duplicates across branches.
        let e = PathExpr::Alt(vec![
            PathExpr::path(&[l(0), l(1)]),
            PathExpr::Label(l(0)),
            PathExpr::Label(l(0)),
            PathExpr::path(&[l(1), l(0)]),
        ]);
        let x = e.expand(&opts()).unwrap();
        assert_eq!(seqs(&x), vec![vec![0], vec![0, 1], vec![1, 0]]);
    }

    #[test]
    fn length_budget_truncates() {
        // 0{3} with max_len 2: everything is too long.
        let e = PathExpr::Repeat {
            inner: Box::new(PathExpr::Label(l(0))),
            min: 3,
            max: 3,
        };
        let x = e
            .expand(&ExpandOptions {
                max_len: 2,
                ..opts()
            })
            .unwrap();
        assert!(x.paths.is_empty());
        assert!(x.truncated > 0, "{x:?}");
    }

    #[test]
    fn follow_matrix_prunes_impossible_branches() {
        // follows: only 0 -> 1 is possible (row 0, column 1).
        let mut bits = vec![false; 9];
        bits[1] = true;
        let follow = FollowMatrix::from_bits(3, bits);
        let e = PathExpr::Concat(vec![PathExpr::Wildcard, PathExpr::Wildcard]);
        let x = e.expand(&opts().with_follow(&follow)).unwrap();
        assert_eq!(seqs(&x), vec![vec![0, 1]]);
        assert_eq!(x.pruned, 8);
    }

    #[test]
    fn expansion_cap_is_enforced() {
        let e = PathExpr::Concat(vec![PathExpr::Wildcard, PathExpr::Wildcard]);
        let err = e
            .expand(&ExpandOptions {
                max_paths: 4,
                ..opts()
            })
            .unwrap_err();
        assert!(matches!(err, ExpandError::TooManyPaths { limit: 4 }));
        assert!(err.to_string().contains("4"));
    }

    #[test]
    fn normalize_flattens_sorts_and_dedupes() {
        let e = PathExpr::Alt(vec![
            PathExpr::Label(l(1)),
            PathExpr::Alt(vec![PathExpr::Label(l(0)), PathExpr::Label(l(1))]),
        ]);
        let n = e.normalize();
        assert_eq!(
            n,
            PathExpr::Alt(vec![PathExpr::Label(l(0)), PathExpr::Label(l(1))])
        );
        assert_eq!(n.normalize(), n, "idempotent");

        let e = PathExpr::Concat(vec![PathExpr::Concat(vec![PathExpr::Label(l(2))])]);
        assert_eq!(e.normalize(), PathExpr::Label(l(2)));

        let e = PathExpr::Repeat {
            inner: Box::new(PathExpr::Label(l(0))),
            min: 1,
            max: 1,
        };
        assert_eq!(e.normalize(), PathExpr::Label(l(0)));
    }

    #[test]
    fn cache_keys_agree_for_commuted_alternations() {
        let ab = PathExpr::Concat(vec![
            PathExpr::Alt(vec![PathExpr::Label(l(0)), PathExpr::Label(l(1))]),
            PathExpr::Label(l(2)),
        ]);
        let ba = PathExpr::Concat(vec![
            PathExpr::Alt(vec![PathExpr::Label(l(1)), PathExpr::Label(l(0))]),
            PathExpr::Label(l(2)),
        ]);
        assert_eq!(ab.cache_key(), ba.cache_key());
        assert_eq!(ab.cache_key(), "(0|1)/2");
    }

    #[test]
    fn matches_agrees_with_structure() {
        let e = PathExpr::Concat(vec![
            PathExpr::Alt(vec![PathExpr::Label(l(0)), PathExpr::Label(l(1))]),
            PathExpr::Repeat {
                inner: Box::new(PathExpr::Label(l(2))),
                min: 0,
                max: 2,
            },
        ]);
        assert!(e.matches(&[l(0)]));
        assert!(e.matches(&[l(1), l(2)]));
        assert!(e.matches(&[l(0), l(2), l(2)]));
        assert!(!e.matches(&[l(2)]));
        assert!(!e.matches(&[]));
    }

    #[test]
    fn as_concrete_recovers_plain_chains() {
        let e = PathExpr::path(&[l(0), l(1), l(0)]);
        assert_eq!(e.as_concrete(), Some(vec![l(0), l(1), l(0)]));
        let alt = PathExpr::Alt(vec![PathExpr::Label(l(0)), PathExpr::Label(l(1))]);
        assert_eq!(alt.as_concrete(), None);
        let rep = PathExpr::Repeat {
            inner: Box::new(PathExpr::Label(l(1))),
            min: 2,
            max: 2,
        };
        assert_eq!(rep.as_concrete(), Some(vec![l(1), l(1)]));
    }

    #[test]
    fn display_round_structure() {
        let e = PathExpr::Concat(vec![
            PathExpr::Alt(vec![PathExpr::Label(l(0)), PathExpr::Label(l(1))]),
            PathExpr::Repeat {
                inner: Box::new(PathExpr::Label(l(2))),
                min: 0,
                max: 1,
            },
        ]);
        assert_eq!(e.to_string(), "(0|1)/2?");
        let mut interner = LabelInterner::new();
        interner.intern("a").unwrap();
        interner.intern("b").unwrap();
        interner.intern("c").unwrap();
        assert_eq!(e.display_with(&interner).to_string(), "(a|b)/c?");
        let tree = e.tree(&|id| Some(format!("l{}", id.0)));
        assert!(tree.contains("concat"), "{tree}");
        assert!(tree.contains("optional ?"), "{tree}");
        assert!(tree.contains("label l2"), "{tree}");

        let path = LabelPath::new(&[l(0), l(9)]);
        let rendered = render_path(&path, &|id| (id.0 < 3).then(|| format!("n{}", id.0)));
        assert_eq!(rendered, "n0/?9");
    }
}
