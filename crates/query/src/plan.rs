//! Join plans over path expressions.

use std::fmt;

use phe_graph::LabelId;

/// A binary join tree over a contiguous range of path steps.
///
/// Leaves are single edge labels; internal nodes compose the relations of
/// their children. Estimated cardinalities are recorded at planning time
/// so EXPLAIN output can be compared against actual execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// One path step: the edge relation of a label.
    Leaf {
        /// The step's label.
        label: LabelId,
        /// Estimated cardinality of the label's relation.
        estimated: f64,
    },
    /// Composition of two adjacent sub-plans.
    Join {
        /// Left (earlier steps) sub-plan.
        left: Box<Plan>,
        /// Right (later steps) sub-plan.
        right: Box<Plan>,
        /// Estimated cardinality of this node's output.
        estimated: f64,
    },
}

impl Plan {
    /// Estimated output cardinality of this node.
    pub fn estimated(&self) -> f64 {
        match self {
            Plan::Leaf { estimated, .. } | Plan::Join { estimated, .. } => *estimated,
        }
    }

    /// Number of path steps covered.
    pub fn step_count(&self) -> usize {
        match self {
            Plan::Leaf { .. } => 1,
            Plan::Join { left, right, .. } => left.step_count() + right.step_count(),
        }
    }

    /// The covered labels, left to right.
    pub fn labels(&self) -> Vec<LabelId> {
        let mut out = Vec::with_capacity(self.step_count());
        self.collect_labels(&mut out);
        out
    }

    fn collect_labels(&self, out: &mut Vec<LabelId>) {
        match self {
            Plan::Leaf { label, .. } => out.push(*label),
            Plan::Join { left, right, .. } => {
                left.collect_labels(out);
                right.collect_labels(out);
            }
        }
    }

    /// Total estimated cost: the sum of estimated cardinalities of every
    /// non-root materialized node (leaves included — edge relations are
    /// scanned — the root excluded, since every plan of the same query
    /// produces the same final relation).
    pub fn estimated_cost(&self) -> f64 {
        match self {
            Plan::Leaf { .. } => 0.0,
            Plan::Join { left, right, .. } => {
                left.estimated()
                    + right.estimated()
                    + left.estimated_cost()
                    + right.estimated_cost()
            }
        }
    }

    /// Renders an EXPLAIN-style indented tree.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            Plan::Leaf { label, estimated } => {
                out.push_str(&format!("{pad}scan {label} (est {estimated:.1})\n"));
            }
            Plan::Join {
                left,
                right,
                estimated,
            } => {
                out.push_str(&format!("{pad}join (est {estimated:.1})\n"));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Plan::Leaf { label, .. } => write!(f, "{label}"),
            Plan::Join { left, right, .. } => write!(f, "({left} ⋈ {right})"),
        }
    }
}

/// A plan for a regular path expression: one independently join-ordered
/// [`Plan`] per concrete expansion branch, unioned at the top.
///
/// Expansion pushes alternation *through* join-order enumeration — each
/// branch is a plain chain, so the matrix-chain DP applies per branch and
/// the union's cost is the sum of its branches' costs plus their
/// materialized outputs (branch populations are disjoint by
/// construction, so no dedup work is charged).
#[derive(Debug, Clone, PartialEq)]
pub struct ExprPlan {
    /// Per-branch join plans, in the expansion's canonical order.
    pub branches: Vec<Plan>,
    /// Estimated total output cardinality (sum of branch estimates in
    /// canonical order).
    pub estimated: f64,
    /// Expansion branches discarded by follow-matrix pruning.
    pub pruned: u64,
    /// Expansion branches discarded for exceeding the length budget.
    pub truncated: u64,
}

impl ExprPlan {
    /// Total estimated cost: every branch's internal cost plus its
    /// materialized output (each branch's result feeds the union).
    pub fn estimated_cost(&self) -> f64 {
        self.branches
            .iter()
            .map(|b| b.estimated_cost() + b.estimated())
            .sum()
    }

    /// Number of union branches.
    pub fn width(&self) -> usize {
        self.branches.len()
    }

    /// Renders an EXPLAIN-style tree: the union header, then each
    /// branch's join tree.
    pub fn explain(&self) -> String {
        let mut out = format!(
            "union of {} branch(es) (est {:.1}, pruned {}, truncated {})\n",
            self.width(),
            self.estimated,
            self.pruned,
            self.truncated
        );
        for branch in &self.branches {
            for line in branch.explain().lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

impl fmt::Display for ExprPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, branch) in self.branches.iter().enumerate() {
            if i > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "{branch}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(l: u16, est: f64) -> Plan {
        Plan::Leaf {
            label: LabelId(l),
            estimated: est,
        }
    }

    #[test]
    fn cost_sums_non_root_nodes() {
        // ((a ⋈ b) ⋈ c): inputs a(10), b(20) -> ab(5); then ab(5), c(30).
        let ab = Plan::Join {
            left: Box::new(leaf(0, 10.0)),
            right: Box::new(leaf(1, 20.0)),
            estimated: 5.0,
        };
        let plan = Plan::Join {
            left: Box::new(ab),
            right: Box::new(leaf(2, 30.0)),
            estimated: 2.0,
        };
        // Cost: (5 + 30) at root + (10 + 20) inside left.
        assert_eq!(plan.estimated_cost(), 65.0);
        assert_eq!(plan.step_count(), 3);
        assert_eq!(plan.labels(), vec![LabelId(0), LabelId(1), LabelId(2)]);
    }

    #[test]
    fn explain_renders_tree() {
        let plan = Plan::Join {
            left: Box::new(leaf(0, 1.0)),
            right: Box::new(leaf(1, 2.0)),
            estimated: 3.0,
        };
        let text = plan.explain();
        assert!(text.contains("join (est 3.0)"));
        assert!(text.contains("  scan l0"));
        assert_eq!(plan.to_string(), "(l0 ⋈ l1)");
    }
}
